//! The query miner of Section 5: sample template instantiations over the
//! synthetic dataset and keep the valid, non-empty ones.
//!
//! Run with `cargo run --release --example query_mining`.

use wireframe::datagen::{generate, QueryMiner, YagoConfig};

fn main() {
    let graph = generate(&YagoConfig::small());
    println!(
        "dataset: {} triples over {} predicates",
        graph.triple_count(),
        graph.predicate_count()
    );

    let mut miner = QueryMiner::new(&graph, 2024);

    let (snowflakes, s_stats) = miner.mine_snowflakes(2_000, 20);
    println!("\nsnowflake template ({} attempts):", s_stats.attempts);
    println!("  pruned by 2-gram statistics: {}", s_stats.pruned_by_stats);
    println!("  verified empty:              {}", s_stats.empty);
    println!(
        "  search budget exhausted:     {}",
        s_stats.budget_exhausted
    );
    println!("  mined (valid, non-empty):    {}", s_stats.mined);

    let (diamonds, d_stats) = miner.mine_diamonds(2_000, 20);
    println!("\ndiamond template ({} attempts):", d_stats.attempts);
    println!("  pruned by 2-gram statistics: {}", d_stats.pruned_by_stats);
    println!("  verified empty:              {}", d_stats.empty);
    println!(
        "  search budget exhausted:     {}",
        d_stats.budget_exhausted
    );
    println!("  mined (valid, non-empty):    {}", d_stats.mined);

    println!("\nexamples of mined queries:");
    for q in snowflakes.iter().take(3).chain(diamonds.iter().take(3)) {
        println!("  {q}");
    }
}

//! Quickstart: load a small graph, run a conjunctive query with the Wireframe
//! answer-graph engine, and compare against the relational baseline.
//!
//! Run with `cargo run --example quickstart`.

use wireframe::baseline::RelationalEngine;
use wireframe::core::WireframeEngine;
use wireframe::graph::GraphBuilder;
use wireframe::query::parse_query;

fn main() {
    // A tiny movie graph: people act in movies, movies have creation dates.
    let mut b = GraphBuilder::new();
    for (person, movie) in [
        ("alice", "heat"),
        ("bob", "heat"),
        ("carol", "heat"),
        ("alice", "ronin"),
        ("dave", "ronin"),
    ] {
        b.add(person, "actedIn", movie);
    }
    b.add("heat", "wasCreatedOnDate", "1995");
    b.add("ronin", "wasCreatedOnDate", "1998");
    b.add("alice", "influences", "bob");
    b.add("alice", "influences", "carol");
    let graph = b.build();

    println!(
        "graph: {} nodes, {} predicates, {} triples",
        graph.node_count(),
        graph.predicate_count(),
        graph.triple_count()
    );

    // Who influences an actor, in which movie, created when?
    let sparql = "SELECT ?x ?y ?m ?d WHERE { ?x :influences ?y . ?y :actedIn ?m . ?m :wasCreatedOnDate ?d . }";
    let query = parse_query(sparql, graph.dictionary()).expect("query parses");
    println!("\nquery: {sparql}");

    // Phase 1 + 2 with Wireframe.
    let engine = WireframeEngine::new(&graph);
    let out = engine.execute(&query).expect("query evaluates");
    println!("\n— Wireframe (answer-graph evaluation) —");
    println!("plan (edge order):         {:?}", out.plan.order);
    println!("edge walks (phase 1):      {}", out.generation.edge_walks);
    println!("answer-graph edges |AG|:   {}", out.answer_graph_size());
    println!("embeddings |J CQ K_G|:     {}", out.embedding_count());

    // The same query on the non-factorized baseline.
    let (baseline, stats) = RelationalEngine::new(&graph)
        .evaluate_with_stats(&query)
        .expect("baseline evaluates");
    println!("\n— relational baseline (standard evaluation) —");
    println!("scanned tuples:            {}", stats.scanned_tuples);
    println!("intermediate tuples:       {}", stats.intermediate_tuples);
    println!("embeddings:                {}", baseline.len());

    assert!(out.embeddings().same_answer(&baseline));
    println!(
        "\nboth engines return the same {} embeddings:",
        baseline.len()
    );
    let dict = graph.dictionary();
    for row in out.embeddings().tuples().iter().take(10) {
        let labels: Vec<&str> = row
            .iter()
            .map(|n| dict.node_label(*n).unwrap_or("?"))
            .collect();
        println!("  {labels:?}");
    }
}

//! Quickstart: load a small graph into a [`wireframe::Session`], run a
//! conjunctive query, and compare every registered engine through the uniform
//! `Engine` API.
//!
//! Run with `cargo run --example quickstart`.

use wireframe::graph::GraphBuilder;
use wireframe::Session;

fn main() {
    // A tiny movie graph: people act in movies, movies have creation dates.
    let mut b = GraphBuilder::new();
    for (person, movie) in [
        ("alice", "heat"),
        ("bob", "heat"),
        ("carol", "heat"),
        ("alice", "ronin"),
        ("dave", "ronin"),
    ] {
        b.add(person, "actedIn", movie);
    }
    b.add("heat", "wasCreatedOnDate", "1995");
    b.add("ronin", "wasCreatedOnDate", "1998");
    b.add("alice", "influences", "bob");
    b.add("alice", "influences", "carol");

    let mut session = Session::new(b.build());
    println!(
        "graph: {} nodes, {} predicates, {} triples",
        session.graph().node_count(),
        session.graph().predicate_count(),
        session.graph().triple_count()
    );

    // Who influences an actor, in which movie, created when?
    let sparql = "SELECT ?x ?y ?m ?d WHERE { ?x :influences ?y . ?y :actedIn ?m . ?m :wasCreatedOnDate ?d . }";
    println!("\nquery: {sparql}");

    // One call: parse → plan → execute on the factorized engine.
    let wf = session.query(sparql).expect("query evaluates");
    let factorized = wf.factorized.as_ref().expect("wireframe factorizes");
    println!("\n— wireframe (answer-graph evaluation) —");
    println!("plan (edge order):         {:?}", factorized.plan_order);
    println!("edge walks (phase 1):      {}", factorized.edge_walks);
    println!(
        "answer-graph edges |AG|:   {}",
        factorized.answer_graph_edges
    );
    println!("embeddings |J CQ K_G|:     {}", wf.embedding_count());

    // The same query on every registered engine — one loop, no dispatch tree.
    println!("\n— all registered engines —");
    let names: Vec<&str> = session.registry().names();
    for name in names {
        session.set_engine(name).expect("registered engine");
        let ev = session.query(sparql).expect("query evaluates");
        assert!(wf.embeddings().same_answer(ev.embeddings()));
        println!(
            "{:<12} {:>3} embeddings in {:?} (factorized: {})",
            ev.engine,
            ev.embedding_count(),
            ev.timings.total(),
            ev.factorized.is_some(),
        );
    }

    // Re-running a query hits the prepared-plan cache.
    session.set_engine("wireframe").expect("registered engine");
    session.query(sparql).expect("query evaluates");
    println!(
        "\nprepared-query cache: {} hits, {} misses",
        session.cache_hits(),
        session.cache_misses()
    );

    println!("\nthe {} embeddings:", wf.embedding_count());
    let graph = session.graph();
    let dict = graph.dictionary();
    for row in wf.embeddings().rows().take(10) {
        let labels: Vec<&str> = row
            .iter()
            .map(|n| dict.node_label(*n).unwrap_or("?"))
            .collect();
        println!("  {labels:?}");
    }
}

//! Tour of the engineering extensions beyond the paper's prototype:
//! EXPLAIN-style plan output, streaming (constant-memory) defactorization,
//! bushy phase-two planning, parallel defactorization, and the dataset report.
//!
//! Run with `cargo run --release --example explain_and_extensions`.

use wireframe::core::{
    defactorize_parallel, execute_bushy, explain_output, plan_bushy, EmbeddingStream,
    ParallelOptions, WireframeEngine,
};
use wireframe::datagen::report::DatasetReport;
use wireframe::datagen::{generate, snowflake_queries, YagoConfig};

fn main() {
    let graph = generate(&YagoConfig::small());

    println!("=== dataset report (top 10 predicates) ===");
    let report = DatasetReport::build(&graph);
    print!("{}", report.to_table(10));

    let queries = snowflake_queries(&graph).expect("workload builds");
    let bq = &queries[0];
    let engine = WireframeEngine::new(&graph);
    let out = engine.execute(&bq.query).expect("evaluates");

    println!("\n=== EXPLAIN {} ===", bq.name);
    print!("{}", explain_output(&graph, &bq.query, &out));

    println!("=== streaming defactorization ===");
    let (ag, _, _) = engine.answer_graph(&bq.query).expect("phase one runs");
    let first_five: Vec<_> = EmbeddingStream::new(&bq.query, &ag)
        .expect("stream builds")
        .take(5)
        .collect();
    println!(
        "streamed the first {} embeddings without materializing the full result ({} total)",
        first_five.len(),
        out.embedding_count()
    );

    println!("\n=== bushy phase-two plan (paper §6 future work) ===");
    let bushy = plan_bushy(&bq.query, &ag).expect("bushy plan");
    println!(
        "join tree depth {} (left-deep: {}), estimated C_out {:.0}",
        bushy.root.depth(),
        bushy.root.is_left_deep(),
        bushy.estimated_cost
    );
    let (bushy_result, bushy_stats) =
        execute_bushy(&bq.query, &ag, &bushy).expect("bushy executes");
    println!(
        "bushy execution: {} embeddings, peak intermediate {}",
        bushy_result.len(),
        bushy_stats.peak_intermediate
    );

    println!("\n=== parallel defactorization ===");
    let (parallel, parallel_stats) =
        defactorize_parallel(&bq.query, &ag, &ParallelOptions::default())
            .expect("parallel defactorization");
    println!(
        "parallel defactorization produced {} embeddings on up to {} threads \
         (peak intermediate {} per worker)",
        parallel.len(),
        ParallelOptions::default().threads,
        parallel_stats.peak_intermediate
    );

    assert_eq!(parallel.len(), out.embedding_count());
    assert_eq!(bushy_result.len(), out.embedding_count());
}

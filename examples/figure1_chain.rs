//! Reproduction of the paper's Figures 1 and 2: the chain query CQ_C over the
//! running-example data graph, the answer graph it factorizes into, and the
//! interleaved edge-extension / node-burnback trace.
//!
//! Run with `cargo run --example figure1_chain`.

use wireframe::core::{EvalOptions, WireframeEngine};
use wireframe::graph::GraphBuilder;
use wireframe::query::parse_query;

fn main() {
    // The data graph of Figure 1/2: A-edges fan in to node 5, one B-edge
    // connects 5 to 9, and C-edges fan out of 9. Nodes 4, 6, 7, 10 and 11
    // participate in edges that do not survive burnback.
    let mut b = GraphBuilder::new();
    for s in ["1", "2", "3"] {
        b.add(s, "A", "5");
    }
    b.add("4", "A", "6");
    b.add("5", "B", "9");
    b.add("7", "B", "10");
    for o in ["12", "13", "14", "15"] {
        b.add("9", "C", o);
    }
    b.add("11", "C", "15");
    let graph = b.build();

    let query = parse_query(
        "SELECT ?w ?x ?y ?z WHERE { ?w :A ?x . ?x :B ?y . ?y :C ?z . }",
        graph.dictionary(),
    )
    .expect("CQ_C parses");

    let engine = WireframeEngine::with_options(&graph, EvalOptions::default().with_trace());
    let out = engine.execute(&query).expect("CQ_C evaluates");

    println!("=== Figure 1: factorization of CQ_C ===");
    println!("data graph:        {} triples", graph.triple_count());
    println!(
        "answer graph |AG|: {} labeled node pairs",
        out.answer_graph_size()
    );
    println!("embeddings:        {} tuples", out.embedding_count());
    println!(
        "factorization gap: {:.1}x fewer answer edges than embedding tuples",
        out.embedding_count() as f64 / out.answer_graph_size() as f64
    );

    println!("\n=== Figure 2: edge extension and node burnback, step by step ===");
    println!(
        "plan: materialize query edges in order {:?}",
        out.plan().order
    );
    for step in &out.generation().steps {
        println!(
            "  edge {}: walked {:>3} data edges, added {:>3} AG edges, burned {:>2} nodes / {:>2} edges, |AG| now {}",
            step.pattern, step.edge_walks, step.edges_added, step.nodes_burned, step.edges_burned, step.ag_edges_after
        );
    }

    println!("\n=== final answer graph, per query edge ===");
    let dict = graph.dictionary();
    for (i, pattern) in query.patterns().iter().enumerate() {
        let label = dict.predicate_label(pattern.predicate).unwrap_or("?");
        let mut pairs: Vec<(String, String)> = out
            .answer_graph()
            .pattern(i)
            .iter()
            .map(|(s, o)| {
                (
                    dict.node_label(s).unwrap_or("?").to_owned(),
                    dict.node_label(o).unwrap_or("?").to_owned(),
                )
            })
            .collect();
        pairs.sort();
        println!("  {label}: {pairs:?}");
    }

    println!("\n=== the twelve embeddings (Figure 1, right) ===");
    let mut rows: Vec<Vec<&str>> = out
        .embeddings()
        .rows()
        .map(|t| {
            t.iter()
                .map(|n| dict.node_label(*n).unwrap_or("?"))
                .collect()
        })
        .collect();
    rows.sort();
    for row in rows {
        println!("  {row:?}");
    }

    assert_eq!(out.answer_graph_size(), 8);
    assert_eq!(out.embedding_count(), 12);
}

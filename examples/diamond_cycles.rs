//! Reproduction of the paper's Figure 4: a cyclic (diamond) query for which
//! node burnback alone leaves spurious answer edges, and how triangulation
//! plus edge burnback restores the ideal answer graph.
//!
//! Run with `cargo run --example diamond_cycles`.

use wireframe::core::{triangulate, EvalOptions, WireframeEngine};
use wireframe::graph::GraphBuilder;
use wireframe::query::{parse_query, QueryGraph};

fn main() {
    // Two disjoint diamond instances plus two "cross" C-edges that connect
    // them on one side only. The cross edges survive node burnback (every
    // node keeps support in every pattern) but participate in no embedding.
    let mut b = GraphBuilder::new();
    b.add("3", "A", "4");
    b.add("3", "B", "2");
    b.add("4", "C", "1");
    b.add("2", "D", "1");
    b.add("7", "A", "8");
    b.add("7", "B", "6");
    b.add("8", "C", "5");
    b.add("6", "D", "5");
    b.add("4", "C", "5"); // spurious
    b.add("8", "C", "1"); // spurious
    let graph = b.build();

    let query = parse_query(
        "SELECT ?x ?e ?y ?z WHERE { ?x :A ?e . ?x :B ?z . ?e :C ?y . ?z :D ?y . }",
        graph.dictionary(),
    )
    .expect("CQ_D parses");

    let qg = QueryGraph::new(&query);
    println!("=== Figure 4: the diamond query CQ_D ===");
    println!("query shape: {:?} (cyclic: {})", qg.shape(), qg.is_cyclic());

    let chordification = triangulate(&query);
    println!(
        "triangulation: {} chord(s), {} triangle(s)",
        chordification.chords.len(),
        chordification.triangles.len()
    );

    // Paper configuration: node burnback only.
    let node_only = WireframeEngine::new(&graph)
        .execute(&query)
        .expect("evaluates");
    println!("\n— node burnback only (the paper's experimental configuration) —");
    println!("answer graph |AG|: {} edges", node_only.answer_graph_size());
    println!("embeddings:        {}", node_only.embedding_count());

    // With the work-in-progress edge burnback enabled.
    let with_eb =
        WireframeEngine::with_options(&graph, EvalOptions::default().with_edge_burnback())
            .execute(&query)
            .expect("evaluates");
    println!("\n— with triangulation + edge burnback (ideal answer graph) —");
    println!(
        "answer graph |iAG|: {} edges ({} spurious edges removed in {} iteration(s))",
        with_eb.answer_graph_size(),
        with_eb.edge_burnback().edges_removed,
        with_eb.edge_burnback().iterations
    );
    println!("embeddings:         {}", with_eb.embedding_count());

    assert_eq!(node_only.embedding_count(), with_eb.embedding_count());
    assert!(with_eb.answer_graph_size() < node_only.answer_graph_size());

    let dict = graph.dictionary();
    println!("\nthe two embeddings (Figure 4, right):");
    for t in with_eb.embeddings().rows() {
        let row: Vec<&str> = t
            .iter()
            .map(|n| dict.node_label(*n).unwrap_or("?"))
            .collect();
        println!("  {row:?}");
    }
}

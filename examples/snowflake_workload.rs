//! Reproduction of the paper's Figure 3 / Table 1 workflow on a synthetic
//! YAGO-like dataset: instantiate the snowflake template CQ_S with the Table 1
//! label sequences, plan them with the two-phase cost-based optimizer, and
//! compare Wireframe against the non-factorized baselines.
//!
//! Run with `cargo run --release --example snowflake_workload`.

use std::time::Instant;

use wireframe::baseline::{ExplorationEngine, RelationalEngine};
use wireframe::core::WireframeEngine;
use wireframe::datagen::{generate, snowflake_queries, YagoConfig};

fn main() {
    let config = YagoConfig::small();
    let t0 = Instant::now();
    let graph = generate(&config);
    println!(
        "synthetic YAGO-like graph: {} triples, {} predicates, {} nodes (generated in {:?})",
        graph.triple_count(),
        graph.predicate_count(),
        graph.node_count(),
        t0.elapsed()
    );

    let queries = snowflake_queries(&graph).expect("workload builds");
    let wf = WireframeEngine::new(&graph);
    let rel = RelationalEngine::new(&graph);
    let exp = ExplorationEngine::new(&graph);

    println!(
        "\n{:<7} {:>10} {:>10} {:>10} {:>8} {:>12} {:>9}",
        "query", "WF (ms)", "REL (ms)", "EXPL (ms)", "|AG|", "|Embeddings|", "AG ratio"
    );
    for bq in &queries {
        let t = Instant::now();
        let out = wf.execute(&bq.query).expect("wireframe evaluates");
        let wf_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let rel_result = rel.evaluate(&bq.query).expect("relational evaluates");
        let rel_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let exp_result = exp.evaluate(&bq.query).expect("exploration evaluates");
        let exp_ms = t.elapsed().as_secs_f64() * 1e3;

        assert!(out.embeddings().same_answer(&rel_result));
        assert!(out.embeddings().same_answer(&exp_result));

        let ag = out.answer_graph_size();
        let emb = out.embedding_count();
        println!(
            "{:<7} {:>10.2} {:>10.2} {:>10.2} {:>8} {:>12} {:>8.0}x",
            bq.name,
            wf_ms,
            rel_ms,
            exp_ms,
            ag,
            emb,
            emb as f64 / ag.max(1) as f64
        );

        // Show the chosen plan for the first query, mirroring Figure 3's
        // "answer graph plan" panel.
        if bq.row == 1 {
            println!("        plan (edge order): {:?}", out.plan().order);
            println!(
                "        estimated edge walks: {:.0}",
                out.plan().estimated_cost
            );
            println!(
                "        actual edge walks:    {}",
                out.generation().edge_walks
            );
        }
    }
    println!("\nall engines returned identical answers for every query.");
}

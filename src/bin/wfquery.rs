//! `wfquery` — run SPARQL conjunctive queries over a triple file from the
//! command line.
//!
//! ```text
//! wfquery DATA.nt --query 'SELECT ?x ?y WHERE { ?x :knows ?y . }' [options]
//!
//! options:
//!   --query <SPARQL>          the conjunctive query (or pass it on stdin)
//!   --engine <name>           wireframe (default) | relational | sortmerge | exploration
//!   --edge-burnback           enable triangulation + edge burnback (wireframe only)
//!   --explain                 print the plan and phase statistics (wireframe only)
//!   --limit <N>               print at most N result rows (default 20)
//!   --count-only              print only the number of embeddings
//! ```
//!
//! The data file uses the formats accepted by `wireframe_graph::load`: either
//! N-Triples-style `<s> <p> <o> .` lines or bare whitespace-separated
//! `s p o` lines; `#` comments are skipped.

use std::io::Read;
use std::process::ExitCode;

use wireframe::baseline::{ExplorationEngine, RelationalEngine, SortMergeEngine};
use wireframe::core::{explain_output, EvalOptions, WireframeEngine};
use wireframe::graph::Graph;
use wireframe::query::{parse_query, EmbeddingSet};

struct Options {
    data_path: String,
    query: Option<String>,
    engine: String,
    edge_burnback: bool,
    explain: bool,
    limit: usize,
    count_only: bool,
}

fn usage() -> &'static str {
    "usage: wfquery <triples-file> --query <SPARQL> \
     [--engine wireframe|relational|sortmerge|exploration] \
     [--edge-burnback] [--explain] [--limit N] [--count-only]"
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut data_path = None;
    let mut options = Options {
        data_path: String::new(),
        query: None,
        engine: "wireframe".to_owned(),
        edge_burnback: false,
        explain: false,
        limit: 20,
        count_only: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--query" => options.query = Some(args.next().ok_or("--query needs a value")?),
            "--engine" => options.engine = args.next().ok_or("--engine needs a value")?,
            "--edge-burnback" => options.edge_burnback = true,
            "--explain" => options.explain = true,
            "--count-only" => options.count_only = true,
            "--limit" => {
                options.limit = args
                    .next()
                    .ok_or("--limit needs a value")?
                    .parse()
                    .map_err(|_| "--limit must be a non-negative integer".to_owned())?;
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => {
                if data_path.is_some() {
                    return Err(format!("unexpected positional argument {other}"));
                }
                data_path = Some(other.to_owned());
            }
        }
    }
    options.data_path = data_path.ok_or_else(|| usage().to_owned())?;
    Ok(options)
}

fn print_results(graph: &Graph, results: &EmbeddingSet, limit: usize) {
    let dict = graph.dictionary();
    for row in results.tuples().iter().take(limit) {
        let labels: Vec<&str> = row
            .iter()
            .map(|n| dict.node_label(*n).unwrap_or("?"))
            .collect();
        println!("{}", labels.join("\t"));
    }
    if results.len() > limit {
        println!("… ({} more rows)", results.len() - limit);
    }
}

fn run() -> Result<(), String> {
    let options = parse_args(std::env::args().skip(1))?;

    let file = std::fs::File::open(&options.data_path)
        .map_err(|e| format!("cannot open {}: {e}", options.data_path))?;
    let graph = wireframe::graph::load(std::io::BufReader::new(file))
        .map_err(|e| format!("cannot load {}: {e}", options.data_path))?;
    eprintln!(
        "loaded {}: {} triples, {} predicates, {} nodes",
        options.data_path,
        graph.triple_count(),
        graph.predicate_count(),
        graph.node_count()
    );

    let query_text = match &options.query {
        Some(q) => q.clone(),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read query from stdin: {e}"))?;
            buf
        }
    };
    let query = parse_query(&query_text, graph.dictionary()).map_err(|e| e.to_string())?;

    let results = match options.engine.as_str() {
        "wireframe" => {
            let mut eval = EvalOptions::default();
            if options.edge_burnback {
                eval = eval.with_edge_burnback();
            }
            let engine = WireframeEngine::with_options(&graph, eval);
            let out = engine.execute(&query).map_err(|e| e.to_string())?;
            if options.explain {
                eprint!("{}", explain_output(&graph, &query, &out));
            }
            out.embeddings().clone()
        }
        "relational" => RelationalEngine::new(&graph)
            .evaluate(&query)
            .map_err(|e| e.to_string())?,
        "sortmerge" => SortMergeEngine::new(&graph)
            .evaluate(&query)
            .map_err(|e| e.to_string())?,
        "exploration" => ExplorationEngine::new(&graph)
            .evaluate(&query)
            .map_err(|e| e.to_string())?,
        other => return Err(format!("unknown engine {other:?}; {}", usage())),
    };

    if options.count_only {
        println!("{}", results.len());
    } else {
        print_results(&graph, &results, options.limit);
        eprintln!("{} embeddings", results.len());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

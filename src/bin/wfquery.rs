//! `wfquery` — run SPARQL conjunctive queries over a triple file from the
//! command line.
//!
//! ```text
//! wfquery DATA.nt --query 'SELECT ?x ?y WHERE { ?x :knows ?y . }' [options]
//!
//! options:
//!   --query <SPARQL>          the conjunctive query (or pass it on stdin)
//!   --query-file <path>       read the query from a file instead
//!   --engine <name>           engine to evaluate with (default wireframe);
//!                             `--engine help` lists the registered engines
//!   --store csr|map|delta     graph storage backend (default csr)
//!   --shards <N>              evaluate through an N-way vertex-partitioned
//!                             [`wireframe::ShardedCluster`] instead of a
//!                             single session (default 1; requires an engine
//!                             with the `sharded` capability — `wireframe` or
//!                             `wco` — answers are identical either way)
//!   --mutations <path>        apply a mutation script before the query: one
//!                             op per line, `+ s p o` inserts and `- s p o`
//!                             removes (any triple syntax accepted by the
//!                             data loader); the result reports the epoch
//!   --edge-burnback           enable triangulation + edge burnback (wireframe only)
//!   --explain                 print the plan and phase statistics; after
//!                             --mutations, also the per-view maintenance
//!                             latency distribution from the metrics registry
//!   --trace                   print the structured span tree of every query
//!                             (stage durations with signature/engine/store
//!                             fields) to stderr after the results
//!   --limit <N>               bound the answer to the canonical first N rows
//!                             (default 20, 0 = unlimited). The limit is pushed
//!                             into evaluation, not applied after the fact:
//!                             when the query's retained view holds a
//!                             maintained top-k prefix covering N the answer
//!                             costs O(k) — no defactorization — otherwise the
//!                             defactorization is truncated under the same
//!                             canonical (lexicographic) row order, so the
//!                             printed rows are identical either way.
//!                             `--count-only` always evaluates fully.
//!   --threads <N>             worker threads for parallel phases (default 1; 0 = auto)
//!   --count-only              print only the number of embeddings
//!
//! exit codes: 0 ok · 1 evaluation/runtime failure · 2 usage error or
//! malformed input (bad flags, unparsable query, mutation-script parse
//! errors — reported with the offending line number)
//! ```
//!
//! Engines are dispatched through the workspace's engine registry
//! ([`wireframe::default_registry`]); evaluation runs through the
//! [`wireframe::QueryExecutor`] trait — a [`wireframe::Session`] normally, a
//! [`wireframe::ShardedCluster`] under `--shards N` — so repeated queries in
//! one invocation reuse prepared plans and the driver never depends on which
//! executor answered.
//!
//! The data file uses the formats accepted by `wireframe_graph::load`: either
//! N-Triples-style `<s> <p> <o> .` lines or bare whitespace-separated
//! `s p o` lines; `#` comments are skipped.

use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

/// A failed run, split by who is at fault: `Usage` is a malformed
/// invocation or input file (exit 2, like every driver in this workspace);
/// `Runtime` is a failure while evaluating well-formed input (exit 1).
enum Failure {
    Usage(String),
    Runtime(String),
}

impl Failure {
    fn message(&self) -> &str {
        match self {
            Failure::Usage(m) | Failure::Runtime(m) => m,
        }
    }
}

/// Shorthand for fallible steps that are usage errors when they fail.
trait OrUsage<T> {
    fn or_usage(self) -> Result<T, Failure>;
}

impl<T> OrUsage<T> for Result<T, String> {
    fn or_usage(self) -> Result<T, Failure> {
        self.map_err(Failure::Usage)
    }
}

use wireframe::graph::Graph;
use wireframe::query::EmbeddingSet;
use wireframe::{
    default_registry, EngineConfig, LimitInfo, Mutation, QueryExecutor, Session, SessionConfig,
    ShardedCluster, StoreKind,
};

struct Options {
    data_path: String,
    query: Option<String>,
    query_file: Option<String>,
    engine: String,
    store: StoreKind,
    shards: usize,
    mutations: Option<String>,
    edge_burnback: bool,
    explain: bool,
    trace: bool,
    limit: usize,
    threads: usize,
    count_only: bool,
}

fn usage() -> &'static str {
    "usage: wfquery <triples-file> --query <SPARQL> | --query-file <path> \
     [--engine <name>|help] [--store csr|map|delta] [--shards N] \
     [--mutations <path>] [--edge-burnback] [--explain] [--trace] [--limit N] \
     [--threads N] [--count-only]"
}

fn engine_listing() -> String {
    let registry = default_registry();
    let mut out = String::from("registered engines:\n");
    for entry in registry.entries() {
        out.push_str(&format!(
            "  {:<12} {:<42} {}\n",
            entry.name,
            entry.capabilities.summary(),
            entry.description
        ));
    }
    out.push_str(
        "capability flags: cyclic (exact cyclic answers) · factorized (answer-graph \
         artifact) · views (maintained views) · cyclic-views (no eviction fallback on \
         cyclic queries) · parallel (threaded defactorization) · sharded (scatter-gather \
         merge, usable with --shards)\n",
    );
    out.push_str("select one with --engine <name>");
    out
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut data_path = None;
    let mut options = Options {
        data_path: String::new(),
        query: None,
        query_file: None,
        engine: "wireframe".to_owned(),
        store: StoreKind::default(),
        shards: 1,
        mutations: None,
        edge_burnback: false,
        explain: false,
        trace: false,
        limit: 20,
        threads: 1,
        count_only: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--query" => options.query = Some(args.next().ok_or("--query needs a value")?),
            "--query-file" => {
                options.query_file = Some(args.next().ok_or("--query-file needs a value")?)
            }
            "--engine" => options.engine = args.next().ok_or("--engine needs a value")?,
            "--store" => {
                options.store = StoreKind::parse(&args.next().ok_or("--store needs a value")?)?
            }
            "--shards" => {
                options.shards = args
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|_| "--shards must be a positive integer".to_owned())?;
                if options.shards == 0 {
                    return Err("--shards must be at least 1".to_owned());
                }
            }
            "--mutations" => {
                options.mutations = Some(args.next().ok_or("--mutations needs a value")?)
            }
            "--edge-burnback" => options.edge_burnback = true,
            "--explain" => options.explain = true,
            "--trace" => options.trace = true,
            "--count-only" => options.count_only = true,
            "--limit" => {
                options.limit = args
                    .next()
                    .ok_or("--limit needs a value")?
                    .parse()
                    .map_err(|_| "--limit must be a non-negative integer".to_owned())?;
            }
            "--threads" => {
                options.threads = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| {
                        "--threads must be a non-negative integer (0 = auto)".to_owned()
                    })?;
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => {
                if data_path.is_some() {
                    return Err(format!("unexpected positional argument {other}"));
                }
                data_path = Some(other.to_owned());
            }
        }
    }
    if options.engine == "help" || options.engine == "list" {
        // Listing engines needs no data file; handled before path validation.
        options.data_path = data_path.unwrap_or_default();
        return Ok(options);
    }
    options.data_path = data_path.ok_or_else(|| usage().to_owned())?;
    if options.query.is_some() && options.query_file.is_some() {
        return Err("--query and --query-file are mutually exclusive".to_owned());
    }
    Ok(options)
}

fn print_results(graph: &Graph, results: &EmbeddingSet, limited: Option<LimitInfo>) {
    let dict = graph.dictionary();
    for row in results.rows() {
        let labels: Vec<&str> = row
            .iter()
            .map(|n| dict.node_label(*n).unwrap_or("?"))
            .collect();
        println!("{}", labels.join("\t"));
    }
    // The evaluation is already bounded; the footer reports what the bound
    // dropped. A prefix serve may not know the full count (that is what
    // makes it O(k)), so the footer degrades honestly.
    if let Some(info) = limited.filter(|i| i.truncated) {
        match info.full_total {
            Some(total) => println!("… ({} more rows)", total - results.len()),
            None => println!("… (more rows exist)"),
        }
    }
}

fn read_query(options: &Options) -> Result<String, String> {
    if let Some(q) = &options.query {
        return Ok(q.clone());
    }
    if let Some(path) = &options.query_file {
        return std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read query file {path}: {e}"));
    }
    let mut buf = String::new();
    std::io::stdin()
        .read_to_string(&mut buf)
        .map_err(|e| format!("cannot read query from stdin: {e}"))?;
    Ok(buf)
}

fn run() -> Result<(), Failure> {
    let options = parse_args(std::env::args().skip(1)).or_usage()?;

    if options.engine == "help" || options.engine == "list" {
        println!("{}", engine_listing());
        return Ok(());
    }

    let file = std::fs::File::open(&options.data_path)
        .map_err(|e| Failure::Usage(format!("cannot open {}: {e}", options.data_path)))?;
    let graph = wireframe::graph::load(std::io::BufReader::new(file))
        .map_err(|e| Failure::Usage(format!("cannot load {}: {e}", options.data_path)))?;
    eprintln!(
        "loaded {}: {} triples, {} predicates, {} nodes · {} store",
        options.data_path,
        graph.triple_count(),
        graph.predicate_count(),
        graph.node_count(),
        options.store.name()
    );

    let query_text = read_query(&options).or_usage()?;

    let mut config = EngineConfig::default().with_store(options.store);
    if options.edge_burnback {
        config = config.with_edge_burnback();
    }
    if options.explain {
        config = config.with_explain();
    }
    if options.threads != 1 {
        // 0 = auto-detect; n > 1 = that many phase-two workers.
        let threads = if options.threads == 0 {
            wireframe::core::auto_threads()
        } else {
            options.threads
        };
        config = config.with_threads(threads);
    }
    // UnknownEngine's Display already names the registered engines; add the
    // descriptions-only listing for anything else.
    let engine_failure = |e: wireframe::WireframeError| match e {
        wireframe::WireframeError::UnknownEngine { requested, .. } => Failure::Usage(format!(
            "unknown engine {requested:?}\n{}",
            engine_listing()
        )),
        other => Failure::Runtime(other.to_string()),
    };
    let mut session_config = SessionConfig::new()
        .engine_config(config)
        .engine(&options.engine);
    if options.trace {
        // One-shot CLI run: capture every span, not the serving sample.
        session_config = session_config.trace_sample(1);
    }
    let session: Arc<dyn QueryExecutor> = if options.shards > 1 {
        // The cluster merge is defined on the factorized answer graph only;
        // gate on the registered capability (not the name) and fail before
        // partitioning rather than mid-construction. Unknown names fall
        // through so construction reports them with the full listing.
        let registry = default_registry();
        if registry.contains(&options.engine)
            && !registry
                .capabilities(&options.engine)
                .is_some_and(|c| c.sharded_merge)
        {
            let capable: Vec<&str> = registry
                .entries()
                .iter()
                .filter(|e| e.capabilities.sharded_merge)
                .map(|e| e.name)
                .collect();
            return Err(Failure::Usage(format!(
                "--shards requires an engine with the `sharded` capability \
                 (its factorized output composes under the scatter-gather \
                 merge); {:?} does not qualify — use one of: {}",
                options.engine,
                capable.join(", ")
            )));
        }
        eprintln!(
            "evaluating through {} vertex-partitioned shards",
            options.shards
        );
        Arc::new(
            ShardedCluster::new(graph, options.shards, session_config).map_err(engine_failure)?,
        )
    } else {
        Arc::new(Session::from_config(graph, session_config).map_err(engine_failure)?)
    };

    if let Some(path) = &options.mutations {
        let script = std::fs::read_to_string(path)
            .map_err(|e| Failure::Usage(format!("cannot read mutation script {path}: {e}")))?;
        // parse_script errors carry the offending line number; prefix the
        // path so the message reads like a compiler diagnostic.
        let mutation =
            Mutation::parse_script(&script).map_err(|e| Failure::Usage(format!("{path}: {e}")))?;
        // With --explain, prime the plan cache with the query *before* the
        // batch — plan + retained view only, no defactorization — so the
        // footprint pass has a view to maintain and the summary below
        // reports what actually happened to it. Priming is best-effort: a
        // query whose constants only exist after the mutation cannot even
        // parse yet, and the summary says why.
        let primed = if options.explain {
            match session.prime(&query_text) {
                Ok(retained) => retained,
                Err(e) => {
                    eprintln!("  (pre-mutation priming skipped: {e})");
                    false
                }
            }
        } else {
            false
        };
        let before = session.stats();
        let snap_before = session.metrics_snapshot();
        let outcome = session.apply_mutation(&mutation);
        let after = session.stats();
        let snap_delta = session.metrics_snapshot().delta(&snap_before);
        eprintln!(
            "applied {path}: +{} -{} triples → epoch {}{}{}",
            outcome.inserted,
            outcome.removed,
            session.epoch(),
            if session.shard_count() > 1 {
                format!(" (shard epochs {:?})", session.epoch_vector())
            } else {
                String::new()
            },
            if outcome.compacted {
                " (compacted)"
            } else {
                ""
            }
        );
        if options.explain {
            eprintln!(
                "  maintenance: {} plan(s) maintained in O(delta) \
                 (frontier {} node(s), {} µs) · {} plan(s) evicted{}",
                after.plans_maintained - before.plans_maintained,
                after.maintenance_frontier_nodes - before.maintenance_frontier_nodes,
                after.maintenance_micros - before.maintenance_micros,
                after.cache_invalidations - before.cache_invalidations,
                if primed {
                    ""
                } else {
                    " · (no retained view to maintain: the engine does not \
                     maintain, or the query is unmaintainable)"
                }
            );
            // The registry histograms break the counter totals down per
            // view: one maintain.view_us sample per maintained plan, one
            // maintain.batch_us sample per applied batch.
            if let Some(views) = snap_delta.histogram(wireframe::api::obs::names::MAINTAIN_VIEW_US)
            {
                eprintln!(
                    "  per-view latency: {} view(s) · p50 {} µs · max {} µs \
                     · mean {:.1} µs",
                    views.count,
                    views.quantile(50.0),
                    views.max,
                    views.mean()
                );
            }
        }
    }

    // `--count-only` needs the exact full count, so it evaluates unlimited;
    // everything else pushes the limit into evaluation, where a maintained
    // top-k prefix can answer it in O(k).
    let evaluation = if options.count_only {
        session.query(&query_text)
    } else {
        session.query_limited(&query_text, options.limit)
    }
    .map_err(|e| match e {
        // A query that does not parse is the caller's input, not an
        // evaluation failure.
        wireframe::WireframeError::Query(_) => Failure::Usage(e.to_string()),
        other => Failure::Runtime(other.to_string()),
    })?;
    if let Some(explain) = &evaluation.explain {
        eprint!("{explain}");
    } else if options.explain {
        eprintln!(
            "({} does not produce an explanation; timings: {:?} total)",
            evaluation.engine,
            evaluation.timings.total()
        );
    }

    // After a mutation script, the summary stamps the post-batch epoch so
    // scripted callers can tie the answer to the graph version it came from.
    let epoch_note = if options.mutations.is_some() {
        format!(" · epoch {}", session.epoch())
    } else {
        String::new()
    };
    if options.count_only {
        println!("{}", evaluation.embedding_count());
        eprintln!("{} embeddings{epoch_note}", evaluation.embedding_count());
    } else {
        print_results(
            &session.graph(),
            evaluation.embeddings(),
            evaluation.limited,
        );
        let summary = match evaluation.limited {
            Some(info) if info.truncated => match info.full_total {
                Some(total) => {
                    format!("{} of {} embeddings", evaluation.embedding_count(), total)
                }
                None => format!("{} embeddings (truncated)", evaluation.embedding_count()),
            },
            _ => format!("{} embeddings", evaluation.embedding_count()),
        };
        let prefix_note = if evaluation.limited.is_some_and(|i| i.prefix_served) {
            " · served from the maintained top-k prefix"
        } else {
            ""
        };
        eprintln!("{summary}{prefix_note}{epoch_note}");
    }
    if options.trace {
        // Completed span trees, most recent last; under --shards the
        // cluster's trees carry scatter/merge children instead of the
        // single-session phase breakdown.
        for span in session.recent_spans() {
            eprint!("{}", span.render());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) => {
            eprintln!("{}", failure.message());
            match failure {
                Failure::Runtime(_) => ExitCode::FAILURE,
                Failure::Usage(_) => ExitCode::from(2),
            }
        }
    }
}

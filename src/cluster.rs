//! [`ShardedCluster`]: scatter-gather serving over subject-partitioned
//! shards, behind the same [`QueryExecutor`] surface as a single
//! [`Session`].
//!
//! The cluster partitions one graph into `N` shards by vertex range
//! ([`wireframe_graph::shard_of`]: `subject % N`), gives every shard its own
//! [`Session`] (own graph versions, own epoch, own counters), and answers
//! queries by **scatter-gather over the factorized representation**: each
//! shard contributes its per-pattern candidate answer-graph edges
//! ([`wireframe_core::scan_candidates`], fanned out on a scoped thread
//! pool), the cluster unions them and re-runs node burnback on the merged
//! answer graph ([`wireframe_core::merge_candidates`]), and **one**
//! defactorization turns the small merged artifact into embeddings. The
//! expensive phase never runs per shard — that is the factorization
//! dividend the paper measures, applied to distribution.
//!
//! Mutations route by the same partition function
//! ([`wireframe_graph::route_mutation`]): a batch splits into per-shard
//! sub-batches (or broadcasts, when it interns new labels, keeping every
//! shard's dictionary bit-identical). Shards untouched by a batch do not
//! advance their epoch, which is why the cluster exposes a per-shard
//! **epoch vector** next to its scalar batch counter — see
//! [`QueryExecutor::epoch_vector`].
//!
//! The cluster is gated on **capabilities, not names**: the scatter-gather
//! merge is defined on the factorized answer graph, so construction accepts
//! exactly the engines whose registered
//! [`EngineCapabilities::sharded_merge`](wireframe_api::EngineCapabilities)
//! bit is set (`wireframe` and `wco` in the stock registry) and rejects the
//! baselines, which never factorize.

use std::sync::{Arc, RwLock};
use std::time::Instant;

use wireframe_api::obs::{
    names, Counter, Gauge, Histogram, MetricsSnapshot, Registry, Span, Tracer, TracerConfig,
};
use wireframe_api::{
    EpochListener, Evaluation, ExecutorStats, MaintainedView, QueryExecutor, WireframeError,
};
use wireframe_core::{merge_candidates, plan, scan_candidates, EvalOptions};
use wireframe_graph::{
    partition_graph, route_mutation, EdgeDelta, Graph, Mutation, MutationOutcome, Triple,
};
use wireframe_query::{parse_query, ConjunctiveQuery};

use crate::registry::default_registry;
use crate::session::{Session, SessionConfig};

/// Cluster-wide mutable state: the scalar epoch, advanced once per applied
/// batch. Queries snapshot per-shard graphs under this lock's read side;
/// mutations route and apply under its write side — which is what makes a
/// query's cross-shard snapshot consistent (no batch can land between two
/// shard snapshots).
struct ClusterState {
    epoch: u64,
}

/// N vertex-partitioned shards served through one [`QueryExecutor`].
///
/// ```
/// use wireframe::api::QueryExecutor;
/// use wireframe::graph::GraphBuilder;
/// use wireframe::{SessionConfig, ShardedCluster};
///
/// let mut b = GraphBuilder::new();
/// b.add("alice", "knows", "bob");
/// b.add("bob", "knows", "carol");
/// let cluster = ShardedCluster::new(b.build(), 2, SessionConfig::default()).unwrap();
///
/// let result = cluster
///     .query("SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }")
///     .unwrap();
/// assert_eq!(result.embedding_count(), 1);
/// assert_eq!(result.epochs.len(), 3, "one per shard, plus the cluster epoch");
/// ```
pub struct ShardedCluster {
    shards: Vec<Session>,
    state: RwLock<ClusterState>,
    listeners: RwLock<Vec<EpochListener>>,
    options: EvalOptions,
    /// The configured engine name (capability-checked at construction);
    /// stamped into merged evaluations.
    engine: String,
    /// Cluster-level merged evaluations (each is one scatter + merge +
    /// defactorization), reported as full evaluations in [`ShardedCluster::
    /// stats`] on top of the per-shard sums.
    full_evals: Counter,
    /// Wall-clock of the fan-out candidate scans (all shards in flight).
    scatter_us: Histogram,
    /// Wall-clock of merge + burnback + defactorization on the merged
    /// answer graph.
    merge_us: Histogram,
    shards_gauge: Gauge,
    /// Cluster-level telemetry (scatter/merge latency, merged-evaluation
    /// count). Per-shard counters live in each shard's own session
    /// registry; [`ShardedCluster::metrics_snapshot`] merges them.
    metrics: Registry,
    /// Records cluster-level query span trees (scatter/merge children) —
    /// shard sessions never see a cluster query, so they can't.
    tracer: Tracer,
}

impl ShardedCluster {
    /// Partitions `graph` into `shards` subject-owned shards and builds one
    /// [`Session`] per shard from `config` — the same configuration value a
    /// single session consumes, applied uniformly.
    ///
    /// Errors with [`WireframeError::UnknownEngine`] when the configured
    /// engine's registered capabilities lack `sharded_merge` (the merge is
    /// defined on the factorized answer graph only); the error's `known`
    /// list names the engines that do qualify.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0` (the CLIs validate the flag before any
    /// work).
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        shards: usize,
        config: SessionConfig,
    ) -> Result<Self, WireframeError> {
        assert!(shards >= 1, "a cluster has at least one shard");
        let registry = default_registry();
        let engine = config
            .engine
            .clone()
            .or_else(|| registry.default_engine().map(str::to_owned))
            .unwrap_or_default();
        if !registry
            .capabilities(&engine)
            .is_some_and(|c| c.sharded_merge)
        {
            return Err(WireframeError::UnknownEngine {
                requested: engine,
                known: registry
                    .entries()
                    .iter()
                    .filter(|e| e.capabilities.sharded_merge)
                    .map(|e| e.name.to_owned())
                    .collect(),
            });
        }
        let mut options = EvalOptions::default();
        if config.engine_config.threads > 0 {
            options = options.with_threads(config.engine_config.threads);
        }
        if config.engine_config.limit > 0 {
            options = options.with_limit(config.engine_config.limit);
        }
        let graph = graph.into();
        let shards = partition_graph(&graph, shards)
            .into_iter()
            .enumerate()
            .map(|(i, part)| {
                // Each shard session stamps `shard=i` on its query spans,
                // so traces surfaced through the cluster say which
                // partition produced them.
                Session::from_config(part, config.clone().engine(&engine).shard_id(i))
            })
            .collect::<Result<Vec<_>, _>>()?;
        // Same obs switch the per-shard sessions honour: counters always
        // stay live, histograms drop to no-ops under `--obs off`.
        let metrics = if config.obs.unwrap_or(true) {
            Registry::new()
        } else {
            Registry::counters_only()
        };
        let shards_gauge = metrics.gauge(names::CLUSTER_SHARDS);
        shards_gauge.set(shards.len() as u64);
        // Cluster queries never route through a shard session's query path,
        // so the cluster records its own scatter/merge span trees with the
        // same sampling knobs the sessions honour.
        let tracer = Tracer::new(TracerConfig {
            enabled: config.obs.unwrap_or(true),
            sample_every: config.trace_sample.unwrap_or(64).max(1),
            slow_micros: config.slow_query_micros.unwrap_or(0),
            ..TracerConfig::default()
        });
        Ok(ShardedCluster {
            full_evals: metrics.counter(names::FULL_EVALUATIONS),
            scatter_us: metrics.histogram(names::CLUSTER_SCATTER_US),
            merge_us: metrics.histogram(names::CLUSTER_MERGE_US),
            shards_gauge,
            shards,
            state: RwLock::new(ClusterState { epoch: 0 }),
            listeners: RwLock::new(Vec::new()),
            options,
            engine,
            metrics,
            tracer,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard sessions, for inspection (per-shard counters, epochs).
    pub fn shards(&self) -> &[Session] {
        &self.shards
    }

    /// A consistent cross-shard snapshot: per-shard graphs, per-shard
    /// epochs, and the cluster epoch, all taken under the cluster read lock
    /// so no mutation interleaves.
    fn snapshot(&self) -> (Vec<Arc<Graph>>, Vec<u64>, u64) {
        let state = self.state.read().unwrap_or_else(|e| e.into_inner());
        let graphs = self.shards.iter().map(|s| s.graph()).collect();
        let epochs = self.shards.iter().map(|s| s.epoch()).collect();
        (graphs, epochs, state.epoch)
    }

    /// Scatter-gather evaluation: per-shard candidate scans on a scoped
    /// thread pool, one merge, one burnback, one defactorization.
    fn evaluate_sharded(
        &self,
        graphs: &[Arc<Graph>],
        shard_epochs: Vec<u64>,
        cluster_epoch: u64,
        query: &ConjunctiveQuery,
        limit: usize,
    ) -> Result<Evaluation, WireframeError> {
        let t = Instant::now();
        let scans: Vec<Vec<Vec<_>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = graphs
                .iter()
                .map(|graph| scope.spawn(move || scan_candidates(graph, query)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("candidate scans do not panic"))
                .collect()
        });
        let scatter_elapsed = t.elapsed();
        self.scatter_us.record_duration(scatter_elapsed);
        let t_merge = Instant::now();
        let view = merge_candidates(query, &graphs[0], &scans, self.options)?;
        let phase_one = t.elapsed();
        self.full_evals.inc();

        let mut evaluation = MaintainedView::evaluate(&view)?;
        let merge_elapsed = t_merge.elapsed();
        self.merge_us.record_duration(merge_elapsed);
        evaluation.engine = self.engine.clone();
        // One epoch per shard plus the cluster's scalar batch counter as the
        // final component, so `Evaluation::epoch()` reads the cluster epoch.
        evaluation.epochs = shard_epochs;
        evaluation.epochs.push(cluster_epoch);
        // Scatter + merge + burnback is this executor's phase one.
        evaluation.timings.answer_graph += phase_one;
        // The merged view is built fresh per query, not retained: reporting
        // maintenance state would suggest a serving history it doesn't have.
        evaluation.maintenance = None;
        // The gather keeps only the canonical first `limit` rows of the
        // merged defactorization (the merged view is per-query, so there is
        // no retained prefix to serve from — the truncation is the bound).
        evaluation.apply_limit(limit);
        let elapsed = t.elapsed();
        if self.tracer.wants(elapsed) {
            self.tracer.record(
                Span::new("query", elapsed)
                    .field("engine", evaluation.engine.clone())
                    .field("shards", self.shards.len().to_string())
                    .field("epochs", format!("{:?}", evaluation.epochs))
                    .field("rows", evaluation.embedding_count().to_string())
                    .child(Span::new("scatter", scatter_elapsed))
                    .child(Span::new("merge", merge_elapsed)),
            );
        }
        Ok(evaluation)
    }
}

impl QueryExecutor for ShardedCluster {
    fn engine_name(&self) -> &str {
        &self.engine
    }

    fn query(&self, text: &str) -> Result<Evaluation, WireframeError> {
        self.query_limited(text, 0)
    }

    fn query_limited(&self, text: &str, limit: usize) -> Result<Evaluation, WireframeError> {
        let (graphs, epochs, epoch) = self.snapshot();
        let query = parse_query(text, graphs[0].dictionary())?;
        let limit = if limit > 0 { limit } else { self.options.limit };
        self.evaluate_sharded(&graphs, epochs, epoch, &query, limit)
    }

    fn execute(&self, query: &ConjunctiveQuery) -> Result<Evaluation, WireframeError> {
        let (graphs, epochs, epoch) = self.snapshot();
        self.evaluate_sharded(&graphs, epochs, epoch, query, self.options.limit)
    }

    fn execute_limited(
        &self,
        query: &ConjunctiveQuery,
        limit: usize,
    ) -> Result<Evaluation, WireframeError> {
        let (graphs, epochs, epoch) = self.snapshot();
        let limit = if limit > 0 { limit } else { self.options.limit };
        self.evaluate_sharded(&graphs, epochs, epoch, query, limit)
    }

    fn prime(&self, text: &str) -> Result<bool, WireframeError> {
        // The merged view is rebuilt per query (no retained cross-shard
        // views yet), so priming only validates: parse against the shared
        // dictionary and plan against shard 0's catalog — surfacing the
        // same parse/connectivity errors a query would.
        let (graphs, _, _) = self.snapshot();
        let query = parse_query(text, graphs[0].dictionary())?;
        plan(&graphs[0], &query, self.options.planner)
            .map_err(WireframeError::from)
            .map(|_| false)
    }

    fn apply_mutation(&self, mutation: &Mutation) -> MutationOutcome {
        let mut state = self.state.write().unwrap_or_else(|e| e.into_inner());
        // Shard dictionaries are aligned (see `route_mutation`), so any
        // shard's current dictionary routes the batch; shard 0's by
        // convention.
        let dict_graph = self.shards[0].graph();
        let routed = route_mutation(dict_graph.dictionary(), mutation, self.shards.len());
        let mut inserted = 0;
        let mut removed = 0;
        let mut compacted = false;
        let mut delta_inserted: Vec<Triple> = Vec::new();
        let mut delta_removed: Vec<Triple> = Vec::new();
        for (shard, batch) in self.shards.iter().zip(&routed) {
            if let Some(batch) = batch {
                let outcome = shard.apply_mutation(batch);
                inserted += outcome.inserted;
                removed += outcome.removed;
                compacted |= outcome.compacted;
                // Per-shard deltas are disjoint (each triple nets out on its
                // subject's owner), so concatenation is the exact union.
                delta_inserted.extend_from_slice(outcome.delta.inserted());
                delta_removed.extend_from_slice(outcome.delta.removed());
            }
        }
        state.epoch += 1;
        let epoch = state.epoch;
        let delta = EdgeDelta::new(delta_inserted, delta_removed);
        // Notify under the write lock: cluster listeners observe strictly
        // increasing epochs with no concurrent callbacks, the same total
        // order a single session guarantees.
        {
            let listeners = self.listeners.read().unwrap_or_else(|e| e.into_inner());
            for listener in listeners.iter() {
                listener(epoch, &delta);
            }
        }
        drop(state);
        MutationOutcome {
            inserted,
            removed,
            compacted,
            delta,
        }
    }

    fn epoch(&self) -> u64 {
        self.state.read().unwrap_or_else(|e| e.into_inner()).epoch
    }

    fn epoch_vector(&self) -> Vec<u64> {
        // Under the read lock so the vector is a consistent cut: a batch in
        // flight is either fully reflected or not at all.
        let _state = self.state.read().unwrap_or_else(|e| e.into_inner());
        self.shards.iter().map(|s| s.epoch()).collect()
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn graph(&self) -> Arc<Graph> {
        self.shards[0].graph()
    }

    fn add_epoch_listener(&self, listener: EpochListener) {
        self.listeners
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .push(listener);
    }

    fn stats(&self) -> ExecutorStats {
        // The merged snapshot sums every shard's `executor.*` counters and
        // adds the cluster's own (merged evaluations), so one read-out
        // covers both levels.
        ExecutorStats::from_snapshot(&self.metrics_snapshot())
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shards_gauge.set(self.shards.len() as u64);
        let mut merged = self.metrics.snapshot();
        for (i, shard) in self.shards.iter().enumerate() {
            let snap = shard.metrics_snapshot();
            // The unprefixed merge gives cluster-wide totals (counters and
            // histograms sum exactly; gauges sum, which is the right
            // reading for sizes like `graph.triples`)…
            merged.merge(&snap);
            // …while the prefixed copy preserves the per-shard breakdown
            // for skew diagnosis.
            merged.merge(&snap.prefixed(&format!("shard{i}.")));
        }
        merged
    }

    fn recent_spans(&self) -> Vec<Span> {
        // Cluster queries record here (scatter/merge trees); per-shard
        // sessions only carry spans for queries addressed to an individual
        // shard (each stamped `shard=N`). Surface both.
        let mut spans = self.tracer.recent();
        spans.extend(self.shards.iter().flat_map(|s| s.tracer().recent()));
        spans
    }
}

impl std::fmt::Debug for ShardedCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCluster")
            .field("shards", &self.shards.len())
            .field("epoch", &QueryExecutor::epoch(self))
            .field("epochs", &QueryExecutor::epoch_vector(self))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireframe_graph::GraphBuilder;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add("alice", "knows", "bob");
        b.add("bob", "knows", "carol");
        b.add("carol", "knows", "dave");
        b.add("bob", "likes", "pizza");
        b.add("carol", "likes", "pizza");
        b.build()
    }

    const CHAIN: &str = "SELECT ?x ?z WHERE { ?x :knows ?y . ?y :likes ?z . }";

    #[test]
    fn sharded_answers_match_a_single_session() {
        let g = graph();
        let reference = Session::new(g.clone()).query(CHAIN).unwrap();
        for shards in [1, 2, 4] {
            let cluster = ShardedCluster::new(g.clone(), shards, SessionConfig::default()).unwrap();
            let result = cluster.query(CHAIN).unwrap();
            assert!(result.embeddings.same_answer(&reference.embeddings));
            assert_eq!(result.epochs, vec![0; shards + 1]);
            assert_eq!(result.epoch(), 0);
        }
    }

    #[test]
    fn mutations_route_and_bump_only_touched_shards() {
        let cluster = ShardedCluster::new(graph(), 2, SessionConfig::default()).unwrap();
        let before = cluster.query(CHAIN).unwrap().embedding_count();
        // One known-label edge: routes to exactly one shard.
        let outcome = cluster.apply_mutation(&Mutation::new().insert("dave", "likes", "pizza"));
        assert_eq!(outcome.inserted, 1);
        assert_eq!(QueryExecutor::epoch(&cluster), 1);
        let vector = cluster.epoch_vector();
        assert_eq!(
            vector.iter().sum::<u64>(),
            1,
            "one shard advanced: {vector:?}"
        );
        let result = cluster.query(CHAIN).unwrap();
        assert_eq!(result.embedding_count(), before + 1);
        assert_eq!(
            result.epoch(),
            1,
            "the final component is the cluster epoch"
        );
        assert_eq!(result.epochs[..vector.len()], vector);
    }

    #[test]
    fn new_labels_broadcast_to_every_shard() {
        let cluster = ShardedCluster::new(graph(), 3, SessionConfig::default()).unwrap();
        cluster.apply_mutation(&Mutation::new().insert("erin", "knows", "alice"));
        assert_eq!(
            cluster.epoch_vector(),
            vec![1, 1, 1],
            "interning broadcasts"
        );
        assert_eq!(QueryExecutor::epoch(&cluster), 1, "…but is one batch");
        let result = cluster
            .query("SELECT ?x WHERE { ?x :knows alice . }")
            .unwrap();
        assert_eq!(result.embedding_count(), 1);
    }

    #[test]
    fn listeners_observe_cluster_epochs_and_merged_deltas() {
        use std::sync::Mutex;
        let cluster = ShardedCluster::new(graph(), 2, SessionConfig::default()).unwrap();
        let seen: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        cluster.add_epoch_listener(Box::new(move |epoch, delta| {
            sink.lock().unwrap().push((epoch, delta.inserted().len()));
        }));
        cluster.apply_mutation(
            &Mutation::new()
                .insert("alice", "likes", "pizza")
                .insert("dave", "likes", "pizza"),
        );
        let seen = seen.lock().unwrap();
        assert_eq!(seen.as_slice(), &[(1, 2)]);
    }

    #[test]
    fn engines_without_sharded_merge_are_rejected() {
        for name in ["relational", "sortmerge", "exploration"] {
            let err = ShardedCluster::new(graph(), 2, SessionConfig::new().engine(name));
            match err {
                Err(WireframeError::UnknownEngine { requested, known }) => {
                    assert_eq!(requested, name);
                    assert_eq!(
                        known,
                        vec!["wireframe".to_owned(), "wco".to_owned()],
                        "the error names the engines whose capabilities qualify"
                    );
                }
                other => panic!("{name}: expected a capability rejection, got {other:?}"),
            }
        }
    }

    #[test]
    fn wco_clusters_merge_like_wireframe_ones() {
        let g = graph();
        let reference = Session::new(g.clone()).query(CHAIN).unwrap();
        let cluster = ShardedCluster::new(g, 2, SessionConfig::new().engine("wco")).unwrap();
        assert_eq!(cluster.engine_name(), "wco");
        let result = cluster.query(CHAIN).unwrap();
        assert_eq!(result.engine, "wco");
        assert!(result.embeddings.same_answer(&reference.embeddings));
    }

    #[test]
    fn cluster_snapshot_merges_shards_and_keeps_prefixed_breakdowns() {
        let cluster =
            ShardedCluster::new(graph(), 2, SessionConfig::default().trace_sample(1)).unwrap();
        cluster.query(CHAIN).unwrap();
        cluster.query(CHAIN).unwrap();

        let snap = cluster.metrics_snapshot();
        assert_eq!(snap.gauge(names::CLUSTER_SHARDS), 2);
        assert_eq!(
            snap.counter(names::FULL_EVALUATIONS),
            2,
            "each cluster query is one merged evaluation"
        );
        assert_eq!(snap.histogram(names::CLUSTER_SCATTER_US).unwrap().count, 2);
        assert_eq!(snap.histogram(names::CLUSTER_MERGE_US).unwrap().count, 2);
        // The per-shard copies survive under a shard prefix; their sum is
        // the unprefixed cluster-wide gauge.
        let per_shard: u64 = (0..2)
            .map(|i| snap.gauge(&format!("shard{i}.{}", names::GRAPH_TRIPLES)))
            .sum();
        assert_eq!(per_shard, 5);
        assert_eq!(snap.gauge(names::GRAPH_TRIPLES), 5);
        // `stats()` reads the same snapshot, so the two surfaces agree.
        assert_eq!(QueryExecutor::stats(&cluster).full_evaluations, 2);
        // The cluster records its own span trees with scatter/merge
        // children — shard sessions never see a cluster query.
        let spans = cluster.recent_spans();
        assert_eq!(spans.len(), 2, "trace_sample(1) keeps every span");
        for span in &spans {
            let text = span.render();
            assert!(text.contains("shards=2"), "{text}");
            assert!(text.contains("scatter") && text.contains("merge"), "{text}");
        }
        // A query addressed to an individual shard session is stamped with
        // that shard's id and surfaces through the same cluster view.
        cluster.shards[0].query(CHAIN).unwrap();
        assert!(
            cluster
                .recent_spans()
                .iter()
                .any(|s| s.render().contains("shard=0")),
            "direct shard queries carry their partition id"
        );
    }

    #[test]
    fn prime_validates_without_materializing() {
        let cluster = ShardedCluster::new(graph(), 2, SessionConfig::default()).unwrap();
        assert!(!cluster.prime(CHAIN).unwrap());
        assert!(cluster.prime("SELECT ?x WHERE {").is_err());
        assert!(
            cluster
                .prime("SELECT * WHERE { ?a :knows ?b . ?c :likes ?d . }")
                .is_err(),
            "disconnected queries fail at prime time"
        );
    }
}

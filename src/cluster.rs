//! [`ShardedCluster`]: scatter-gather serving over subject-partitioned
//! shards, behind the same [`QueryExecutor`] surface as a single
//! [`Session`].
//!
//! The cluster partitions one graph into `N` shards by vertex range
//! ([`wireframe_graph::shard_of`]: `subject % N`), gives every shard its own
//! [`Session`] (own graph versions, own epoch, own counters), and answers
//! queries by **scatter-gather over the factorized representation**: each
//! shard contributes its per-pattern candidate answer-graph edges
//! ([`wireframe_core::scan_candidates`], fanned out on a scoped thread
//! pool), the cluster unions them and re-runs node burnback on the merged
//! answer graph ([`wireframe_core::merge_candidates`]), and **one**
//! defactorization turns the small merged artifact into embeddings. The
//! expensive phase never runs per shard — that is the factorization
//! dividend the paper measures, applied to distribution.
//!
//! Mutations route by the same partition function
//! ([`wireframe_graph::route_mutation`]): a batch splits into per-shard
//! sub-batches (or broadcasts, when it interns new labels, keeping every
//! shard's dictionary bit-identical). Shards untouched by a batch do not
//! advance their epoch, which is why the cluster exposes a per-shard
//! **epoch vector** next to its scalar batch counter — see
//! [`QueryExecutor::epoch_vector`].
//!
//! The cluster is gated on **capabilities, not names**: the scatter-gather
//! merge is defined on the factorized answer graph, so construction accepts
//! exactly the engines whose registered
//! [`EngineCapabilities::sharded_merge`](wireframe_api::EngineCapabilities)
//! bit is set (`wireframe` and `wco` in the stock registry) and rejects the
//! baselines, which never factorize.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use wireframe_api::{
    EpochListener, Evaluation, ExecutorStats, MaintainedView, QueryExecutor, WireframeError,
};
use wireframe_core::{merge_candidates, plan, scan_candidates, EvalOptions};
use wireframe_graph::{
    partition_graph, route_mutation, EdgeDelta, Graph, Mutation, MutationOutcome, Triple,
};
use wireframe_query::{parse_query, ConjunctiveQuery};

use crate::registry::default_registry;
use crate::session::{Session, SessionConfig};

/// Cluster-wide mutable state: the scalar epoch, advanced once per applied
/// batch. Queries snapshot per-shard graphs under this lock's read side;
/// mutations route and apply under its write side — which is what makes a
/// query's cross-shard snapshot consistent (no batch can land between two
/// shard snapshots).
struct ClusterState {
    epoch: u64,
}

/// N vertex-partitioned shards served through one [`QueryExecutor`].
///
/// ```
/// use wireframe::api::QueryExecutor;
/// use wireframe::graph::GraphBuilder;
/// use wireframe::{SessionConfig, ShardedCluster};
///
/// let mut b = GraphBuilder::new();
/// b.add("alice", "knows", "bob");
/// b.add("bob", "knows", "carol");
/// let cluster = ShardedCluster::new(b.build(), 2, SessionConfig::default()).unwrap();
///
/// let result = cluster
///     .query("SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }")
///     .unwrap();
/// assert_eq!(result.embedding_count(), 1);
/// assert_eq!(result.epochs.len(), 3, "one per shard, plus the cluster epoch");
/// ```
pub struct ShardedCluster {
    shards: Vec<Session>,
    state: RwLock<ClusterState>,
    listeners: RwLock<Vec<EpochListener>>,
    options: EvalOptions,
    /// The configured engine name (capability-checked at construction);
    /// stamped into merged evaluations.
    engine: String,
    /// Cluster-level merged evaluations (each is one scatter + merge +
    /// defactorization), reported as full evaluations in [`ShardedCluster::
    /// stats`] on top of the per-shard sums.
    full_evals: AtomicU64,
}

impl ShardedCluster {
    /// Partitions `graph` into `shards` subject-owned shards and builds one
    /// [`Session`] per shard from `config` — the same configuration value a
    /// single session consumes, applied uniformly.
    ///
    /// Errors with [`WireframeError::UnknownEngine`] when the configured
    /// engine's registered capabilities lack `sharded_merge` (the merge is
    /// defined on the factorized answer graph only); the error's `known`
    /// list names the engines that do qualify.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0` (the CLIs validate the flag before any
    /// work).
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        shards: usize,
        config: SessionConfig,
    ) -> Result<Self, WireframeError> {
        assert!(shards >= 1, "a cluster has at least one shard");
        let registry = default_registry();
        let engine = config
            .engine
            .clone()
            .or_else(|| registry.default_engine().map(str::to_owned))
            .unwrap_or_default();
        if !registry
            .capabilities(&engine)
            .is_some_and(|c| c.sharded_merge)
        {
            return Err(WireframeError::UnknownEngine {
                requested: engine,
                known: registry
                    .entries()
                    .iter()
                    .filter(|e| e.capabilities.sharded_merge)
                    .map(|e| e.name.to_owned())
                    .collect(),
            });
        }
        let mut options = EvalOptions::default();
        if config.engine_config.threads > 0 {
            options = options.with_threads(config.engine_config.threads);
        }
        let graph = graph.into();
        let shards = partition_graph(&graph, shards)
            .into_iter()
            .map(|part| Session::from_config(part, config.clone().engine(&engine)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedCluster {
            shards,
            state: RwLock::new(ClusterState { epoch: 0 }),
            listeners: RwLock::new(Vec::new()),
            options,
            engine,
            full_evals: AtomicU64::new(0),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard sessions, for inspection (per-shard counters, epochs).
    pub fn shards(&self) -> &[Session] {
        &self.shards
    }

    /// A consistent cross-shard snapshot: per-shard graphs, per-shard
    /// epochs, and the cluster epoch, all taken under the cluster read lock
    /// so no mutation interleaves.
    fn snapshot(&self) -> (Vec<Arc<Graph>>, Vec<u64>, u64) {
        let state = self.state.read().unwrap_or_else(|e| e.into_inner());
        let graphs = self.shards.iter().map(|s| s.graph()).collect();
        let epochs = self.shards.iter().map(|s| s.epoch()).collect();
        (graphs, epochs, state.epoch)
    }

    /// Scatter-gather evaluation: per-shard candidate scans on a scoped
    /// thread pool, one merge, one burnback, one defactorization.
    fn evaluate_sharded(
        &self,
        graphs: &[Arc<Graph>],
        shard_epochs: Vec<u64>,
        cluster_epoch: u64,
        query: &ConjunctiveQuery,
    ) -> Result<Evaluation, WireframeError> {
        let t = Instant::now();
        let scans: Vec<Vec<Vec<_>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = graphs
                .iter()
                .map(|graph| scope.spawn(move || scan_candidates(graph, query)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("candidate scans do not panic"))
                .collect()
        });
        let view = merge_candidates(query, &graphs[0], &scans, self.options)?;
        let phase_one = t.elapsed();
        self.full_evals.fetch_add(1, Ordering::Relaxed);

        let mut evaluation = MaintainedView::evaluate(&view)?;
        evaluation.engine = self.engine.clone();
        // One epoch per shard plus the cluster's scalar batch counter as the
        // final component, so `Evaluation::epoch()` reads the cluster epoch.
        evaluation.epochs = shard_epochs;
        evaluation.epochs.push(cluster_epoch);
        // Scatter + merge + burnback is this executor's phase one.
        evaluation.timings.answer_graph += phase_one;
        // The merged view is built fresh per query, not retained: reporting
        // maintenance state would suggest a serving history it doesn't have.
        evaluation.maintenance = None;
        Ok(evaluation)
    }
}

impl QueryExecutor for ShardedCluster {
    fn engine_name(&self) -> &str {
        &self.engine
    }

    fn query(&self, text: &str) -> Result<Evaluation, WireframeError> {
        let (graphs, epochs, epoch) = self.snapshot();
        let query = parse_query(text, graphs[0].dictionary())?;
        self.evaluate_sharded(&graphs, epochs, epoch, &query)
    }

    fn execute(&self, query: &ConjunctiveQuery) -> Result<Evaluation, WireframeError> {
        let (graphs, epochs, epoch) = self.snapshot();
        self.evaluate_sharded(&graphs, epochs, epoch, query)
    }

    fn prime(&self, text: &str) -> Result<bool, WireframeError> {
        // The merged view is rebuilt per query (no retained cross-shard
        // views yet), so priming only validates: parse against the shared
        // dictionary and plan against shard 0's catalog — surfacing the
        // same parse/connectivity errors a query would.
        let (graphs, _, _) = self.snapshot();
        let query = parse_query(text, graphs[0].dictionary())?;
        plan(&graphs[0], &query, self.options.planner)
            .map_err(WireframeError::from)
            .map(|_| false)
    }

    fn apply_mutation(&self, mutation: &Mutation) -> MutationOutcome {
        let mut state = self.state.write().unwrap_or_else(|e| e.into_inner());
        // Shard dictionaries are aligned (see `route_mutation`), so any
        // shard's current dictionary routes the batch; shard 0's by
        // convention.
        let dict_graph = self.shards[0].graph();
        let routed = route_mutation(dict_graph.dictionary(), mutation, self.shards.len());
        let mut inserted = 0;
        let mut removed = 0;
        let mut compacted = false;
        let mut delta_inserted: Vec<Triple> = Vec::new();
        let mut delta_removed: Vec<Triple> = Vec::new();
        for (shard, batch) in self.shards.iter().zip(&routed) {
            if let Some(batch) = batch {
                let outcome = shard.apply_mutation(batch);
                inserted += outcome.inserted;
                removed += outcome.removed;
                compacted |= outcome.compacted;
                // Per-shard deltas are disjoint (each triple nets out on its
                // subject's owner), so concatenation is the exact union.
                delta_inserted.extend_from_slice(outcome.delta.inserted());
                delta_removed.extend_from_slice(outcome.delta.removed());
            }
        }
        state.epoch += 1;
        let epoch = state.epoch;
        let delta = EdgeDelta::new(delta_inserted, delta_removed);
        // Notify under the write lock: cluster listeners observe strictly
        // increasing epochs with no concurrent callbacks, the same total
        // order a single session guarantees.
        {
            let listeners = self.listeners.read().unwrap_or_else(|e| e.into_inner());
            for listener in listeners.iter() {
                listener(epoch, &delta);
            }
        }
        drop(state);
        MutationOutcome {
            inserted,
            removed,
            compacted,
            delta,
        }
    }

    fn epoch(&self) -> u64 {
        self.state.read().unwrap_or_else(|e| e.into_inner()).epoch
    }

    fn epoch_vector(&self) -> Vec<u64> {
        // Under the read lock so the vector is a consistent cut: a batch in
        // flight is either fully reflected or not at all.
        let _state = self.state.read().unwrap_or_else(|e| e.into_inner());
        self.shards.iter().map(|s| s.epoch()).collect()
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn graph(&self) -> Arc<Graph> {
        self.shards[0].graph()
    }

    fn add_epoch_listener(&self, listener: EpochListener) {
        self.listeners
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .push(listener);
    }

    fn stats(&self) -> ExecutorStats {
        let mut total = ExecutorStats::default();
        for shard in &self.shards {
            let s = QueryExecutor::stats(shard);
            total.cache_hits += s.cache_hits;
            total.cache_misses += s.cache_misses;
            total.cache_evictions += s.cache_evictions;
            total.cache_invalidations += s.cache_invalidations;
            total.view_serves += s.view_serves;
            total.full_evaluations += s.full_evaluations;
            total.plans_maintained += s.plans_maintained;
            total.maintenance_frontier_nodes += s.maintenance_frontier_nodes;
            total.maintenance_micros += s.maintenance_micros;
            total.mutation_cache_touches += s.mutation_cache_touches;
            total.compactions += s.compactions;
        }
        total.full_evaluations += self.full_evals.load(Ordering::Relaxed);
        total
    }
}

impl std::fmt::Debug for ShardedCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCluster")
            .field("shards", &self.shards.len())
            .field("epoch", &QueryExecutor::epoch(self))
            .field("epochs", &QueryExecutor::epoch_vector(self))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireframe_graph::GraphBuilder;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add("alice", "knows", "bob");
        b.add("bob", "knows", "carol");
        b.add("carol", "knows", "dave");
        b.add("bob", "likes", "pizza");
        b.add("carol", "likes", "pizza");
        b.build()
    }

    const CHAIN: &str = "SELECT ?x ?z WHERE { ?x :knows ?y . ?y :likes ?z . }";

    #[test]
    fn sharded_answers_match_a_single_session() {
        let g = graph();
        let reference = Session::new(g.clone()).query(CHAIN).unwrap();
        for shards in [1, 2, 4] {
            let cluster = ShardedCluster::new(g.clone(), shards, SessionConfig::default()).unwrap();
            let result = cluster.query(CHAIN).unwrap();
            assert!(result.embeddings.same_answer(&reference.embeddings));
            assert_eq!(result.epochs, vec![0; shards + 1]);
            assert_eq!(result.epoch(), 0);
        }
    }

    #[test]
    fn mutations_route_and_bump_only_touched_shards() {
        let cluster = ShardedCluster::new(graph(), 2, SessionConfig::default()).unwrap();
        let before = cluster.query(CHAIN).unwrap().embedding_count();
        // One known-label edge: routes to exactly one shard.
        let outcome = cluster.apply_mutation(&Mutation::new().insert("dave", "likes", "pizza"));
        assert_eq!(outcome.inserted, 1);
        assert_eq!(QueryExecutor::epoch(&cluster), 1);
        let vector = cluster.epoch_vector();
        assert_eq!(
            vector.iter().sum::<u64>(),
            1,
            "one shard advanced: {vector:?}"
        );
        let result = cluster.query(CHAIN).unwrap();
        assert_eq!(result.embedding_count(), before + 1);
        assert_eq!(
            result.epoch(),
            1,
            "the final component is the cluster epoch"
        );
        assert_eq!(result.epochs[..vector.len()], vector);
    }

    #[test]
    fn new_labels_broadcast_to_every_shard() {
        let cluster = ShardedCluster::new(graph(), 3, SessionConfig::default()).unwrap();
        cluster.apply_mutation(&Mutation::new().insert("erin", "knows", "alice"));
        assert_eq!(
            cluster.epoch_vector(),
            vec![1, 1, 1],
            "interning broadcasts"
        );
        assert_eq!(QueryExecutor::epoch(&cluster), 1, "…but is one batch");
        let result = cluster
            .query("SELECT ?x WHERE { ?x :knows alice . }")
            .unwrap();
        assert_eq!(result.embedding_count(), 1);
    }

    #[test]
    fn listeners_observe_cluster_epochs_and_merged_deltas() {
        use std::sync::Mutex;
        let cluster = ShardedCluster::new(graph(), 2, SessionConfig::default()).unwrap();
        let seen: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        cluster.add_epoch_listener(Box::new(move |epoch, delta| {
            sink.lock().unwrap().push((epoch, delta.inserted().len()));
        }));
        cluster.apply_mutation(
            &Mutation::new()
                .insert("alice", "likes", "pizza")
                .insert("dave", "likes", "pizza"),
        );
        let seen = seen.lock().unwrap();
        assert_eq!(seen.as_slice(), &[(1, 2)]);
    }

    #[test]
    fn engines_without_sharded_merge_are_rejected() {
        for name in ["relational", "sortmerge", "exploration"] {
            let err = ShardedCluster::new(graph(), 2, SessionConfig::new().engine(name));
            match err {
                Err(WireframeError::UnknownEngine { requested, known }) => {
                    assert_eq!(requested, name);
                    assert_eq!(
                        known,
                        vec!["wireframe".to_owned(), "wco".to_owned()],
                        "the error names the engines whose capabilities qualify"
                    );
                }
                other => panic!("{name}: expected a capability rejection, got {other:?}"),
            }
        }
    }

    #[test]
    fn wco_clusters_merge_like_wireframe_ones() {
        let g = graph();
        let reference = Session::new(g.clone()).query(CHAIN).unwrap();
        let cluster = ShardedCluster::new(g, 2, SessionConfig::new().engine("wco")).unwrap();
        assert_eq!(cluster.engine_name(), "wco");
        let result = cluster.query(CHAIN).unwrap();
        assert_eq!(result.engine, "wco");
        assert!(result.embeddings.same_answer(&reference.embeddings));
    }

    #[test]
    fn prime_validates_without_materializing() {
        let cluster = ShardedCluster::new(graph(), 2, SessionConfig::default()).unwrap();
        assert!(!cluster.prime(CHAIN).unwrap());
        assert!(cluster.prime("SELECT ?x WHERE {").is_err());
        assert!(
            cluster
                .prime("SELECT * WHERE { ?a :knows ?b . ?c :likes ?d . }")
                .is_err(),
            "disconnected queries fail at prime time"
        );
    }
}

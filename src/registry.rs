//! The stock engine registry: all five engines of the workspace by name.

use wireframe_api::{Engine, EngineCapabilities, EngineConfig, EngineRegistry};
use wireframe_baseline::{ExplorationEngine, RelationalEngine, SortMergeEngine};
use wireframe_core::{EvalOptions, WcoEngine, WireframeEngine};
use wireframe_graph::Graph;

fn eval_options(config: &EngineConfig) -> EvalOptions {
    let mut options = EvalOptions::default();
    if config.edge_burnback {
        options = options.with_edge_burnback();
    }
    if config.explain {
        options = options.with_explain();
    }
    if config.threads > 0 {
        options = options.with_threads(config.threads);
    }
    if config.limit > 0 {
        options = options.with_limit(config.limit);
    }
    options
}

fn build_wireframe<'g>(
    graph: &'g Graph,
    config: &EngineConfig,
) -> Box<dyn Engine + Send + Sync + 'g> {
    Box::new(WireframeEngine::with_options(graph, eval_options(config)))
}

fn build_wco<'g>(graph: &'g Graph, config: &EngineConfig) -> Box<dyn Engine + Send + Sync + 'g> {
    Box::new(WcoEngine::with_options(graph, eval_options(config)))
}

fn build_relational<'g>(
    graph: &'g Graph,
    _config: &EngineConfig,
) -> Box<dyn Engine + Send + Sync + 'g> {
    Box::new(RelationalEngine::new(graph))
}

fn build_sortmerge<'g>(
    graph: &'g Graph,
    _config: &EngineConfig,
) -> Box<dyn Engine + Send + Sync + 'g> {
    Box::new(SortMergeEngine::new(graph))
}

fn build_exploration<'g>(
    graph: &'g Graph,
    _config: &EngineConfig,
) -> Box<dyn Engine + Send + Sync + 'g> {
    Box::new(ExplorationEngine::new(graph))
}

/// The nominal capabilities of a factorized engine under default options.
const FACTORIZED: EngineCapabilities = EngineCapabilities {
    cyclic: true,
    factorizes: true,
    maintainable: true,
    maintainable_cyclic: true,
    parallel_defactorize: true,
    sharded_merge: true,
};

/// The nominal capabilities of a single-pass baseline: evaluates every
/// shape, retains nothing.
const BASELINE: EngineCapabilities = EngineCapabilities {
    cyclic: true,
    factorizes: false,
    maintainable: false,
    maintainable_cyclic: false,
    parallel_defactorize: false,
    sharded_merge: false,
};

/// The registry with every engine of the workspace:
///
/// * `wireframe` — the factorized answer-graph engine (the paper's
///   contribution; the default),
/// * `wco` — worst-case-optimal generic join (leapfrog variable extension)
///   producing the same factorized artifact; keeps **cyclic** views
///   maintainable even where `wireframe` declines,
/// * `relational` — pairwise hash joins with full materialization
///   (PostgreSQL / Virtuoso proxy),
/// * `sortmerge` — sort-merge joins over column-shaped scans (MonetDB proxy),
/// * `exploration` — depth-first backtracking pattern matching (Neo4J proxy).
///
/// Engines are storage-backend- and version-agnostic: they are built per
/// call over whatever [`Graph`] snapshot the `Session` facade hands them
/// (`csr`, `map`, or the dynamic `delta` backend), and the session — not the
/// engine — stamps the mutation epoch into each `Evaluation`.
///
/// Each entry carries its **nominal** capability set (what a
/// default-configured instance can do); serving layers route on these (and
/// on the narrower per-instance [`Engine::capabilities`]) instead of
/// matching names.
pub fn default_registry() -> EngineRegistry {
    let mut registry = EngineRegistry::new();
    registry
        .register(
            "wireframe",
            "factorized answer-graph evaluation (the paper's engine; default)",
            FACTORIZED,
            build_wireframe,
        )
        .register(
            "wco",
            "worst-case-optimal generic join; maintainable cyclic views",
            FACTORIZED,
            build_wco,
        )
        .register(
            "relational",
            "hash joins with full intermediate materialization (PostgreSQL/Virtuoso proxy)",
            BASELINE,
            build_relational,
        )
        .register(
            "sortmerge",
            "sort-merge joins over column-shaped scans (MonetDB proxy)",
            BASELINE,
            build_sortmerge,
        )
        .register(
            "exploration",
            "depth-first backtracking graph exploration (Neo4J proxy)",
            BASELINE,
            build_exploration,
        );
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireframe_graph::GraphBuilder;
    use wireframe_query::parse_query;

    #[test]
    fn all_five_engines_are_registered_and_buildable() {
        let registry = default_registry();
        assert_eq!(
            registry.names(),
            vec!["wireframe", "wco", "relational", "sortmerge", "exploration"]
        );
        assert_eq!(registry.default_engine(), Some("wireframe"));

        let mut b = GraphBuilder::new();
        b.add("a", "p", "b");
        let g = b.build();
        let q = parse_query("SELECT * WHERE { ?x :p ?y . }", g.dictionary()).unwrap();
        for name in registry.names() {
            let engine = registry
                .build(name, &g, &EngineConfig::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(engine.name(), name);
            let ev = engine.run(&q).unwrap();
            assert_eq!(ev.embedding_count(), 1, "{name}");
        }
    }

    #[test]
    fn capabilities_drive_routing_not_names() {
        let registry = default_registry();
        let caps = |name: &str| registry.capabilities(name).unwrap();
        assert!(caps("wireframe").factorizes && caps("wco").factorizes);
        assert!(!caps("relational").factorizes);
        assert!(!caps("exploration").maintainable);
        assert!(caps("wco").maintainable_cyclic);
        assert_eq!(
            registry.find_capable(|c| c.maintainable_cyclic),
            Some("wireframe"),
            "nominal (default-options) wireframe maintains cyclic views too"
        );
        assert_eq!(registry.find_capable(|c| !c.factorizes), Some("relational"));

        // The instance-level narrowing: a wireframe configured with edge
        // burnback loses cyclic maintainability, wco never does.
        let mut b = GraphBuilder::new();
        b.add("a", "p", "b");
        let g = b.build();
        let config = EngineConfig::default().with_edge_burnback();
        let wf = registry.build("wireframe", &g, &config).unwrap();
        assert!(!wf.capabilities().maintainable_cyclic);
        let wco = registry.build("wco", &g, &config).unwrap();
        assert!(wco.capabilities().maintainable_cyclic);
    }

    #[test]
    fn config_reaches_the_wireframe_engine() {
        let mut b = GraphBuilder::new();
        // Two diamonds plus cross-diamond C edges: the cross edges survive
        // node burnback (their endpoints stay supported) but close no diamond,
        // so only edge burnback removes them.
        b.add("3", "A", "4");
        b.add("3", "B", "2");
        b.add("4", "C", "1");
        b.add("2", "D", "1");
        b.add("7", "A", "8");
        b.add("7", "B", "6");
        b.add("8", "C", "5");
        b.add("6", "D", "5");
        b.add("4", "C", "5");
        b.add("8", "C", "1");
        let g = b.build();
        let q = parse_query(
            "SELECT * WHERE { ?x :A ?e . ?x :B ?z . ?e :C ?y . ?z :D ?y . }",
            g.dictionary(),
        )
        .unwrap();

        let registry = default_registry();
        let plain = registry
            .build("wireframe", &g, &EngineConfig::default())
            .unwrap()
            .run(&q)
            .unwrap();
        let burned = registry
            .build(
                "wireframe",
                &g,
                &EngineConfig::default().with_edge_burnback().with_explain(),
            )
            .unwrap()
            .run(&q)
            .unwrap();
        assert!(plain.embeddings().same_answer(burned.embeddings()));
        let plain_ag = plain.answer_graph_size().expect("wireframe factorizes");
        let burned_ag = burned.answer_graph_size().expect("wireframe factorizes");
        assert!(burned_ag < plain_ag);
        assert!(plain.explain.is_none());
        assert!(
            burned.explain.as_deref().unwrap_or("").contains("plan"),
            "explain must render when requested"
        );

        // The wco engine agrees with both on the cyclic diamond, with an
        // answer graph no larger than the node-burnback fixpoint.
        let wco = registry
            .build("wco", &g, &EngineConfig::default())
            .unwrap()
            .run(&q)
            .unwrap();
        assert!(wco.embeddings().same_answer(plain.embeddings()));
        assert!(wco.answer_graph_size().unwrap() <= plain_ag);
    }
}

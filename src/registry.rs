//! The stock engine registry: all four engines of the workspace by name.

use wireframe_api::{Engine, EngineConfig, EngineRegistry};
use wireframe_baseline::{ExplorationEngine, RelationalEngine, SortMergeEngine};
use wireframe_core::{EvalOptions, WireframeEngine};
use wireframe_graph::Graph;

fn build_wireframe<'g>(
    graph: &'g Graph,
    config: &EngineConfig,
) -> Box<dyn Engine + Send + Sync + 'g> {
    let mut options = EvalOptions::default();
    if config.edge_burnback {
        options = options.with_edge_burnback();
    }
    if config.explain {
        options = options.with_explain();
    }
    if config.threads > 0 {
        options = options.with_threads(config.threads);
    }
    Box::new(WireframeEngine::with_options(graph, options))
}

fn build_relational<'g>(
    graph: &'g Graph,
    _config: &EngineConfig,
) -> Box<dyn Engine + Send + Sync + 'g> {
    Box::new(RelationalEngine::new(graph))
}

fn build_sortmerge<'g>(
    graph: &'g Graph,
    _config: &EngineConfig,
) -> Box<dyn Engine + Send + Sync + 'g> {
    Box::new(SortMergeEngine::new(graph))
}

fn build_exploration<'g>(
    graph: &'g Graph,
    _config: &EngineConfig,
) -> Box<dyn Engine + Send + Sync + 'g> {
    Box::new(ExplorationEngine::new(graph))
}

/// The registry with every engine of the workspace:
///
/// * `wireframe` — the factorized answer-graph engine (the paper's
///   contribution; the default),
/// * `relational` — pairwise hash joins with full materialization
///   (PostgreSQL / Virtuoso proxy),
/// * `sortmerge` — sort-merge joins over column-shaped scans (MonetDB proxy),
/// * `exploration` — depth-first backtracking pattern matching (Neo4J proxy).
///
/// Engines are storage-backend- and version-agnostic: they are built per
/// call over whatever [`Graph`] snapshot the `Session` facade hands them
/// (`csr`, `map`, or the dynamic `delta` backend), and the session — not the
/// engine — stamps the mutation epoch into each `Evaluation`.
pub fn default_registry() -> EngineRegistry {
    let mut registry = EngineRegistry::new();
    registry
        .register(
            "wireframe",
            "factorized answer-graph evaluation (the paper's engine; default)",
            build_wireframe,
        )
        .register(
            "relational",
            "hash joins with full intermediate materialization (PostgreSQL/Virtuoso proxy)",
            build_relational,
        )
        .register(
            "sortmerge",
            "sort-merge joins over column-shaped scans (MonetDB proxy)",
            build_sortmerge,
        )
        .register(
            "exploration",
            "depth-first backtracking graph exploration (Neo4J proxy)",
            build_exploration,
        );
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireframe_graph::GraphBuilder;
    use wireframe_query::parse_query;

    #[test]
    fn all_four_engines_are_registered_and_buildable() {
        let registry = default_registry();
        assert_eq!(
            registry.names(),
            vec!["wireframe", "relational", "sortmerge", "exploration"]
        );
        assert_eq!(registry.default_engine(), Some("wireframe"));

        let mut b = GraphBuilder::new();
        b.add("a", "p", "b");
        let g = b.build();
        let q = parse_query("SELECT * WHERE { ?x :p ?y . }", g.dictionary()).unwrap();
        for name in registry.names() {
            let engine = registry
                .build(name, &g, &EngineConfig::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(engine.name(), name);
            let ev = engine.run(&q).unwrap();
            assert_eq!(ev.embedding_count(), 1, "{name}");
        }
    }

    #[test]
    fn config_reaches_the_wireframe_engine() {
        let mut b = GraphBuilder::new();
        // Two diamonds plus cross-diamond C edges: the cross edges survive
        // node burnback (their endpoints stay supported) but close no diamond,
        // so only edge burnback removes them.
        b.add("3", "A", "4");
        b.add("3", "B", "2");
        b.add("4", "C", "1");
        b.add("2", "D", "1");
        b.add("7", "A", "8");
        b.add("7", "B", "6");
        b.add("8", "C", "5");
        b.add("6", "D", "5");
        b.add("4", "C", "5");
        b.add("8", "C", "1");
        let g = b.build();
        let q = parse_query(
            "SELECT * WHERE { ?x :A ?e . ?x :B ?z . ?e :C ?y . ?z :D ?y . }",
            g.dictionary(),
        )
        .unwrap();

        let registry = default_registry();
        let plain = registry
            .build("wireframe", &g, &EngineConfig::default())
            .unwrap()
            .run(&q)
            .unwrap();
        let burned = registry
            .build(
                "wireframe",
                &g,
                &EngineConfig::default().with_edge_burnback().with_explain(),
            )
            .unwrap()
            .run(&q)
            .unwrap();
        assert!(plain.embeddings().same_answer(burned.embeddings()));
        let plain_ag = plain.answer_graph_size().expect("wireframe factorizes");
        let burned_ag = burned.answer_graph_size().expect("wireframe factorizes");
        assert!(burned_ag < plain_ag);
        assert!(plain.explain.is_none());
        assert!(
            burned.explain.as_deref().unwrap_or("").contains("plan"),
            "explain must render when requested"
        );
    }
}

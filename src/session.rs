//! The `Session` facade: one object that owns a graph and answers queries.
//!
//! A session ties together the pieces a caller would otherwise assemble by
//! hand — dictionary-aware parsing, engine construction through the
//! [`EngineRegistry`], prepared-query caching keyed by the canonical query
//! signature, and uniform [`Evaluation`] results:
//!
//! ```
//! use wireframe::Session;
//! use wireframe::graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! b.add("alice", "knows", "bob");
//! b.add("bob", "knows", "carol");
//! let session = Session::new(b.build());
//!
//! let result = session
//!     .query("SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }")
//!     .unwrap();
//! assert_eq!(result.embedding_count(), 1);
//! ```

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use wireframe_api::{
    Engine, EngineConfig, EngineRegistry, Evaluation, PreparedQuery, WireframeError,
};
use wireframe_graph::{Graph, StoreKind};
use wireframe_query::canonical::{isomorphic, plan_cache_key};
use wireframe_query::{parse_query, ConjunctiveQuery};

use crate::registry::default_registry;

/// Cache key: (engine name, colour-refinement form of the query).
type CacheKey = (String, String);
/// Colour keys can collide for non-isomorphic queries (1-WL), so each bucket
/// chains every prepared query sharing the key.
type CacheBucket = Vec<Arc<PreparedQuery>>;
/// One shard of the prepared-plan cache.
type CacheShard = HashMap<CacheKey, CacheBucket>;

/// Number of cache shards. Concurrency is bounded by the thread count of the
/// serving process, not the cache size, so a small fixed power of two keeps
/// the structure simple while making write contention negligible.
const CACHE_SHARDS: usize = 16;

/// The prepared-plan cache, sharded by the hash of the canonical-signature
/// key so concurrent readers and writers rarely touch the same lock.
///
/// Reads (the overwhelmingly common case on a warmed cache) take a shard's
/// read lock only; preparation happens outside any lock, and insertion
/// re-checks under the shard's write lock so racing preparers converge on one
/// cached entry.
struct ShardedPlanCache {
    shards: Vec<RwLock<CacheShard>>,
}

impl ShardedPlanCache {
    fn new() -> Self {
        ShardedPlanCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &CacheKey) -> &RwLock<CacheShard> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % CACHE_SHARDS]
    }

    // A poisoned lock only means another thread panicked mid-insert; the
    // maps themselves are always in a consistent state.
    fn read(shard: &RwLock<CacheShard>) -> RwLockReadGuard<'_, CacheShard> {
        shard.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(shard: &RwLock<CacheShard>) -> RwLockWriteGuard<'_, CacheShard> {
        shard.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a confirmed-isomorphic prepared query under the read lock.
    fn find(&self, key: &CacheKey, query: &ConjunctiveQuery) -> Option<Arc<PreparedQuery>> {
        let shard = Self::read(self.shard(key));
        let bucket = shard.get(key)?;
        // The colour key is only a filter; confirm an exact match before
        // reusing another query's plan and answer shape.
        bucket
            .iter()
            .find(|p| isomorphic(query, p.query()))
            .map(Arc::clone)
    }

    /// Inserts `prepared` unless a racing thread already cached an
    /// isomorphic entry, returning whichever ends up cached.
    fn insert(
        &self,
        key: CacheKey,
        query: &ConjunctiveQuery,
        prepared: Arc<PreparedQuery>,
    ) -> Arc<PreparedQuery> {
        let mut shard = Self::write(self.shard(&key));
        let bucket = shard.entry(key).or_default();
        if let Some(raced) = bucket.iter().find(|p| isomorphic(query, p.query())) {
            return Arc::clone(raced);
        }
        bucket.push(Arc::clone(&prepared));
        prepared
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| Self::read(s).values().map(Vec::len).sum::<usize>())
            .sum()
    }

    fn clear(&self) {
        for shard in &self.shards {
            Self::write(shard).clear();
        }
    }
}

/// A query session over one graph.
///
/// The session owns the graph, an engine registry, and a cache of prepared
/// queries. Preparation (for the Wireframe engine: running the cost-based
/// Edgifier) happens once per *canonical* query — two queries that differ
/// only by variable renaming or pattern order share one cache entry, courtesy
/// of `wireframe_query::canonical::plan_cache_key`, which (unlike the miner's
/// sorted signature) keeps the SELECT clause's column order, so `SELECT ?x ?z`
/// and `SELECT ?z ?x` never collide. Cached entries are per engine, since
/// each engine prepares its own plan payload.
///
/// Cache hits reuse the canonical representative's prepared form. The colour
/// key is a fast filter, not a proof — 1-WL refinement cannot separate every
/// non-isomorphic pair — so each candidate is confirmed with an exact
/// isomorphism test (`canonical::isomorphic`, ordered-projection aware)
/// before reuse; colliding non-isomorphic queries chain in the same bucket.
/// A hit therefore guarantees the representative's answer matches the
/// caller's **column for column** (same values, same order). Column identity
/// is *positional*: on a hit the returned [`Evaluation`]'s schema carries
/// the representative query's `Var` ids, which belong to that query's
/// namespace, not the caller's. Read result columns by SELECT position, not
/// by looking the caller's own `Var` up in the schema.
///
/// # Concurrency
///
/// `Session` is `Send + Sync` (statically asserted): wrap one in an [`Arc`]
/// and issue [`Session::query`] from any number of threads. The graph is
/// shared behind an `Arc` (see [`Session::shared`] for sharing one graph
/// across several sessions), the prepared-plan cache is sharded behind
/// `RwLock`s keyed by the canonical-signature hash, the hit/miss counters
/// are atomic, and engines are built per call through
/// [`EngineRegistry::build_shared`]. Engine selection
/// ([`Session::set_engine`]) takes `&mut self` and therefore happens before
/// a session is shared — per-engine serving uses one session per engine over
/// a shared graph.
pub struct Session {
    graph: Arc<Graph>,
    registry: EngineRegistry,
    engine: String,
    config: EngineConfig,
    cache: ShardedPlanCache,
    hits: AtomicU64,
    misses: AtomicU64,
}

// The serving path relies on sessions being shareable across threads; keep
// the guarantee compile-time-checked rather than implied.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
};

impl Session {
    /// Creates a session over `graph` with the stock registry
    /// ([`default_registry`]) and the `wireframe` engine selected.
    pub fn new(graph: Graph) -> Self {
        Session::shared(Arc::new(graph))
    }

    /// Creates a session over an already-shared graph, so several sessions
    /// (e.g. one per engine) can serve one in-memory graph without copying
    /// it.
    pub fn shared(graph: Arc<Graph>) -> Self {
        Session::shared_with_registry(graph, default_registry())
    }

    /// Creates a session with a custom registry. The registry's first
    /// registered engine becomes the session's engine.
    pub fn with_registry(graph: Graph, registry: EngineRegistry) -> Self {
        Session::shared_with_registry(Arc::new(graph), registry)
    }

    /// Creates a session over a shared graph with a custom registry.
    pub fn shared_with_registry(graph: Arc<Graph>, registry: EngineRegistry) -> Self {
        let engine = registry.default_engine().unwrap_or("wireframe").to_owned();
        Session {
            graph,
            registry,
            engine,
            config: EngineConfig::default(),
            cache: ShardedPlanCache::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Selects the engine used by subsequent queries (builder form).
    pub fn with_engine(mut self, name: &str) -> Result<Self, WireframeError> {
        self.set_engine(name)?;
        Ok(self)
    }

    /// Selects the engine used by subsequent queries.
    pub fn set_engine(&mut self, name: &str) -> Result<(), WireframeError> {
        if !self.registry.contains(name) {
            return Err(WireframeError::UnknownEngine {
                requested: name.to_owned(),
                known: self
                    .registry
                    .names()
                    .iter()
                    .map(|&n| n.to_owned())
                    .collect(),
            });
        }
        self.engine = name.to_owned();
        Ok(())
    }

    /// Sets the engine configuration (builder form). When the configuration
    /// explicitly selects a storage backend (`EngineConfig::with_store`)
    /// other than the graph's current one, the graph is re-indexed into that
    /// backend (this session gets its own re-indexed copy; other sessions
    /// sharing the original `Arc` are unaffected). A config with the default
    /// `store: None` never re-indexes.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        if let Some(kind) = config.store {
            if self.graph.store_kind() != kind {
                self.graph = Arc::new(Graph::clone(&self.graph).with_store(kind));
            }
        }
        self
    }

    /// Re-indexes the session's graph into the given storage backend
    /// (builder form). A no-op when the backend already matches.
    pub fn with_store(self, store: StoreKind) -> Self {
        let config = self.config.with_store(store);
        self.with_config(config)
    }

    /// The storage backend the session's graph is indexed with.
    pub fn store_kind(&self) -> StoreKind {
        self.graph.store_kind()
    }

    /// The graph this session queries.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The shared handle to the session's graph, for building further
    /// sessions over the same data.
    pub fn shared_graph(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// The engine registry.
    pub fn registry(&self) -> &EngineRegistry {
        &self.registry
    }

    /// The currently selected engine name.
    pub fn engine_name(&self) -> &str {
        &self.engine
    }

    /// The engine configuration in effect.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Parses, plans and executes a SPARQL conjunctive query in one call.
    pub fn query(&self, text: &str) -> Result<Evaluation, WireframeError> {
        let query = parse_query(text, self.graph.dictionary())?;
        self.execute(&query)
    }

    /// Executes an already-constructed query through the selected engine,
    /// using the prepared-query cache.
    pub fn execute(&self, query: &ConjunctiveQuery) -> Result<Evaluation, WireframeError> {
        let engine = self
            .registry
            .build_shared(&self.engine, &self.graph, &self.config)?;
        let prepared = self.prepare_on(engine.as_ref(), query)?;
        engine.evaluate(&prepared)
    }

    /// Returns the prepared form of `query` for the selected engine, from the
    /// cache when an equivalent query was prepared before.
    pub fn prepare(&self, query: &ConjunctiveQuery) -> Result<Arc<PreparedQuery>, WireframeError> {
        let engine = self
            .registry
            .build_shared(&self.engine, &self.graph, &self.config)?;
        self.prepare_on(engine.as_ref(), query)
    }

    /// Cache lookup + preparation on an already-built engine.
    fn prepare_on(
        &self,
        engine: &dyn Engine,
        query: &ConjunctiveQuery,
    ) -> Result<Arc<PreparedQuery>, WireframeError> {
        let key = (
            self.engine.clone(),
            plan_cache_key(query).as_str().to_owned(),
        );
        if let Some(found) = self.cache.find(&key, query) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(found);
        }
        // Prepare outside any lock: planning can be costly, and concurrent
        // lookups of other queries must not wait on it. A racing preparer of
        // the same query is resolved at insertion (first one in wins), so a
        // duplicate preparation is possible but a duplicate cache entry is
        // not.
        let prepared = Arc::new(engine.prepare(query)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(self.cache.insert(key, query, prepared))
    }

    /// Number of prepared-query cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of prepared-query cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct prepared queries currently cached.
    pub fn cached_queries(&self) -> usize {
        self.cache.len()
    }

    /// Empties the prepared-query cache (the hit/miss counters keep counting).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("engine", &self.engine)
            .field("triples", &self.graph.triple_count())
            .field("cached_queries", &self.cached_queries())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireframe_graph::GraphBuilder;

    fn knows_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add("alice", "knows", "bob");
        b.add("bob", "knows", "carol");
        b.add("carol", "knows", "dave");
        b.build()
    }

    #[test]
    fn parse_plan_execute_in_one_call() {
        let session = Session::new(knows_graph());
        let ev = session
            .query("SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }")
            .unwrap();
        assert_eq!(ev.embedding_count(), 2);
        assert_eq!(ev.engine, "wireframe");
        assert!(ev.factorized.is_some());
    }

    #[test]
    fn prepared_query_cache_reuses_plans() {
        let session = Session::new(knows_graph());
        let text = "SELECT * WHERE { ?x :knows ?y . ?y :knows ?z . }";
        let first = session.query(text).unwrap();
        assert_eq!(session.cache_misses(), 1);
        assert_eq!(session.cache_hits(), 0);

        let second = session.query(text).unwrap();
        assert_eq!(session.cache_misses(), 1, "no second preparation");
        assert_eq!(session.cache_hits(), 1, "the cached plan was reused");
        assert!(first.embeddings().same_answer(second.embeddings()));

        // An isomorphic query (renamed variables, reordered patterns, same
        // column order) hits the same entry: the cache is keyed by the
        // order-sensitive canonical form.
        let renamed = "SELECT ?a ?b ?c WHERE { ?b :knows ?c . ?a :knows ?b . }";
        let third = session.query(renamed).unwrap();
        assert_eq!(session.cache_hits(), 2);
        assert_eq!(session.cached_queries(), 1);
        assert!(first.embeddings().same_answer(third.embeddings()));
    }

    #[test]
    fn cache_never_conflates_projection_order() {
        // `SELECT ?x ?z` and `SELECT ?z ?x` share a miner signature but ask
        // for different column orders; a cache hit here would silently swap
        // the output columns.
        let session = Session::new(knows_graph());
        let xz = session
            .query("SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }")
            .unwrap();
        let zx = session
            .query("SELECT ?z ?x WHERE { ?x :knows ?y . ?y :knows ?z . }")
            .unwrap();
        assert_eq!(session.cache_misses(), 2, "distinct column orders miss");
        assert_eq!(session.cache_hits(), 0);

        // The second result's columns are the first's, swapped.
        let mut a: Vec<_> = xz.embeddings().rows().map(|t| (t[0], t[1])).collect();
        let mut b: Vec<_> = zx.embeddings().rows().map(|t| (t[1], t[0])).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "column values swap with the requested order");
        // (Var indices are per-query namespaces, so the schemas themselves
        // are not comparable across the two parses — the tuple check above
        // is the meaningful one.)
    }

    #[test]
    fn cache_hit_requires_exact_isomorphism() {
        use wireframe_query::CqBuilder;
        // A directed 6-cycle and two disjoint directed triangles over one
        // predicate colour identically (the classic 1-WL blind spot), so
        // their cache keys collide. The exact-isomorphism confirmation must
        // keep them apart: the disconnected triangle query is rejected, not
        // answered with the cycle's cached plan.
        let session = Session::new(knows_graph());
        let d = session.graph().dictionary();

        let mut b6 = CqBuilder::new(d);
        for i in 0..6 {
            b6.pattern(&format!("?v{i}"), "knows", &format!("?v{}", (i + 1) % 6))
                .unwrap();
        }
        let cycle6 = b6.build().unwrap();

        let mut b33 = CqBuilder::new(d);
        for i in 0..3 {
            b33.pattern(&format!("?s{i}"), "knows", &format!("?s{}", (i + 1) % 3))
                .unwrap();
        }
        for i in 0..3 {
            b33.pattern(&format!("?t{i}"), "knows", &format!("?t{}", (i + 1) % 3))
                .unwrap();
        }
        let triangles = b33.build().unwrap();

        let cycle_answer = session.execute(&cycle6).unwrap();
        assert_eq!(cycle_answer.embedding_count(), 0, "no 6-cycle in the data");

        assert!(
            matches!(
                session.execute(&triangles),
                Err(WireframeError::DisconnectedQuery)
            ),
            "the colour-colliding disconnected query must not reuse the cycle's plan"
        );
        assert_eq!(session.cache_hits(), 0, "collision was not a hit");
    }

    #[test]
    fn cache_is_per_engine() {
        let mut session = Session::new(knows_graph());
        let text = "SELECT * WHERE { ?x :knows ?y . }";
        session.query(text).unwrap();
        session.set_engine("relational").unwrap();
        session.query(text).unwrap();
        assert_eq!(session.cache_misses(), 2, "each engine prepares its own");
        assert_eq!(session.cached_queries(), 2);

        session.clear_cache();
        assert_eq!(session.cached_queries(), 0);
    }

    #[test]
    fn every_registered_engine_answers_identically() {
        let mut session = Session::new(knows_graph());
        let text = "SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }";
        let names: Vec<&str> = session.registry().names();
        let mut answers = Vec::new();
        for name in names {
            session.set_engine(name).unwrap();
            let ev = session.query(text).unwrap();
            assert_eq!(ev.engine, name);
            answers.push(ev.embeddings);
        }
        for other in &answers[1..] {
            assert!(answers[0].same_answer(other));
        }
    }

    #[test]
    fn unknown_engine_is_rejected() {
        let mut session = Session::new(knows_graph());
        assert!(matches!(
            session.set_engine("sqlite"),
            Err(WireframeError::UnknownEngine { .. })
        ));
        assert!(Session::new(knows_graph()).with_engine("sortmerge").is_ok());
    }

    #[test]
    fn sessions_share_a_graph_without_copying() {
        let shared = Arc::new(knows_graph());
        let a = Session::new(Graph::clone(&shared)); // independent copy
        let b = Session::shared(Arc::clone(&shared));
        let c = Session::shared(b.shared_graph())
            .with_engine("relational")
            .unwrap();
        assert!(Arc::ptr_eq(&b.shared_graph(), &c.shared_graph()));
        assert!(!Arc::ptr_eq(&a.shared_graph(), &b.shared_graph()));

        let text = "SELECT * WHERE { ?x :knows ?y . }";
        let via_b = b.query(text).unwrap();
        let via_c = c.query(text).unwrap();
        assert!(via_b.embeddings().same_answer(via_c.embeddings()));
    }

    #[test]
    fn concurrent_queries_share_the_plan_cache() {
        let session = Arc::new(Session::new(knows_graph()));
        let text = "SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }";
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let session = Arc::clone(&session);
                scope.spawn(move || {
                    for _ in 0..4 {
                        let ev = session.query(text).unwrap();
                        assert_eq!(ev.embedding_count(), 2);
                    }
                });
            }
        });
        assert_eq!(
            session.cache_hits() + session.cache_misses(),
            32,
            "every query is accounted a hit or a miss"
        );
        assert_eq!(
            session.cached_queries(),
            1,
            "racing preparers converge on one cached plan"
        );
    }

    #[test]
    fn store_selection_reindexes_the_graph() {
        let session = Session::new(knows_graph()).with_store(StoreKind::Map);
        assert_eq!(session.store_kind(), StoreKind::Map);
        assert_eq!(session.config().store, Some(StoreKind::Map));
        let ev = session
            .query("SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }")
            .unwrap();
        assert_eq!(ev.embedding_count(), 2, "answers are store-independent");

        // A graph pre-built on the map backend is served as-is: a config
        // that does not name a backend (store: None) never re-indexes.
        let mut b = GraphBuilder::new();
        b.add("a", "p", "b");
        let pre_built = Session::shared(Arc::new(b.build_with_store(StoreKind::Map)))
            .with_config(EngineConfig::default().with_threads(4));
        assert_eq!(pre_built.store_kind(), StoreKind::Map);
        assert_eq!(pre_built.config().store, None);
    }

    #[test]
    fn parse_errors_surface_as_wireframe_errors() {
        let session = Session::new(knows_graph());
        assert!(matches!(
            session.query("SELECT WHERE"),
            Err(WireframeError::Query(_))
        ));
    }
}

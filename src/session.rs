//! The `Session` facade: one object that owns a graph and answers queries.
//!
//! A session ties together the pieces a caller would otherwise assemble by
//! hand — dictionary-aware parsing, engine construction through the
//! [`EngineRegistry`], prepared-query caching keyed by the canonical query
//! signature, and uniform [`Evaluation`] results:
//!
//! ```
//! use wireframe::Session;
//! use wireframe::graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! b.add("alice", "knows", "bob");
//! b.add("bob", "knows", "carol");
//! let session = Session::new(b.build());
//!
//! let result = session
//!     .query("SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }")
//!     .unwrap();
//! assert_eq!(result.embedding_count(), 1);
//! ```
//!
//! Sessions also serve **dynamic graphs**: [`Session::insert_triples`] /
//! [`Session::remove_triples`] (or a raw [`Session::apply_mutation`]) swap
//! in a new graph version — cheap on the delta backend, see
//! [`wireframe_graph::DeltaStore`] — advance the session **epoch**, and
//! evict exactly the cached plans whose predicate footprint the mutation
//! touched. Every [`Evaluation`] is stamped with the epoch of the snapshot
//! it ran against.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use wireframe_api::obs::{
    names, Counter, Gauge, Histogram, MetricsSnapshot, Registry, Span, Tracer, TracerConfig,
};
use wireframe_api::{
    Engine, EngineCapabilities, EngineConfig, EngineRegistry, EpochListener, Evaluation,
    ExecutorStats, MaintainedView, PreparedQuery, QueryExecutor, WireframeError,
};
use wireframe_graph::{EdgeDelta, Graph, Mutation, MutationOp, MutationOutcome, PredId, StoreKind};
use wireframe_query::canonical::{footprints_intersect, isomorphic, plan_cache_key};
use wireframe_query::{parse_query, ConjunctiveQuery};

use crate::registry::default_registry;

/// Cache key: (engine name, colour-refinement form of the query).
type CacheKey = (String, String);

/// The retained-view state of one cached plan.
///
/// The retained view sits behind an `Arc` so readers clone the handle out
/// of the slot lock and **evaluate outside every lock**: a serve never
/// blocks a mutation's footprint pass (which runs under the state write
/// lock). When a maintenance pass finds readers still holding the current
/// state, it clones the view, maintains the clone, and swaps it in
/// (copy-on-write) — readers keep answering from the snapshot their epoch
/// entitles them to.
enum ViewSlot {
    /// No materialization attempt yet (first evaluation pending, or the
    /// session/engine does not maintain).
    Empty,
    /// A retained view, incrementally maintained by mutations and served
    /// directly (phase two only) on cache hits.
    Retained(Arc<dyn MaintainedView>),
    /// The engine declined to materialize this query (e.g. a cyclic query
    /// under edge burnback): never re-attempt, always evaluate in full.
    Unmaintainable,
}

/// Shared handle to a cached plan's view slot, cloned out of the shard lock
/// so evaluation (which can be slow) never blocks unrelated cache traffic.
type SharedViewSlot = Arc<RwLock<ViewSlot>>;

/// One cached prepared query, its retained-view slot, and its LRU stamp (a
/// global logical clock value, updated on every hit).
struct CachedPlan {
    prepared: Arc<PreparedQuery>,
    view: SharedViewSlot,
    last_used: AtomicU64,
}

/// What one mutation's cache pass did: entries maintained in place versus
/// evicted, plus the maintenance cost actually paid.
#[derive(Debug, Default, Clone, Copy)]
struct MaintenancePass {
    /// Cached entries whose footprint intersected the batch (examined under
    /// a shard write lock). Zero for a non-intersecting mutation.
    touched: u64,
    /// Entries whose retained view was updated in place (kept).
    maintained: u64,
    /// Entries evicted (no retained view, or maintenance disabled).
    evicted: u64,
    /// Frontier nodes across all maintained views.
    frontier_nodes: u64,
    /// Wall-clock spent in `maintain`, microseconds.
    micros: u64,
    /// Top-k prefix underflow refills across all maintained views.
    prefix_refills: u64,
    /// Top-k prefix full-recompute fallbacks across all maintained views.
    prefix_fallbacks: u64,
}

/// Colour keys can collide for non-isomorphic queries (1-WL), so each bucket
/// chains every prepared query sharing the key.
type CacheBucket = Vec<CachedPlan>;
/// One shard of the prepared-plan cache.
type CacheShard = HashMap<CacheKey, CacheBucket>;

/// Number of cache shards. Concurrency is bounded by the thread count of the
/// serving process, not the cache size, so a small fixed power of two keeps
/// the structure simple while making write contention negligible.
const CACHE_SHARDS: usize = 16;

/// Default prepared-plan cache capacity (distinct cached plans). Generous —
/// real workloads rarely exceed a few hundred distinct canonical queries —
/// but finite, so a long-lived serving session cannot grow without bound.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// The prepared-plan cache, sharded by the hash of the canonical-signature
/// key so concurrent readers and writers rarely touch the same lock.
///
/// Reads (the overwhelmingly common case on a warmed cache) take a shard's
/// read lock only; preparation happens outside any lock, and insertion
/// re-checks under the shard's write lock so racing preparers converge on one
/// cached entry. The cache is bounded: when `capacity` is exceeded the
/// least-recently-used entry (by a global logical clock) is evicted.
struct ShardedPlanCache {
    shards: Vec<RwLock<CacheShard>>,
    clock: AtomicU64,
    capacity: usize,
}

impl ShardedPlanCache {
    fn new(capacity: usize) -> Self {
        ShardedPlanCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            clock: AtomicU64::new(0),
            capacity,
        }
    }

    fn shard(&self, key: &CacheKey) -> &RwLock<CacheShard> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % CACHE_SHARDS]
    }

    // A poisoned lock only means another thread panicked mid-insert; the
    // maps themselves are always in a consistent state.
    fn read(shard: &RwLock<CacheShard>) -> RwLockReadGuard<'_, CacheShard> {
        shard.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(shard: &RwLock<CacheShard>) -> RwLockWriteGuard<'_, CacheShard> {
        shard.write().unwrap_or_else(|e| e.into_inner())
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up a confirmed-isomorphic prepared query under the read lock,
    /// returning its prepared form and its shared view slot.
    fn find(
        &self,
        key: &CacheKey,
        query: &ConjunctiveQuery,
    ) -> Option<(Arc<PreparedQuery>, SharedViewSlot)> {
        let shard = Self::read(self.shard(key));
        let bucket = shard.get(key)?;
        // The colour key is only a filter; confirm an exact match before
        // reusing another query's plan and answer shape.
        let hit = bucket
            .iter()
            .find(|e| isomorphic(query, e.prepared.query()))?;
        hit.last_used.store(self.tick(), Ordering::Relaxed);
        Some((Arc::clone(&hit.prepared), Arc::clone(&hit.view)))
    }

    /// Inserts `prepared` (with an [`ViewSlot::Empty`] view slot) unless a
    /// racing thread already cached an isomorphic entry, returning whichever
    /// entry ends up cached.
    fn insert(
        &self,
        key: CacheKey,
        query: &ConjunctiveQuery,
        prepared: Arc<PreparedQuery>,
    ) -> (Arc<PreparedQuery>, SharedViewSlot) {
        let mut shard = Self::write(self.shard(&key));
        let bucket = shard.entry(key).or_default();
        if let Some(raced) = bucket
            .iter()
            .find(|e| isomorphic(query, e.prepared.query()))
        {
            raced.last_used.store(self.tick(), Ordering::Relaxed);
            return (Arc::clone(&raced.prepared), Arc::clone(&raced.view));
        }
        let view: SharedViewSlot = Arc::new(RwLock::new(ViewSlot::Empty));
        bucket.push(CachedPlan {
            prepared: Arc::clone(&prepared),
            view: Arc::clone(&view),
            last_used: AtomicU64::new(self.tick()),
        });
        (prepared, view)
    }

    /// Evicts least-recently-used entries until the cache fits its capacity
    /// again (called after an insert that missed, outside any shard lock).
    /// Returns how many entries were evicted.
    ///
    /// One pass collects every entry's LRU stamp, then the oldest `excess`
    /// entries are removed shard by shard. The scan is `O(cached entries)`,
    /// paid only on misses that overflow the bound — the hot hit path never
    /// enters here. Locks are taken one shard at a time, so a racing hit can
    /// rescue an entry between scan and removal (its stamp no longer
    /// matches); the next overflowing insert simply re-evicts.
    fn enforce_capacity(&self) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        let mut stamped: Vec<(u64, usize, CacheKey)> = Vec::new();
        for (index, shard) in self.shards.iter().enumerate() {
            let guard = Self::read(shard);
            for (key, bucket) in guard.iter() {
                for entry in bucket {
                    stamped.push((entry.last_used.load(Ordering::Relaxed), index, key.clone()));
                }
            }
        }
        let Some(excess) = stamped.len().checked_sub(self.capacity + 1) else {
            return 0;
        };
        stamped.sort_unstable_by_key(|&(stamp, _, _)| stamp);
        let mut evicted = 0u64;
        for (stamp, index, key) in stamped.into_iter().take(excess + 1) {
            let mut guard = Self::write(&self.shards[index]);
            if let Some(bucket) = guard.get_mut(&key) {
                if let Some(pos) = bucket
                    .iter()
                    .position(|e| e.last_used.load(Ordering::Relaxed) == stamp)
                {
                    bucket.remove(pos);
                    if bucket.is_empty() {
                        guard.remove(&key);
                    }
                    evicted += 1;
                }
            }
        }
        evicted
    }

    /// The footprint pass of one applied mutation: every cached entry whose
    /// predicate footprint intersects `footprint` is either **maintained in
    /// place** (when maintenance is on and the entry holds a retained view —
    /// the view absorbs `delta` against the post-mutation `graph` and is
    /// stamped with `epoch`) or **evicted** (the pre-maintenance behavior,
    /// and the fallback for entries without a view).
    ///
    /// The footprint is computed once by the caller from the batch's *net*
    /// [`EdgeDelta`] — never re-derived per entry or per shard — and each
    /// shard is pre-screened under its **read** lock: a mutation whose
    /// footprint intersects no cached plan takes no write lock and touches
    /// no entry (`MaintenancePass::touched == 0`), which the regression
    /// tests pin.
    fn maintain_or_evict(
        &self,
        footprint: &[PredId],
        graph: &Graph,
        delta: &EdgeDelta,
        epoch: u64,
        maintain: bool,
        per_view: &Histogram,
    ) -> MaintenancePass {
        let mut pass = MaintenancePass::default();
        if footprint.is_empty() {
            return pass;
        }
        for shard in &self.shards {
            // Pre-screen without blocking readers or writers of innocent
            // shards: only shards that actually hold an intersecting entry
            // pay the write lock below.
            let any_intersecting = Self::read(shard)
                .values()
                .flatten()
                .any(|e| footprints_intersect(e.prepared.footprint(), footprint));
            if !any_intersecting {
                continue;
            }
            let mut guard = Self::write(shard);
            guard.retain(|_, bucket| {
                bucket.retain(|e| {
                    if !footprints_intersect(e.prepared.footprint(), footprint) {
                        return true;
                    }
                    pass.touched += 1;
                    if maintain {
                        let mut slot = e.view.write().unwrap_or_else(|p| p.into_inner());
                        if let ViewSlot::Retained(view) = &mut *slot {
                            let t = std::time::Instant::now();
                            // Readers hold `Arc` clones and evaluate outside
                            // this lock; maintain in place when the slot is
                            // the only holder, otherwise copy-on-write so
                            // in-flight serves keep their snapshot.
                            let stats = match Arc::get_mut(view) {
                                Some(exclusive) => exclusive.maintain(graph, delta, epoch),
                                None => {
                                    let mut cloned = view.clone_view();
                                    let stats = cloned.maintain(graph, delta, epoch);
                                    *view = Arc::from(cloned);
                                    stats
                                }
                            };
                            pass.maintained += 1;
                            pass.frontier_nodes += stats.frontier_nodes as u64;
                            pass.prefix_refills += stats.prefix_refills as u64;
                            pass.prefix_fallbacks += stats.prefix_fallbacks as u64;
                            let micros = t.elapsed().as_micros() as u64;
                            pass.micros += micros;
                            per_view.record(micros);
                            return true;
                        }
                    }
                    pass.evicted += 1;
                    false
                });
                !bucket.is_empty()
            });
        }
        pass
    }

    /// Total retained top-k prefix rows across every cached view. A level,
    /// not a counter — re-read at snapshot time like the graph gauges.
    fn prefix_rows_total(&self) -> u64 {
        let mut total = 0u64;
        for shard in &self.shards {
            let guard = Self::read(shard);
            for entry in guard.values().flatten() {
                let slot = entry.view.read().unwrap_or_else(|p| p.into_inner());
                if let ViewSlot::Retained(view) = &*slot {
                    total += view.prefix_rows() as u64;
                }
            }
        }
        total
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| Self::read(s).values().map(Vec::len).sum::<usize>())
            .sum()
    }

    fn clear(&self) {
        for shard in &self.shards {
            Self::write(shard).clear();
        }
    }
}

/// The mutable graph state of a session: the current version and its epoch,
/// swapped together under one lock so an [`Evaluation`]'s stamp always
/// matches the snapshot it ran against.
struct GraphState {
    graph: Arc<Graph>,
    epoch: u64,
}

/// A query session over one graph.
///
/// The session owns the graph, an engine registry, and a cache of prepared
/// queries. Preparation (for the Wireframe engine: running the cost-based
/// Edgifier) happens once per *canonical* query — two queries that differ
/// only by variable renaming or pattern order share one cache entry, courtesy
/// of `wireframe_query::canonical::plan_cache_key`, which (unlike the miner's
/// sorted signature) keeps the SELECT clause's column order, so `SELECT ?x ?z`
/// and `SELECT ?z ?x` never collide. Cached entries are per engine, since
/// each engine prepares its own plan payload.
///
/// Cache hits reuse the canonical representative's prepared form. The colour
/// key is a fast filter, not a proof — 1-WL refinement cannot separate every
/// non-isomorphic pair — so each candidate is confirmed with an exact
/// isomorphism test (`canonical::isomorphic`, ordered-projection aware)
/// before reuse; colliding non-isomorphic queries chain in the same bucket.
/// A hit therefore guarantees the representative's answer matches the
/// caller's **column for column** (same values, same order). Column identity
/// is *positional*: on a hit the returned [`Evaluation`]'s schema carries
/// the representative query's `Var` ids, which belong to that query's
/// namespace, not the caller's. Read result columns by SELECT position, not
/// by looking the caller's own `Var` up in the schema.
///
/// The cache is **bounded**: at most [`Session::cache_capacity`] prepared
/// plans (default [`DEFAULT_CACHE_CAPACITY`], tune with
/// [`SessionConfig::cache_capacity`]) are kept, evicting LRU-style by a
/// global logical clock; [`Session::cache_evictions`] counts evictions and
/// [`Session::clear_cache`] empties the cache outright.
///
/// # Dynamic graphs, epochs, and maintained views
///
/// [`Session::insert_triples`], [`Session::remove_triples`] and
/// [`Session::apply_mutation`] update the graph by swapping in a **new
/// version** (readers in flight keep their snapshot; on the
/// [`StoreKind::Delta`] backend versions share their base, making this the
/// live-serving path). Each applied batch advances the session **epoch**
/// ([`Session::epoch`]), which is stamped into every [`Evaluation::epoch`].
///
/// For engines that support it (the Wireframe engine, via
/// [`wireframe_api::MaintainedView`]), cached plans carry a **retained
/// view** — the factorized answer graph kept as a first-class artifact —
/// and cache hits are served by defactorizing the view on demand instead of
/// re-running the whole pipeline ([`Session::view_serves`] counts these).
/// Mutations then apply **footprint maintenance**: a batch's net
/// [`EdgeDelta`] is folded into every intersecting view in `O(delta)`
/// ([`Session::plans_maintained`], [`Session::maintenance_frontier_nodes`],
/// [`Session::maintenance_micros`]), and views are stamped with the epoch
/// they were maintained to; staleness is verified against the reader's
/// snapshot under the same `RwLock` that swaps graph versions. When the
/// configured engine declines to materialize a view, the session consults
/// the registry's capability matrix ([`wireframe_api::EngineCapabilities`])
/// for another engine that can maintain the query's shape — e.g. a cyclic
/// query under edge burnback is retained through the `wco` engine — before
/// giving up. Entries without any maintainable view — non-maintaining
/// engines with no capable fallback, or a session configured with
/// [`SessionConfig::maintenance`]`(false)` — fall back to the old policy:
/// footprint **eviction** plus from-scratch re-evaluation (counted by
/// [`Session::cache_invalidations`]). Non-intersecting plans are never
/// touched either way ([`Session::mutation_cache_touches`]). Delta
/// compactions triggered by mutations are counted by
/// [`Session::compactions`].
///
/// # Concurrency
///
/// `Session` is `Send + Sync` (statically asserted): wrap one in an [`Arc`]
/// and issue [`Session::query`] — and mutations — from any number of
/// threads. The graph version and epoch live behind one `RwLock` (reads
/// clone an `Arc` snapshot), the prepared-plan cache is sharded behind
/// `RwLock`s keyed by the canonical-signature hash, all counters are atomic,
/// and engines are built per call through [`EngineRegistry::build_shared`].
/// Engine selection ([`Session::set_engine`]) takes `&mut self` and
/// therefore happens before a session is shared — per-engine serving uses
/// one session per engine over a shared graph.
pub struct Session {
    state: RwLock<GraphState>,
    registry: EngineRegistry,
    engine: String,
    config: EngineConfig,
    /// Whether mutations *maintain* retained views in place (the default).
    /// Off, every intersecting cache entry is evicted and re-evaluated from
    /// scratch — the pre-maintenance behavior, kept selectable so the churn
    /// benchmark can compare the two policies (`wfbench --maintenance`).
    maintenance: bool,
    cache: ShardedPlanCache,
    /// The telemetry registry — the single source of truth behind
    /// [`Session::stats`] and the `metrics` wire request. The named fields
    /// below are pre-created lock-free handles into it, so the hot paths
    /// never look a metric up by name.
    metrics: Registry,
    tracer: Tracer,
    /// `shard=N` span field for cluster-owned sessions (`None` standalone).
    shard_id: Option<usize>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    invalidations: Counter,
    compactions: Counter,
    maintained: Counter,
    maintenance_frontier: Counter,
    maintenance_micros_total: Counter,
    mutation_touches: Counter,
    view_serves: Counter,
    full_evals: Counter,
    prefix_hits: Counter,
    prefix_refills: Counter,
    prefix_fallbacks: Counter,
    prefix_rows: Gauge,
    query_latency: Histogram,
    maintain_batch: Histogram,
    maintain_view: Histogram,
    graph_triples: Gauge,
    overlay_edges: Gauge,
    overlay_ppm: Gauge,
    epoch_listeners: RwLock<Vec<EpochListener>>,
}

// The serving path relies on sessions being shareable across threads; keep
// the guarantee compile-time-checked rather than implied.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
};

/// Everything configurable about a [`Session`], in one reusable value.
///
/// Replaces the former `with_*` builder sprawl on `Session` itself: build a
/// `SessionConfig` once, hand it to [`Session::from_config`] — or to
/// `ShardedCluster::new`, which applies the same configuration to every
/// shard's session. The configuration is plain data (`Clone`), so the same
/// value can configure any number of sessions.
///
/// ```
/// use wireframe::{Session, SessionConfig};
/// use wireframe::graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// b.add("alice", "knows", "bob");
/// let config = SessionConfig::new().engine("wireframe").cache_capacity(128);
/// let session = Session::from_config(b.build(), config).unwrap();
/// assert_eq!(session.engine_name(), "wireframe");
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionConfig {
    /// The engine answering queries. `None` (the default) selects the
    /// registry's default engine (`wireframe` on the stock registry).
    pub engine: Option<String>,
    /// The engine-level knobs (edge burnback, explain, threads, storage
    /// backend). A `store` selection re-indexes the session's graph at
    /// construction, exactly like the former `Session::with_store`.
    pub engine_config: EngineConfig,
    /// `None` (the default) keeps mutation maintenance **on**: mutations
    /// update retained views in place. `Some(false)` evicts intersecting
    /// views instead (the re-evaluation policy `wfbench --maintenance
    /// reeval` measures against).
    pub maintenance: Option<bool>,
    /// Prepared-plan cache bound in distinct plans. `None` = the default
    /// [`DEFAULT_CACHE_CAPACITY`]; `Some(0)` = unbounded.
    pub cache_capacity: Option<usize>,
    /// Delta-store compaction threshold override (overlay/base fraction).
    /// `None` keeps the graph's configured threshold.
    pub compaction_threshold: Option<f64>,
    /// `None`/`Some(true)` (the default) keeps full observability on:
    /// latency histograms record and query spans are sampled. `Some(false)`
    /// (`--obs off`) drops both to bare counters — the A/B the serve-net
    /// overhead gate measures. Counters and gauges always stay live; they
    /// are functionally load-bearing (benchmark baselines compare them).
    pub obs: Option<bool>,
    /// Slow-query threshold in microseconds: completed span trees of
    /// queries at least this slow are emitted to stderr regardless of
    /// sampling. `None`/`Some(0)` disables the slow-query log.
    pub slow_query_micros: Option<u64>,
    /// Span sampling rate: keep 1 in N completed query spans (`Some(1)` =
    /// every span, for `wfquery --trace`). `None` = the serving default
    /// (1 in 64, which keeps tracing overhead under the serve-net lane's
    /// 2 % budget).
    pub trace_sample: Option<u64>,
    /// Identity stamped on every query span as `shard=N`. Set by
    /// [`crate::ShardedCluster`] so spans surfaced through the cluster say
    /// which partition produced them; standalone sessions leave it unset.
    pub shard_id: Option<usize>,
}

impl SessionConfig {
    /// The default configuration: registry-default engine, default engine
    /// knobs, maintenance on, default cache bound.
    pub fn new() -> Self {
        SessionConfig::default()
    }

    /// Selects the engine by name (validated at [`Session::from_config`]
    /// time against the registry).
    pub fn engine(mut self, name: impl Into<String>) -> Self {
        self.engine = Some(name.into());
        self
    }

    /// Sets the engine-level configuration wholesale.
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.engine_config = config;
        self
    }

    /// Re-indexes the session's graph into the given storage backend at
    /// construction (a no-op when the backend already matches).
    pub fn store(mut self, store: StoreKind) -> Self {
        self.engine_config = self.engine_config.with_store(store);
        self
    }

    /// Worker threads for parallelizable phases (`0` = engine default,
    /// `1` = sequential).
    pub fn threads(mut self, threads: usize) -> Self {
        self.engine_config = self.engine_config.with_threads(threads);
        self
    }

    /// Selects the mutation policy for cached plans (default `true`): on,
    /// intersecting views are maintained in `O(delta)`; off, they are
    /// evicted and re-evaluated on next use.
    pub fn maintenance(mut self, enabled: bool) -> Self {
        self.maintenance = Some(enabled);
        self
    }

    /// Bounds the prepared-plan cache to `capacity` distinct plans (`0` =
    /// unbounded; default [`DEFAULT_CACHE_CAPACITY`]).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Overrides the delta-store compaction threshold (overlay/base
    /// fraction at which mutations compact the graph).
    pub fn compaction_threshold(mut self, threshold: f64) -> Self {
        self.compaction_threshold = Some(threshold);
        self
    }

    /// Turns latency histograms and span tracing on (`true`, the default)
    /// or off (`false`, counters only — `wfbench --obs off`).
    pub fn obs(mut self, enabled: bool) -> Self {
        self.obs = Some(enabled);
        self
    }

    /// Emits completed span trees of queries slower than `ms` milliseconds
    /// to stderr (`wfserve --slow-query-ms`; `0` disables the log).
    pub fn slow_query_ms(mut self, ms: u64) -> Self {
        self.slow_query_micros = Some(ms.saturating_mul(1_000));
        self
    }

    /// Keeps 1 in `every` completed query spans (`1` = every span).
    pub fn trace_sample(mut self, every: u64) -> Self {
        self.trace_sample = Some(every.max(1));
        self
    }

    /// Stamps `shard=id` on every query span (cluster-owned sessions).
    pub fn shard_id(mut self, id: usize) -> Self {
        self.shard_id = Some(id);
        self
    }
}

impl Session {
    /// Creates a session over `graph` with the stock registry
    /// ([`default_registry`]), the default configuration and the `wireframe`
    /// engine selected. Shorthand for [`Session::from_config`] with
    /// [`SessionConfig::default`].
    pub fn new(graph: Graph) -> Self {
        Session::shared(Arc::new(graph))
    }

    /// Creates a session over an already-shared graph, so several sessions
    /// (e.g. one per engine) can serve one in-memory graph without copying
    /// it.
    pub fn shared(graph: Arc<Graph>) -> Self {
        Session::from_config(graph, SessionConfig::default())
            .expect("the default session configuration is always valid")
    }

    /// Creates a session with a custom registry. The registry's first
    /// registered engine becomes the session's engine.
    pub fn with_registry(graph: Graph, registry: EngineRegistry) -> Self {
        Session::from_config_with_registry(Arc::new(graph), registry, SessionConfig::default())
            .expect("the default session configuration is always valid")
    }

    /// Creates a session over a shared graph with a custom registry.
    pub fn shared_with_registry(graph: Arc<Graph>, registry: EngineRegistry) -> Self {
        Session::from_config_with_registry(graph, registry, SessionConfig::default())
            .expect("the default session configuration is always valid")
    }

    /// Creates a fully-configured session in one step — the constructor
    /// behind every other one. Accepts an owned or already-shared graph.
    ///
    /// Errors with [`WireframeError::UnknownEngine`] when the configuration
    /// names an engine the registry does not contain.
    pub fn from_config(
        graph: impl Into<Arc<Graph>>,
        config: SessionConfig,
    ) -> Result<Self, WireframeError> {
        Session::from_config_with_registry(graph, default_registry(), config)
    }

    /// [`Session::from_config`] with a custom engine registry. When the
    /// configuration selects no engine, the registry's default engine (its
    /// first registration) is used.
    pub fn from_config_with_registry(
        graph: impl Into<Arc<Graph>>,
        registry: EngineRegistry,
        config: SessionConfig,
    ) -> Result<Self, WireframeError> {
        let engine = match &config.engine {
            Some(name) => {
                if !registry.contains(name) {
                    return Err(WireframeError::UnknownEngine {
                        requested: name.clone(),
                        known: registry.names().iter().map(|&n| n.to_owned()).collect(),
                    });
                }
                name.clone()
            }
            None => registry.default_engine().unwrap_or("wireframe").to_owned(),
        };
        let mut graph = graph.into();
        if let Some(kind) = config.engine_config.store {
            if graph.store_kind() != kind {
                graph = Arc::new(Graph::clone(&graph).with_store(kind));
            }
        }
        if let Some(threshold) = config.compaction_threshold {
            if (graph.compaction_threshold() - threshold).abs() > f64::EPSILON {
                graph = Arc::new(Graph::clone(&graph).with_compaction_threshold(threshold));
            }
        }
        let obs_on = config.obs.unwrap_or(true);
        let metrics = if obs_on {
            Registry::new()
        } else {
            Registry::counters_only()
        };
        let tracer = Tracer::new(TracerConfig {
            enabled: obs_on,
            sample_every: config.trace_sample.unwrap_or(64).max(1),
            slow_micros: config.slow_query_micros.unwrap_or(0),
            ..TracerConfig::default()
        });
        Ok(Session {
            state: RwLock::new(GraphState { graph, epoch: 0 }),
            registry,
            engine,
            config: config.engine_config,
            maintenance: config.maintenance.unwrap_or(true),
            cache: ShardedPlanCache::new(config.cache_capacity.unwrap_or(DEFAULT_CACHE_CAPACITY)),
            tracer,
            shard_id: config.shard_id,
            hits: metrics.counter(names::CACHE_HITS),
            misses: metrics.counter(names::CACHE_MISSES),
            evictions: metrics.counter(names::CACHE_EVICTIONS),
            invalidations: metrics.counter(names::CACHE_INVALIDATIONS),
            compactions: metrics.counter(names::COMPACTIONS),
            maintained: metrics.counter(names::PLANS_MAINTAINED),
            maintenance_frontier: metrics.counter(names::MAINTENANCE_FRONTIER_NODES),
            maintenance_micros_total: metrics.counter(names::MAINTENANCE_MICROS),
            mutation_touches: metrics.counter(names::MUTATION_CACHE_TOUCHES),
            view_serves: metrics.counter(names::VIEW_SERVES),
            full_evals: metrics.counter(names::FULL_EVALUATIONS),
            prefix_hits: metrics.counter(names::MAINTAIN_PREFIX_HITS),
            prefix_refills: metrics.counter(names::MAINTAIN_PREFIX_REFILLS),
            prefix_fallbacks: metrics.counter(names::MAINTAIN_PREFIX_FALLBACKS),
            prefix_rows: metrics.gauge(names::MAINTAIN_PREFIX_ROWS),
            query_latency: metrics.histogram(names::QUERY_LATENCY_US),
            maintain_batch: metrics.histogram(names::MAINTAIN_BATCH_US),
            maintain_view: metrics.histogram(names::MAINTAIN_VIEW_US),
            graph_triples: metrics.gauge(names::GRAPH_TRIPLES),
            overlay_edges: metrics.gauge(names::GRAPH_OVERLAY_EDGES),
            overlay_ppm: metrics.gauge(names::GRAPH_OVERLAY_PPM),
            metrics,
            epoch_listeners: RwLock::new(Vec::new()),
        })
    }

    /// Registers a callback fired on **every** epoch advance — including
    /// batches whose net [`EdgeDelta`] is empty, so subscribers can track
    /// epoch continuity without gaps.
    ///
    /// The callback runs on the mutating thread while the session still
    /// holds the graph-state write lock, which is what makes notifications
    /// **totally ordered by epoch**: no two callbacks run concurrently and
    /// epochs arrive strictly increasing. Keep it cheap and non-reentrant —
    /// don't call back into the session from inside (that would deadlock on
    /// the state lock); hand the event to a channel and do the work
    /// elsewhere. The serving layer's subscription fan-out does exactly
    /// that.
    pub fn add_epoch_listener(&self, listener: impl Fn(u64, &EdgeDelta) + Send + Sync + 'static) {
        self.epoch_listeners
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .push(Box::new(listener));
    }

    /// Whether mutations maintain retained views instead of evicting them.
    pub fn maintenance_enabled(&self) -> bool {
        self.maintenance
    }

    /// Selects the engine used by subsequent queries.
    pub fn set_engine(&mut self, name: &str) -> Result<(), WireframeError> {
        if !self.registry.contains(name) {
            return Err(WireframeError::UnknownEngine {
                requested: name.to_owned(),
                known: self
                    .registry
                    .names()
                    .iter()
                    .map(|&n| n.to_owned())
                    .collect(),
            });
        }
        self.engine = name.to_owned();
        Ok(())
    }

    /// The prepared-plan cache bound (`0` = unbounded).
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity
    }

    /// The storage backend the session's graph is indexed with.
    pub fn store_kind(&self) -> StoreKind {
        self.snapshot().0.store_kind()
    }

    /// A shared snapshot of the graph version this session currently
    /// serves. **Snapshot contract:** the handle is pinned to the version
    /// current at the call — mutations applied later never affect it — and
    /// cloning the `Arc` (e.g. to build further sessions over the same
    /// data) shares the in-memory graph without copying it.
    pub fn graph(&self) -> Arc<Graph> {
        self.snapshot().0
    }

    /// The current mutation epoch: `0` at construction, advanced by every
    /// applied mutation batch. Stamped into [`Evaluation::epoch`].
    pub fn epoch(&self) -> u64 {
        self.snapshot().1
    }

    fn snapshot(&self) -> (Arc<Graph>, u64) {
        let state = self.state.read().unwrap_or_else(|e| e.into_inner());
        (Arc::clone(&state.graph), state.epoch)
    }

    /// The engine registry.
    pub fn registry(&self) -> &EngineRegistry {
        &self.registry
    }

    /// The currently selected engine name.
    pub fn engine_name(&self) -> &str {
        &self.engine
    }

    /// The engine configuration in effect.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Parses, plans and executes a SPARQL conjunctive query in one call.
    /// When the session's [`EngineConfig::limit`] is set, the answer is
    /// bounded like [`Session::query_limited`] with that limit.
    pub fn query(&self, text: &str) -> Result<Evaluation, WireframeError> {
        self.query_limited(text, 0)
    }

    /// [`Session::query`] bounded to the first `limit` rows under the
    /// canonical row order (`0` falls back to the configured
    /// [`EngineConfig::limit`], itself `0` = unlimited by default).
    ///
    /// When the query's retained view holds a primed top-k prefix covering
    /// `limit`, the answer is served straight from the prefix in `O(k)` —
    /// no defactorization — and marked
    /// [`prefix_served`](wireframe_api::LimitInfo::prefix_served); the
    /// session counts it in [`Session::prefix_hits`]. Otherwise the view is
    /// defactorized (or the full pipeline runs) and the result truncated
    /// canonically.
    pub fn query_limited(&self, text: &str, limit: usize) -> Result<Evaluation, WireframeError> {
        let (graph, epoch) = self.snapshot();
        let query = parse_query(text, graph.dictionary())?;
        self.execute_on(&graph, epoch, &query, self.effective_limit(limit))
    }

    /// Executes an already-constructed query through the selected engine,
    /// using the prepared-query cache.
    pub fn execute(&self, query: &ConjunctiveQuery) -> Result<Evaluation, WireframeError> {
        self.execute_limited(query, 0)
    }

    /// [`Session::execute`] bounded like [`Session::query_limited`].
    pub fn execute_limited(
        &self,
        query: &ConjunctiveQuery,
        limit: usize,
    ) -> Result<Evaluation, WireframeError> {
        let (graph, epoch) = self.snapshot();
        self.execute_on(&graph, epoch, query, self.effective_limit(limit))
    }

    /// An explicit per-call limit wins; `0` defers to the session-wide
    /// configured limit (which the engine also applies as a cap).
    fn effective_limit(&self, limit: usize) -> usize {
        if limit > 0 {
            limit
        } else {
            self.config.limit
        }
    }

    fn execute_on(
        &self,
        graph: &Arc<Graph>,
        epoch: u64,
        query: &ConjunctiveQuery,
        limit: usize,
    ) -> Result<Evaluation, WireframeError> {
        let started = std::time::Instant::now();
        let result = self.execute_inner(graph, epoch, query, limit);
        if let Ok(evaluation) = &result {
            let elapsed = started.elapsed();
            self.query_latency.record_duration(elapsed);
            // The non-sampled path ends here: one histogram record and one
            // relaxed tick. Span trees are synthesized post-hoc from the
            // timings the pipeline already measured.
            if self.tracer.wants(elapsed) {
                self.tracer
                    .record(self.query_span(query, evaluation, elapsed, graph));
            }
        }
        result
    }

    /// Builds the completed span tree of one sampled (or slow) query from
    /// its already-measured phase timings.
    fn query_span(
        &self,
        query: &ConjunctiveQuery,
        evaluation: &Evaluation,
        elapsed: std::time::Duration,
        graph: &Graph,
    ) -> Span {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        plan_cache_key(query).as_str().hash(&mut hasher);
        let t = &evaluation.timings;
        let prefix_served = evaluation.limited.is_some_and(|i| i.prefix_served);
        let defactorize = {
            // A prefix serve never defactorizes: the child's name says the
            // O(k) path answered, and its duration is the prefix copy-out.
            let name = if prefix_served {
                "defactorize_topk"
            } else {
                "defactorize"
            };
            let mut child = Span::new(name, t.defactorization);
            if t.defactorization_cpu > t.defactorization {
                child = child.field("cpu_micros", t.defactorization_cpu.as_micros().to_string());
            }
            child
        };
        let mut span = Span::new("query", elapsed)
            .field("signature", format!("{:016x}", hasher.finish()))
            .field("engine", evaluation.engine.clone())
            .field("store", graph.store_kind().name())
            .field("epochs", format!("{:?}", evaluation.epochs))
            .field(
                "path",
                if evaluation.maintenance.is_some() {
                    "view"
                } else {
                    "full"
                },
            )
            .field("rows", evaluation.embedding_count().to_string())
            .child_if_nonzero(Span::new("plan", t.planning))
            .child_if_nonzero(Span::new("answer_graph", t.answer_graph))
            .child_if_nonzero(Span::new("edge_burnback", t.edge_burnback))
            .child_if_nonzero(defactorize)
            .child_if_nonzero(Span::new("execute", t.execution));
        if let Some(shard) = self.shard_id {
            span = span.field("shard", shard.to_string());
        }
        if let Some(info) = &evaluation.maintenance {
            span = span.field("maintenance_passes", info.passes.to_string());
        }
        if let Some(info) = evaluation.limited {
            span = span.field("limit", info.limit.to_string());
        }
        span
    }

    fn execute_inner(
        &self,
        graph: &Arc<Graph>,
        epoch: u64,
        query: &ConjunctiveQuery,
        limit: usize,
    ) -> Result<Evaluation, WireframeError> {
        let engine = self
            .registry
            .build_shared(&self.engine, graph, &self.config)?;
        let (prepared, view) = self.prepare_slot_on(engine.as_ref(), epoch, query)?;

        if self.views_active(engine.as_ref()) {
            // Serve from the retained view when its stamp does not exceed
            // this reader's snapshot epoch. `<=` is sound because every
            // intersecting mutation maintains the view *before* releasing
            // the state write lock: a reader that observed epoch `e` under
            // the state read lock is guaranteed that any view stamped
            // earlier simply had no intersecting mutation since — it is
            // still exact at `e`. A stamp *beyond* `e` means the view was
            // maintained past a snapshot this reader is still holding —
            // graphs are immutable versions, so the reader gets a correct
            // answer for *its* epoch from the full pipeline below.
            //
            // The `Arc` is cloned out of the slot lock and evaluated with
            // no lock held, so a slow defactorization never stalls a
            // mutation's footprint pass (which copy-on-writes around
            // concurrent holders instead).
            let retained = {
                let slot = view.read().unwrap_or_else(|p| p.into_inner());
                match &*slot {
                    ViewSlot::Retained(retained) if retained.epoch() <= epoch => {
                        Some(Arc::clone(retained))
                    }
                    _ => None,
                }
            };
            if let Some(retained) = retained {
                // A limited hit on a view whose prefix cannot answer it warms
                // the prefix first (copy-on-write under the slot lock), so
                // this call and every later one serve in O(limit).
                let retained = if limit > 0 && !retained.can_prefix_serve(limit) {
                    self.warm_prefix(&view, epoch, limit).unwrap_or(retained)
                } else {
                    retained
                };
                let mut evaluation = retained.evaluate_limited(limit)?;
                evaluation.epochs = vec![epoch];
                self.view_serves.inc();
                if evaluation.limited.is_some_and(|i| i.prefix_served) {
                    self.prefix_hits.inc();
                }
                return Ok(evaluation);
            }
            // First use (or a stale slot): run the full phase-one pipeline
            // once, retain the result, and answer from it.
            let t = std::time::Instant::now();
            if let Some(fresh) =
                self.materialize_slot(engine.as_ref(), graph, &prepared, &view, epoch, limit)?
            {
                let phase_one = t.elapsed();
                let mut evaluation = fresh.evaluate_limited(limit)?;
                evaluation.epochs = vec![epoch];
                if evaluation.limited.is_some_and(|i| i.prefix_served) {
                    self.prefix_hits.inc();
                }
                // This call *did* pay planning + generation (+ burnback);
                // the trait cannot hand the split back, so the lump is
                // reported as answer-graph time — Timings::total stays
                // honest for the miss that built the view.
                evaluation.timings.answer_graph += phase_one;
                return Ok(evaluation);
            }
        }

        let mut evaluation = engine.evaluate(&prepared)?;
        self.full_evals.inc();
        evaluation.epochs = vec![epoch];
        // Engines that saw `EngineConfig::limit` already truncated; for the
        // rest (and for a larger per-call limit) this is the bound — a no-op
        // when the evaluation is already at least as tight.
        evaluation.apply_limit(limit);
        Ok(evaluation)
    }

    /// Whether this session serves the given engine through retained views,
    /// routed on the instance's capability set rather than its name.
    fn views_active(&self, engine: &dyn Engine) -> bool {
        self.maintenance && engine.capabilities().maintainable
    }

    /// First-use materialization of a cached plan's view slot: runs phase
    /// one once, stamps `epoch`, and retains the view unless a mutation
    /// landed meanwhile. Returns the view (for serving) when one was
    /// created, `None` when the slot is already decided (retained elsewhere
    /// or unmaintainable) or no engine could materialize it.
    ///
    /// When the configured engine declines, the registry's capability matrix
    /// is consulted for a fallback engine whose *instance* — built with this
    /// session's configuration, over the same snapshot — claims maintenance
    /// for the query's shape; a cyclic query under edge burnback is retained
    /// through `wco` this way instead of degrading to evict-and-reevaluate.
    /// Evaluations served from such a view report the engine that built it.
    fn materialize_slot(
        &self,
        engine: &dyn Engine,
        graph: &Arc<Graph>,
        prepared: &PreparedQuery,
        slot: &SharedViewSlot,
        epoch: u64,
        limit: usize,
    ) -> Result<Option<Arc<dyn MaintainedView>>, WireframeError> {
        if !matches!(
            &*slot.read().unwrap_or_else(|p| p.into_inner()),
            ViewSlot::Empty
        ) {
            return Ok(None);
        }
        if let Some(fresh) = engine.materialize(prepared)? {
            return Ok(Some(self.retain_fresh(fresh, slot, epoch, limit)));
        }
        if let Some(fresh) = self.materialize_fallback(graph, prepared)? {
            return Ok(Some(self.retain_fresh(fresh, slot, epoch, limit)));
        }
        // Epoch-independent property of the query shape + engine options
        // (engines decline before paying phase one): record it so hits
        // never re-ask.
        let mut guard = slot.write().unwrap_or_else(|p| p.into_inner());
        if matches!(&*guard, ViewSlot::Empty) {
            *guard = ViewSlot::Unmaintainable;
        }
        Ok(None)
    }

    /// Tries every *other* registered engine whose nominal — then actual,
    /// under this session's configuration — capabilities cover maintaining
    /// the prepared query's shape. The fallback re-prepares the query for
    /// its own plan payload (the cached [`PreparedQuery`] carries the
    /// configured engine's) and materializes over the same snapshot.
    fn materialize_fallback(
        &self,
        graph: &Arc<Graph>,
        prepared: &PreparedQuery,
    ) -> Result<Option<Box<dyn MaintainedView>>, WireframeError> {
        let wanted = |c: EngineCapabilities| {
            if prepared.cyclic() {
                c.maintainable_cyclic
            } else {
                c.maintainable
            }
        };
        for entry in self.registry.entries() {
            if entry.name == self.engine || !wanted(entry.capabilities) {
                continue;
            }
            let fallback = self
                .registry
                .build_shared(entry.name, graph, &self.config)?;
            if !wanted(fallback.capabilities()) {
                continue;
            }
            let reprepared = fallback.prepare(prepared.query())?;
            if let Some(view) = fallback.materialize(&reprepared)? {
                return Ok(Some(view));
            }
        }
        Ok(None)
    }

    /// Lazily primes a retained view's top-k prefix for `limit`: primes in
    /// place when this thread is the slot's only holder, otherwise clones,
    /// primes the clone, and swaps it in — the same copy-on-write discipline
    /// maintenance uses, so in-flight serves keep their snapshot. Priming
    /// pays one ordered defactorization (an underflow refill's cost) and is
    /// counted as one. Returns the primed view, or `None` when the slot
    /// moved on (evicted, or maintained past this reader's `epoch`) or the
    /// view cannot retain a prefix.
    fn warm_prefix(
        &self,
        slot: &SharedViewSlot,
        epoch: u64,
        limit: usize,
    ) -> Option<Arc<dyn MaintainedView>> {
        let mut guard = slot.write().unwrap_or_else(|p| p.into_inner());
        let ViewSlot::Retained(view) = &mut *guard else {
            return None;
        };
        if view.epoch() > epoch {
            return None;
        }
        // Re-check under the lock: a racing limited hit may have warmed the
        // prefix already, and its work must not be counted twice.
        if view.can_prefix_serve(limit) {
            return Some(Arc::clone(view));
        }
        let primed = match Arc::get_mut(view) {
            Some(exclusive) => exclusive.prime_prefix(limit),
            None => {
                let mut cloned = view.clone_view();
                let primed = cloned.prime_prefix(limit);
                *view = Arc::from(cloned);
                primed
            }
        };
        if !primed {
            return None;
        }
        self.prefix_refills.inc();
        Some(Arc::clone(view))
    }

    /// Stamps and retains a freshly materialized view — unless a mutation
    /// landed while materializing: a view built on a superseded snapshot
    /// must not be stored as current (`apply_mutation` maintains views
    /// while holding the state *write* lock).
    fn retain_fresh(
        &self,
        mut fresh: Box<dyn MaintainedView>,
        slot: &SharedViewSlot,
        epoch: u64,
        limit: usize,
    ) -> Arc<dyn MaintainedView> {
        self.full_evals.inc();
        // Prime the retained top-k prefix while the view is still exclusively
        // ours: priming pays one ordered defactorization up front — the same
        // work an underflow refill pays — so it is counted as one.
        if limit > 0 && fresh.prime_prefix(limit) {
            self.prefix_refills.inc();
        }
        fresh.set_epoch(epoch);
        let fresh: Arc<dyn MaintainedView> = Arc::from(fresh);
        // Retain under the state read lock.
        let state = self.state.read().unwrap_or_else(|e| e.into_inner());
        if state.epoch == epoch {
            let mut guard = slot.write().unwrap_or_else(|p| p.into_inner());
            if matches!(&*guard, ViewSlot::Empty) {
                *guard = ViewSlot::Retained(Arc::clone(&fresh));
            }
        }
        fresh
    }

    /// Warms the cache for `text` without producing an answer: parses,
    /// prepares (caching the plan), and — when the session and engine
    /// maintain — materializes and retains the query's view, all without
    /// defactorizing. Returns `true` when a retained view now exists.
    /// Useful to pre-warm a serving session, and used by
    /// `wfquery --mutations --explain` so the maintenance summary has a
    /// view to report on without paying a full pre-mutation evaluation.
    pub fn prime(&self, text: &str) -> Result<bool, WireframeError> {
        let (graph, epoch) = self.snapshot();
        let query = parse_query(text, graph.dictionary())?;
        let engine = self
            .registry
            .build_shared(&self.engine, &graph, &self.config)?;
        let (prepared, slot) = self.prepare_slot_on(engine.as_ref(), epoch, &query)?;
        if !self.views_active(engine.as_ref()) {
            return Ok(false);
        }
        if self
            .materialize_slot(
                engine.as_ref(),
                &graph,
                &prepared,
                &slot,
                epoch,
                self.config.limit,
            )?
            .is_some()
        {
            return Ok(true);
        }
        let guard = slot.read().unwrap_or_else(|p| p.into_inner());
        Ok(matches!(&*guard, ViewSlot::Retained(_)))
    }

    /// Returns the prepared form of `query` for the selected engine, from the
    /// cache when an equivalent query was prepared before.
    pub fn prepare(&self, query: &ConjunctiveQuery) -> Result<Arc<PreparedQuery>, WireframeError> {
        let (graph, epoch) = self.snapshot();
        let engine = self
            .registry
            .build_shared(&self.engine, &graph, &self.config)?;
        self.prepare_slot_on(engine.as_ref(), epoch, query)
            .map(|(prepared, _)| prepared)
    }

    /// Cache lookup + preparation on an already-built engine, returning the
    /// prepared query together with its retained-view slot. `epoch` is the
    /// epoch of the snapshot the engine was built over.
    fn prepare_slot_on(
        &self,
        engine: &dyn Engine,
        epoch: u64,
        query: &ConjunctiveQuery,
    ) -> Result<(Arc<PreparedQuery>, SharedViewSlot), WireframeError> {
        let key = (
            self.engine.clone(),
            plan_cache_key(query).as_str().to_owned(),
        );
        if let Some(found) = self.cache.find(&key, query) {
            self.hits.inc();
            return Ok(found);
        }
        // Prepare outside any lock: planning can be costly, and concurrent
        // lookups of other queries must not wait on it. A racing preparer of
        // the same query is resolved at insertion (first one in wins), so a
        // duplicate preparation is possible but a duplicate cache entry is
        // not.
        let prepared = Arc::new(engine.prepare(query)?);
        self.misses.inc();
        // Insert under the state read lock, and only if no mutation landed
        // while we were preparing. `apply_mutation` runs its footprint pass
        // while holding the state *write* lock, so either this insert
        // completes before a racing mutation's pass (which then maintains or
        // evicts it like any other entry), or the epoch check below sees the
        // new epoch and the possibly-stale plan is returned uncached.
        let state = self.state.read().unwrap_or_else(|e| e.into_inner());
        if state.epoch != epoch {
            return Ok((prepared, Arc::new(RwLock::new(ViewSlot::Empty))));
        }
        let cached = self.cache.insert(key, query, prepared);
        drop(state);
        let evicted = self.cache.enforce_capacity();
        if evicted > 0 {
            self.evictions.add(evicted);
        }
        Ok(cached)
    }

    /// Applies a mutation batch: swaps in the new graph version, advances
    /// the epoch, and runs the footprint pass over the plan cache — cached
    /// views whose predicate footprint the batch touched are **maintained**
    /// in `O(delta)` (kept serving, stamped with the new epoch); entries
    /// without a maintainable view (or with [`SessionConfig::maintenance`]
    /// off) are evicted as before. Readers in flight keep their snapshot.
    ///
    /// The footprint is derived once, from the batch's **net**
    /// [`EdgeDelta`] — already dictionary-resolved, already set-semantics
    /// clean — so a batch that nets out to nothing (or touches only
    /// predicates no cached plan mentions) performs zero cache work: no
    /// label re-resolution, no per-shard write locks, no entries touched
    /// (see [`Session::mutation_cache_touches`]).
    pub fn apply_mutation(&self, mutation: &Mutation) -> MutationOutcome {
        let mut state = self.state.write().unwrap_or_else(|e| e.into_inner());
        let (next, outcome) = state.graph.apply(mutation);
        let next = Arc::new(next);
        state.graph = Arc::clone(&next);
        state.epoch += 1;
        let epoch = state.epoch;
        // Run the footprint pass while still holding the state write lock:
        // a concurrent preparer either inserted its plan before we got the
        // lock (then the pass below maintains/evicts it) or will observe the
        // bumped epoch under the read lock and skip caching. Lock order is
        // state → cache shard → view slot on both paths, so this cannot
        // deadlock.
        if !outcome.delta.is_empty() {
            let footprint: Vec<PredId> = outcome.delta.predicates();
            let pass = self.cache.maintain_or_evict(
                &footprint,
                &next,
                &outcome.delta,
                epoch,
                self.maintenance,
                &self.maintain_view,
            );
            self.invalidations.add(pass.evicted);
            self.maintained.add(pass.maintained);
            self.maintenance_frontier.add(pass.frontier_nodes);
            self.maintenance_micros_total.add(pass.micros);
            self.mutation_touches.add(pass.touched);
            self.prefix_refills.add(pass.prefix_refills);
            self.prefix_fallbacks.add(pass.prefix_fallbacks);
            if pass.maintained > 0 {
                self.maintain_batch.record(pass.micros);
            }
        }
        // Notify epoch listeners while still holding the state write lock:
        // this is the ordering guarantee subscription fan-out builds on —
        // callbacks observe strictly increasing epochs and never race each
        // other. The listener lock is a leaf (state → listeners, nothing
        // re-enters the session), so this cannot deadlock.
        {
            let listeners = self
                .epoch_listeners
                .read()
                .unwrap_or_else(|e| e.into_inner());
            for listener in listeners.iter() {
                listener(epoch, &outcome.delta);
            }
        }
        drop(state);
        if outcome.compacted {
            self.compactions.inc();
        }
        outcome
    }

    /// Inserts triples (set semantics: already-present triples are no-ops).
    /// One call is one mutation batch — one epoch.
    pub fn insert_triples<'a>(
        &self,
        triples: impl IntoIterator<Item = (&'a str, &'a str, &'a str)>,
    ) -> MutationOutcome {
        let mut mutation = Mutation::new();
        for (s, p, o) in triples {
            mutation.push(MutationOp::Insert, s, p, o);
        }
        self.apply_mutation(&mutation)
    }

    /// Removes triples (set semantics: absent triples are no-ops). One call
    /// is one mutation batch — one epoch.
    pub fn remove_triples<'a>(
        &self,
        triples: impl IntoIterator<Item = (&'a str, &'a str, &'a str)>,
    ) -> MutationOutcome {
        let mut mutation = Mutation::new();
        for (s, p, o) in triples {
            mutation.push(MutationOp::Remove, s, p, o);
        }
        self.apply_mutation(&mutation)
    }

    /// Number of prepared-query cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.hits.get()
    }

    /// Number of prepared-query cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.misses.get()
    }

    /// Number of cache entries evicted by the capacity bound so far.
    pub fn cache_evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Number of cache entries evicted by mutation footprints so far.
    pub fn cache_invalidations(&self) -> u64 {
        self.invalidations.get()
    }

    /// Number of retained views maintained in place by mutations so far
    /// (each is one cached plan that kept serving instead of being evicted).
    pub fn plans_maintained(&self) -> u64 {
        self.maintained.get()
    }

    /// Total maintenance frontier (answer-graph nodes from which local
    /// burnback/revival cascaded) across all maintained views so far.
    pub fn maintenance_frontier_nodes(&self) -> u64 {
        self.maintenance_frontier.get()
    }

    /// Total wall-clock spent maintaining views, in microseconds.
    pub fn maintenance_micros(&self) -> u64 {
        self.maintenance_micros_total.get()
    }

    /// Number of cached entries examined under a shard write lock by
    /// mutation footprint passes. A mutation whose net footprint intersects
    /// no cached plan leaves this unchanged — the zero-cache-work guarantee
    /// the regression tests pin.
    pub fn mutation_cache_touches(&self) -> u64 {
        self.mutation_touches.get()
    }

    /// Number of evaluations served purely from a retained view
    /// (defactorization only — no planning, no answer-graph generation).
    pub fn view_serves(&self) -> u64 {
        self.view_serves.get()
    }

    /// Number of view serves answered from a retained top-k prefix in
    /// `O(k)` — no defactorization at all. A subset of
    /// [`Session::view_serves`].
    pub fn prefix_hits(&self) -> u64 {
        self.prefix_hits.get()
    }

    /// Number of top-k prefix recomputes paid on priming or underflow
    /// refills (removals drained the retained prefix below its bound).
    pub fn prefix_refills(&self) -> u64 {
        self.prefix_refills.get()
    }

    /// Number of top-k prefix full-recompute fallbacks: a batch churned too
    /// much of the graph (or fanned out too many candidate rows) for the
    /// incremental merge to beat re-deriving the prefix outright.
    pub fn prefix_fallbacks(&self) -> u64 {
        self.prefix_fallbacks.get()
    }

    /// Number of full pipeline runs (answer-graph generation) performed:
    /// engine evaluations plus view materializations. The churn benchmark
    /// compares this between the maintenance policies.
    pub fn full_evaluations(&self) -> u64 {
        self.full_evals.get()
    }

    /// Number of delta-store compactions triggered by this session's
    /// mutations so far.
    pub fn compactions(&self) -> u64 {
        self.compactions.get()
    }

    /// Number of distinct prepared queries currently cached.
    pub fn cached_queries(&self) -> usize {
        self.cache.len()
    }

    /// The session's full registry export, with the graph gauges
    /// (`graph.triples`, delta-overlay size) refreshed from the current
    /// graph version at the moment of the call. This is what the `metrics`
    /// wire request and the Prometheus scrape endpoint serve;
    /// [`Session::stats`] is a named-field projection of the same data.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let graph = self.graph();
        self.graph_triples.set(graph.triple_count() as u64);
        self.overlay_edges.set(graph.overlay_edges());
        self.overlay_ppm.set(graph.overlay_fraction_ppm());
        self.prefix_rows.set(self.cache.prefix_rows_total());
        self.metrics.snapshot()
    }

    /// The session's tracer: sampling state and the completed-span ring.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Empties the prepared-query cache (the hit/miss counters keep counting).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }
}

impl QueryExecutor for Session {
    fn engine_name(&self) -> &str {
        Session::engine_name(self)
    }

    fn query(&self, text: &str) -> Result<Evaluation, WireframeError> {
        Session::query(self, text)
    }

    fn query_limited(&self, text: &str, limit: usize) -> Result<Evaluation, WireframeError> {
        Session::query_limited(self, text, limit)
    }

    fn execute(&self, query: &ConjunctiveQuery) -> Result<Evaluation, WireframeError> {
        Session::execute(self, query)
    }

    fn execute_limited(
        &self,
        query: &ConjunctiveQuery,
        limit: usize,
    ) -> Result<Evaluation, WireframeError> {
        Session::execute_limited(self, query, limit)
    }

    fn prime(&self, text: &str) -> Result<bool, WireframeError> {
        Session::prime(self, text)
    }

    fn apply_mutation(&self, mutation: &Mutation) -> MutationOutcome {
        Session::apply_mutation(self, mutation)
    }

    fn epoch(&self) -> u64 {
        Session::epoch(self)
    }

    fn epoch_vector(&self) -> Vec<u64> {
        vec![Session::epoch(self)]
    }

    fn graph(&self) -> Arc<Graph> {
        Session::graph(self)
    }

    fn add_epoch_listener(&self, listener: EpochListener) {
        Session::add_epoch_listener(self, listener)
    }

    fn stats(&self) -> ExecutorStats {
        // The registry is the single source of truth; the struct is a
        // named-field projection of its counters.
        ExecutorStats::from_snapshot(&self.metrics.snapshot())
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        Session::metrics_snapshot(self)
    }

    fn recent_spans(&self) -> Vec<Span> {
        self.tracer.recent()
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (graph, epoch) = self.snapshot();
        f.debug_struct("Session")
            .field("engine", &self.engine)
            .field("triples", &graph.triple_count())
            .field("epoch", &epoch)
            .field("cached_queries", &self.cached_queries())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireframe_graph::GraphBuilder;

    fn knows_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add("alice", "knows", "bob");
        b.add("bob", "knows", "carol");
        b.add("carol", "knows", "dave");
        b.build()
    }

    #[test]
    fn metrics_registry_is_the_single_source_of_truth() {
        let session = Session::from_config(
            knows_graph(),
            SessionConfig::new().store(StoreKind::Delta).trace_sample(1),
        )
        .unwrap();
        let q = "SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }";
        session.query(q).unwrap();
        session.query(q).unwrap();
        session.insert_triples([("dave", "knows", "erin")]);

        let snap = session.metrics_snapshot();
        let stats = QueryExecutor::stats(&session);
        assert_eq!(stats.cache_hits, snap.counter(names::CACHE_HITS));
        assert_eq!(stats.cache_hits, session.cache_hits());
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(
            snap.histogram(names::QUERY_LATENCY_US).unwrap().count,
            2,
            "every query records into the latency histogram"
        );
        assert_eq!(snap.gauge(names::GRAPH_TRIPLES), 4);

        // trace_sample(1) keeps every completed query span; the tree
        // carries the pipeline context fields.
        let spans = QueryExecutor::recent_spans(&session);
        assert_eq!(spans.len(), 2);
        let rendered = spans[0].render();
        assert!(rendered.starts_with("query "), "{rendered}");
        for key in ["signature=", "engine=wireframe", "store=delta", "rows=2"] {
            assert!(rendered.contains(key), "missing {key} in {rendered}");
        }
    }

    #[test]
    fn obs_off_drops_histograms_and_spans_but_keeps_counters() {
        let session = Session::from_config(knows_graph(), SessionConfig::new().obs(false)).unwrap();
        let q = "SELECT ?x WHERE { ?x :knows ?y . }";
        session.query(q).unwrap();
        session.query(q).unwrap();
        let snap = session.metrics_snapshot();
        assert!(snap.histograms.is_empty(), "no histograms under --obs off");
        assert!(QueryExecutor::recent_spans(&session).is_empty());
        assert_eq!(snap.counter(names::CACHE_HITS), 1, "counters stay live");
        assert_eq!(QueryExecutor::stats(&session).cache_hits, 1);
    }

    #[test]
    fn parse_plan_execute_in_one_call() {
        let session = Session::new(knows_graph());
        let ev = session
            .query("SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }")
            .unwrap();
        assert_eq!(ev.embedding_count(), 2);
        assert_eq!(ev.engine, "wireframe");
        assert_eq!(ev.epoch(), 0, "no mutation applied yet");
        assert!(ev.factorized.is_some());
    }

    #[test]
    fn prepared_query_cache_reuses_plans() {
        let session = Session::new(knows_graph());
        let text = "SELECT * WHERE { ?x :knows ?y . ?y :knows ?z . }";
        let first = session.query(text).unwrap();
        assert_eq!(session.cache_misses(), 1);
        assert_eq!(session.cache_hits(), 0);

        let second = session.query(text).unwrap();
        assert_eq!(session.cache_misses(), 1, "no second preparation");
        assert_eq!(session.cache_hits(), 1, "the cached plan was reused");
        assert!(first.embeddings().same_answer(second.embeddings()));

        // An isomorphic query (renamed variables, reordered patterns, same
        // column order) hits the same entry: the cache is keyed by the
        // order-sensitive canonical form.
        let renamed = "SELECT ?a ?b ?c WHERE { ?b :knows ?c . ?a :knows ?b . }";
        let third = session.query(renamed).unwrap();
        assert_eq!(session.cache_hits(), 2);
        assert_eq!(session.cached_queries(), 1);
        assert!(first.embeddings().same_answer(third.embeddings()));
    }

    #[test]
    fn cache_never_conflates_projection_order() {
        // `SELECT ?x ?z` and `SELECT ?z ?x` share a miner signature but ask
        // for different column orders; a cache hit here would silently swap
        // the output columns.
        let session = Session::new(knows_graph());
        let xz = session
            .query("SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }")
            .unwrap();
        let zx = session
            .query("SELECT ?z ?x WHERE { ?x :knows ?y . ?y :knows ?z . }")
            .unwrap();
        assert_eq!(session.cache_misses(), 2, "distinct column orders miss");
        assert_eq!(session.cache_hits(), 0);

        // The second result's columns are the first's, swapped.
        let mut a: Vec<_> = xz.embeddings().rows().map(|t| (t[0], t[1])).collect();
        let mut b: Vec<_> = zx.embeddings().rows().map(|t| (t[1], t[0])).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "column values swap with the requested order");
        // (Var indices are per-query namespaces, so the schemas themselves
        // are not comparable across the two parses — the tuple check above
        // is the meaningful one.)
    }

    #[test]
    fn cache_hit_requires_exact_isomorphism() {
        use wireframe_query::CqBuilder;
        // A directed 6-cycle and two disjoint directed triangles over one
        // predicate colour identically (the classic 1-WL blind spot), so
        // their cache keys collide. The exact-isomorphism confirmation must
        // keep them apart: the disconnected triangle query is rejected, not
        // answered with the cycle's cached plan.
        let session = Session::new(knows_graph());
        let graph = session.graph();
        let d = graph.dictionary();

        let mut b6 = CqBuilder::new(d);
        for i in 0..6 {
            b6.pattern(&format!("?v{i}"), "knows", &format!("?v{}", (i + 1) % 6))
                .unwrap();
        }
        let cycle6 = b6.build().unwrap();

        let mut b33 = CqBuilder::new(d);
        for i in 0..3 {
            b33.pattern(&format!("?s{i}"), "knows", &format!("?s{}", (i + 1) % 3))
                .unwrap();
        }
        for i in 0..3 {
            b33.pattern(&format!("?t{i}"), "knows", &format!("?t{}", (i + 1) % 3))
                .unwrap();
        }
        let triangles = b33.build().unwrap();

        let cycle_answer = session.execute(&cycle6).unwrap();
        assert_eq!(cycle_answer.embedding_count(), 0, "no 6-cycle in the data");

        assert!(
            matches!(
                session.execute(&triangles),
                Err(WireframeError::DisconnectedQuery)
            ),
            "the colour-colliding disconnected query must not reuse the cycle's plan"
        );
        assert_eq!(session.cache_hits(), 0, "collision was not a hit");
    }

    #[test]
    fn cache_is_per_engine() {
        let mut session = Session::new(knows_graph());
        let text = "SELECT * WHERE { ?x :knows ?y . }";
        session.query(text).unwrap();
        session.set_engine("relational").unwrap();
        session.query(text).unwrap();
        assert_eq!(session.cache_misses(), 2, "each engine prepares its own");
        assert_eq!(session.cached_queries(), 2);

        session.clear_cache();
        assert_eq!(session.cached_queries(), 0);
    }

    #[test]
    fn every_registered_engine_answers_identically() {
        let mut session = Session::new(knows_graph());
        let text = "SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }";
        let names: Vec<&str> = session.registry().names();
        let mut answers = Vec::new();
        for name in names {
            session.set_engine(name).unwrap();
            let ev = session.query(text).unwrap();
            assert_eq!(ev.engine, name);
            answers.push(ev.embeddings);
        }
        for other in &answers[1..] {
            assert!(answers[0].same_answer(other));
        }
    }

    #[test]
    fn unknown_engine_is_rejected() {
        let mut session = Session::new(knows_graph());
        assert!(matches!(
            session.set_engine("sqlite"),
            Err(WireframeError::UnknownEngine { .. })
        ));
        assert!(
            Session::from_config(knows_graph(), SessionConfig::new().engine("sortmerge")).is_ok()
        );
        assert!(matches!(
            Session::from_config(knows_graph(), SessionConfig::new().engine("sqlite")),
            Err(WireframeError::UnknownEngine { .. })
        ));
    }

    #[test]
    fn sessions_share_a_graph_without_copying() {
        let shared = Arc::new(knows_graph());
        let a = Session::new(Graph::clone(&shared)); // independent copy
        let b = Session::shared(Arc::clone(&shared));
        let c = Session::from_config(b.graph(), SessionConfig::new().engine("relational")).unwrap();
        assert!(Arc::ptr_eq(&b.graph(), &c.graph()));
        assert!(!Arc::ptr_eq(&a.graph(), &b.graph()));

        let text = "SELECT * WHERE { ?x :knows ?y . }";
        let via_b = b.query(text).unwrap();
        let via_c = c.query(text).unwrap();
        assert!(via_b.embeddings().same_answer(via_c.embeddings()));
    }

    #[test]
    fn concurrent_queries_share_the_plan_cache() {
        let session = Arc::new(Session::new(knows_graph()));
        let text = "SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }";
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let session = Arc::clone(&session);
                scope.spawn(move || {
                    for _ in 0..4 {
                        let ev = session.query(text).unwrap();
                        assert_eq!(ev.embedding_count(), 2);
                    }
                });
            }
        });
        assert_eq!(
            session.cache_hits() + session.cache_misses(),
            32,
            "every query is accounted a hit or a miss"
        );
        assert_eq!(
            session.cached_queries(),
            1,
            "racing preparers converge on one cached plan"
        );
    }

    #[test]
    fn store_selection_reindexes_the_graph() {
        let session =
            Session::from_config(knows_graph(), SessionConfig::new().store(StoreKind::Map))
                .unwrap();
        assert_eq!(session.store_kind(), StoreKind::Map);
        assert_eq!(session.config().store, Some(StoreKind::Map));
        let ev = session
            .query("SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }")
            .unwrap();
        assert_eq!(ev.embedding_count(), 2, "answers are store-independent");

        // A graph pre-built on the map backend is served as-is: a config
        // that does not name a backend (store: None) never re-indexes.
        let mut b = GraphBuilder::new();
        b.add("a", "p", "b");
        let pre_built = Session::from_config(
            Arc::new(b.build_with_store(StoreKind::Map)),
            SessionConfig::new().threads(4),
        )
        .unwrap();
        assert_eq!(pre_built.store_kind(), StoreKind::Map);
        assert_eq!(pre_built.config().store, None);
    }

    #[test]
    fn parse_errors_surface_as_wireframe_errors() {
        let session = Session::new(knows_graph());
        assert!(matches!(
            session.query("SELECT WHERE"),
            Err(WireframeError::Query(_))
        ));
    }

    #[test]
    fn mutations_advance_the_epoch_and_the_answers() {
        let session =
            Session::from_config(knows_graph(), SessionConfig::new().store(StoreKind::Delta))
                .unwrap();
        let text = "SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }";
        assert_eq!(session.epoch(), 0);
        assert_eq!(session.query(text).unwrap().embedding_count(), 2);

        let outcome = session.insert_triples([("dave", "knows", "erin")]);
        assert_eq!(outcome.inserted, 1);
        assert_eq!(session.epoch(), 1);
        let ev = session.query(text).unwrap();
        assert_eq!(ev.epoch(), 1, "evaluations carry the snapshot epoch");
        assert_eq!(ev.embedding_count(), 3, "the new 2-chain appears");

        let outcome = session.remove_triples([("alice", "knows", "bob")]);
        assert_eq!(outcome.removed, 1);
        let ev = session.query(text).unwrap();
        assert_eq!(ev.epoch(), 2);
        assert_eq!(ev.embedding_count(), 2);

        // Set semantics: replaying either batch changes nothing (but still
        // advances the epoch — each applied batch is a version).
        let outcome = session.insert_triples([("dave", "knows", "erin")]);
        assert_eq!((outcome.inserted, outcome.removed), (0, 0));
        assert_eq!(session.epoch(), 3);
    }

    fn knows_likes_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add("alice", "knows", "bob");
        b.add("bob", "knows", "carol");
        b.add("alice", "likes", "pizza");
        b.build()
    }

    #[test]
    fn mutation_invalidates_only_intersecting_footprints() {
        // Maintenance off: the pre-maintenance eviction policy, pinned.
        let session = Session::from_config(
            knows_likes_graph(),
            SessionConfig::new()
                .store(StoreKind::Delta)
                .maintenance(false),
        )
        .unwrap();
        assert!(!session.maintenance_enabled());

        let knows_q = "SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }";
        let likes_q = "SELECT * WHERE { ?x :likes ?y . }";
        session.query(knows_q).unwrap();
        session.query(likes_q).unwrap();
        assert_eq!(session.cache_misses(), 2);
        assert_eq!(session.cached_queries(), 2);

        // Mutate `likes` only: the `knows` plan must survive.
        session.insert_triples([("bob", "likes", "pasta")]);
        assert_eq!(session.cache_invalidations(), 1, "only the likes plan");
        assert_eq!(session.cached_queries(), 1);
        assert_eq!(session.plans_maintained(), 0, "maintenance is off");
        assert_eq!(session.mutation_cache_touches(), 1);

        let hits_before = session.cache_hits();
        let ev = session.query(knows_q).unwrap();
        assert_eq!(session.cache_hits(), hits_before + 1, "knows plan kept");
        assert_eq!(ev.epoch(), 1);
        let misses_before = session.cache_misses();
        let ev = session.query(likes_q).unwrap();
        assert_eq!(session.cache_misses(), misses_before + 1, "re-prepared");
        assert_eq!(ev.embedding_count(), 2, "epoch-correct answer");

        // A no-op batch evicts nothing.
        let invalidations = session.cache_invalidations();
        session.insert_triples([("bob", "likes", "pasta")]);
        assert_eq!(session.cache_invalidations(), invalidations);
    }

    #[test]
    fn mutation_maintains_intersecting_views_in_place() {
        // Maintenance on (the default): intersecting wireframe plans are
        // kept and their retained views updated in O(delta).
        let session = Session::from_config(
            knows_likes_graph(),
            SessionConfig::new().store(StoreKind::Delta),
        )
        .unwrap();
        assert!(session.maintenance_enabled());

        let knows_q = "SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }";
        let likes_q = "SELECT * WHERE { ?x :likes ?y . }";
        assert_eq!(session.query(knows_q).unwrap().embedding_count(), 1);
        session.query(likes_q).unwrap();
        assert_eq!(session.full_evaluations(), 2, "one pipeline run each");

        session.insert_triples([("carol", "knows", "dave")]);
        assert_eq!(session.plans_maintained(), 1, "the knows view");
        assert_eq!(session.cache_invalidations(), 0, "nothing evicted");
        assert_eq!(session.cached_queries(), 2, "both plans survive");
        assert_eq!(session.mutation_cache_touches(), 1);

        // The maintained view serves the post-mutation answer as a cache
        // hit, with no new full evaluation.
        let full_before = session.full_evaluations();
        let ev = session.query(knows_q).unwrap();
        assert_eq!(ev.epoch(), 1);
        assert_eq!(ev.embedding_count(), 2, "the new 2-chain appears");
        let info = ev.maintenance.expect("served from a maintained view");
        assert_eq!(info.maintained_epoch, 1);
        assert_eq!(info.passes, 1);
        assert_eq!(session.full_evaluations(), full_before, "phase two only");
        assert!(session.view_serves() >= 1);

        // Removal maintains too.
        session.remove_triples([("alice", "knows", "bob")]);
        assert_eq!(session.plans_maintained(), 2);
        let ev = session.query(knows_q).unwrap();
        assert_eq!(ev.epoch(), 2);
        assert_eq!(ev.embedding_count(), 1, "bob's chain is gone");
    }

    #[test]
    fn non_intersecting_mutation_performs_zero_cache_work() {
        // Regression test for the footprint pass: the footprint is derived
        // once from the net delta, and a batch that intersects no cached
        // plan must take no shard write lock and touch no entry.
        let session = Session::from_config(
            knows_likes_graph(),
            SessionConfig::new().store(StoreKind::Delta),
        )
        .unwrap();
        let knows_q = "SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }";
        session.query(knows_q).unwrap();
        assert_eq!(session.cached_queries(), 1);

        // `likes` and the brand-new `admires` intersect no cached footprint.
        session.insert_triples([("bob", "likes", "pasta"), ("bob", "admires", "carol")]);
        assert_eq!(session.mutation_cache_touches(), 0, "zero entries touched");
        assert_eq!(session.cache_invalidations(), 0);
        assert_eq!(session.plans_maintained(), 0);
        assert_eq!(session.cached_queries(), 1, "the knows plan is intact");

        // A batch that nets out to nothing (set semantics) is free too,
        // even over an intersecting predicate.
        session.insert_triples([("alice", "knows", "bob")]); // already present
        assert_eq!(session.mutation_cache_touches(), 0);

        // And the untouched plan keeps serving from its retained view: no
        // new full evaluation even though the epoch advanced past the
        // view's stamp (non-intersecting epochs cannot stale a view).
        let hits = session.cache_hits();
        let full = session.full_evaluations();
        let ev = session.query(knows_q).unwrap();
        assert_eq!(session.cache_hits(), hits + 1);
        assert_eq!(session.full_evaluations(), full, "served from the view");
        assert_eq!(ev.epoch(), 2, "one real batch plus one no-op batch");
        assert!(ev.maintenance.is_some());
    }

    #[test]
    fn view_serving_skips_the_full_pipeline_on_hits() {
        let session = Session::new(knows_graph());
        let text = "SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }";
        let first = session.query(text).unwrap();
        assert_eq!(session.full_evaluations(), 1);
        assert_eq!(session.view_serves(), 0, "the miss ran the pipeline");

        let second = session.query(text).unwrap();
        assert_eq!(session.full_evaluations(), 1, "no second pipeline run");
        assert_eq!(session.view_serves(), 1);
        assert!(first.embeddings().same_answer(second.embeddings()));
        assert!(second.maintenance.is_some(), "view-served answers say so");
        assert_eq!(
            second.answer_graph_size(),
            first.answer_graph_size(),
            "the retained view reports the same |AG|"
        );

        // Non-maintaining engines keep the plain path.
        let baseline =
            Session::from_config(knows_graph(), SessionConfig::new().engine("relational")).unwrap();
        baseline.query(text).unwrap();
        baseline.query(text).unwrap();
        assert_eq!(baseline.view_serves(), 0);
        assert_eq!(baseline.full_evaluations(), 2);
    }

    #[test]
    fn limited_queries_serve_from_the_retained_prefix() {
        let config = SessionConfig::new()
            .store(StoreKind::Delta)
            .engine_config(EngineConfig::default().with_limit(2));
        let session = Session::from_config(knows_graph(), config).unwrap();
        let text = "SELECT ?x ?y WHERE { ?x :knows ?y . }";

        // The miss runs phase one, primes the top-k prefix (one refill), and
        // already answers from it.
        let first = session.query(text).unwrap();
        assert_eq!(first.embedding_count(), 2);
        let info = first.limited.expect("limited answers carry LimitInfo");
        assert!(info.truncated, "3 rows exist, 2 were served");
        assert!(info.prefix_served);
        assert_eq!(session.prefix_refills(), 1, "priming counts as a refill");

        // Hits are O(k): no defactorization, the prefix-hit counter moves.
        let second = session.query(text).unwrap();
        assert!(second.limited.unwrap().prefix_served);
        assert_eq!(session.prefix_hits(), 2, "miss and hit both prefix-served");
        assert_eq!(session.view_serves(), 1);

        // The served rows are the canonical first k of the full answer.
        let full = Session::new(knows_graph()).query(text).unwrap();
        let expect = full.embeddings().canonical_prefix(2);
        assert_eq!(
            second.embeddings().rows().collect::<Vec<_>>(),
            expect.rows().collect::<Vec<_>>(),
            "bit-identical to the fresh canonical prefix"
        );

        // A per-call limit beyond the retained k grows the prefix in place
        // (one more refill, copy-on-write) and serves from it — wider pages
        // are O(limit) too, from this call on.
        let wide = session.query_limited(text, 3).unwrap();
        assert_eq!(wide.embedding_count(), 3);
        let info = wide.limited.unwrap();
        assert!(info.prefix_served);
        assert!(!info.truncated, "all three rows fit in the grown prefix");
        assert_eq!(session.prefix_refills(), 2, "growing k re-primes");

        // Mutations keep the prefix serving, and the gauge reads the level.
        session.insert_triples([("aaron", "knows", "alice")]);
        assert_eq!(session.plans_maintained(), 1);
        let third = session.query(text).unwrap();
        assert!(third.limited.unwrap().prefix_served);
        let fresh = {
            let mut b = GraphBuilder::new();
            b.add("alice", "knows", "bob");
            b.add("bob", "knows", "carol");
            b.add("carol", "knows", "dave");
            b.add("aaron", "knows", "alice");
            Session::new(b.build()).query(text).unwrap()
        };
        let expect = fresh.embeddings().canonical_prefix(2);
        assert_eq!(
            third.embeddings().rows().collect::<Vec<_>>(),
            expect.rows().collect::<Vec<_>>(),
            "maintained prefix matches a from-scratch evaluation"
        );
        let snap = session.metrics_snapshot();
        assert_eq!(
            snap.gauge(names::MAINTAIN_PREFIX_ROWS),
            3,
            "the gauge reads the retained level of the grown prefix"
        );
        assert_eq!(
            QueryExecutor::stats(&session).prefix_hits,
            session.prefix_hits()
        );
    }

    #[test]
    fn prime_retains_a_view_without_evaluating() {
        let session =
            Session::from_config(knows_graph(), SessionConfig::new().store(StoreKind::Delta))
                .unwrap();
        let text = "SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }";
        assert!(session.prime(text).unwrap(), "a view is retained");
        assert_eq!(session.full_evaluations(), 1, "phase one ran once");
        assert_eq!(session.view_serves(), 0, "nothing was answered");
        assert!(session.prime(text).unwrap(), "idempotent, already retained");
        assert_eq!(session.full_evaluations(), 1);

        // The primed view is maintained by mutations and serves directly.
        session.insert_triples([("dave", "knows", "erin")]);
        assert_eq!(session.plans_maintained(), 1);
        let ev = session.query(text).unwrap();
        assert_eq!(ev.embedding_count(), 3, "the new 2-chain appears");
        assert_eq!(session.full_evaluations(), 1, "served from the view");

        // Non-maintaining engines prime the plan only.
        let baseline =
            Session::from_config(knows_graph(), SessionConfig::new().engine("sortmerge")).unwrap();
        assert!(!baseline.prime(text).unwrap());
        assert_eq!(baseline.cache_misses(), 1, "the plan is cached");

        // Unparsable text errors instead of silently doing nothing.
        assert!(session.prime("SELECT WHERE").is_err());
    }

    #[test]
    fn cyclic_views_under_edge_burnback_are_retained_through_wco() {
        // The wireframe engine declines to materialize a cyclic query under
        // edge burnback; the session's capability routing falls back to the
        // wco engine, which retains and maintains the view instead of
        // degrading to evict-and-reevaluate.
        let mut b = GraphBuilder::new();
        b.add("3", "A", "4");
        b.add("3", "B", "2");
        b.add("4", "C", "1");
        b.add("2", "D", "1");
        let session = Session::from_config(
            b.build(),
            SessionConfig::new()
                .engine_config(EngineConfig::default().with_edge_burnback())
                .store(StoreKind::Delta),
        )
        .unwrap();
        let q = "SELECT * WHERE { ?x :A ?e . ?x :B ?z . ?e :C ?y . ?z :D ?y . }";
        assert_eq!(session.query(q).unwrap().embedding_count(), 1);
        let ev = session.query(q).unwrap();
        assert_eq!(session.view_serves(), 1, "the fallback view serves hits");
        assert_eq!(
            ev.engine, "wco",
            "answers name the engine that built the view"
        );

        // Intersecting mutations maintain the fallback view in place.
        session.insert_triples([("7", "A", "8")]);
        assert_eq!(session.plans_maintained(), 1);
        assert_eq!(session.cache_invalidations(), 0, "no eviction");
        let ev = session.query(q).unwrap();
        assert_eq!(ev.epoch(), 1);
        assert_eq!(
            ev.embedding_count(),
            1,
            "the dangling A edge closes nothing"
        );
        assert!(ev.maintenance.is_some());
    }

    #[test]
    fn compactions_are_counted() {
        let graph = knows_graph()
            .with_store(StoreKind::Delta)
            .with_compaction_threshold(0.0);
        let session = Session::new(graph);
        assert_eq!(session.compactions(), 0);
        session.insert_triples([("x", "knows", "y")]);
        session.remove_triples([("x", "knows", "y")]);
        assert_eq!(session.compactions(), 2, "threshold 0.0 compacts per batch");
        let graph = session.graph();
        assert_eq!(graph.delta_stats(), Some((0, 0.0)));
    }

    #[test]
    fn cache_capacity_bounds_and_evicts_lru() {
        let session =
            Session::from_config(knows_graph(), SessionConfig::new().cache_capacity(2)).unwrap();
        assert_eq!(session.cache_capacity(), 2);
        // Three distinct canonical queries.
        let q1 = "SELECT ?x WHERE { ?x :knows ?y . }";
        let q2 = "SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }";
        let q3 = "SELECT ?x WHERE { ?x :knows alice . }";
        session.query(q1).unwrap();
        session.query(q2).unwrap();
        assert_eq!(session.cache_evictions(), 0);
        session.query(q1).unwrap(); // refresh q1: q2 becomes the LRU
        session.query(q3).unwrap();
        assert_eq!(session.cached_queries(), 2, "capacity holds");
        assert_eq!(session.cache_evictions(), 1);

        // q1 survived (it was refreshed); q2 was evicted.
        let hits = session.cache_hits();
        session.query(q1).unwrap();
        assert_eq!(session.cache_hits(), hits + 1, "q1 still cached");
        let misses = session.cache_misses();
        session.query(q2).unwrap();
        assert_eq!(session.cache_misses(), misses + 1, "q2 was the LRU victim");

        // Unbounded caches never evict.
        let unbounded =
            Session::from_config(knows_graph(), SessionConfig::new().cache_capacity(0)).unwrap();
        for q in [q1, q2, q3] {
            unbounded.query(q).unwrap();
        }
        assert_eq!(unbounded.cache_evictions(), 0);
        assert_eq!(unbounded.cached_queries(), 3);
    }

    #[test]
    fn concurrent_readers_survive_mutations() {
        let graph = knows_graph().with_store(StoreKind::Delta);
        let session = Arc::new(Session::new(graph));
        let text = "SELECT * WHERE { ?x :knows ?y . }";
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let session = Arc::clone(&session);
                scope.spawn(move || {
                    for _ in 0..8 {
                        let ev = session.query(text).unwrap();
                        // 3 base edges, plus up to 8 inserted ones.
                        assert!((3..=11).contains(&ev.embedding_count()));
                    }
                });
            }
            let session = Arc::clone(&session);
            scope.spawn(move || {
                for i in 0..8 {
                    let node = format!("extra{i}");
                    session.insert_triples([(node.as_str(), "knows", "alice")]);
                }
            });
        });
        assert_eq!(session.epoch(), 8);
        let ev = session.query(text).unwrap();
        assert_eq!(ev.embedding_count(), 11);
        assert_eq!(ev.epoch(), 8);
    }

    #[test]
    fn config_sets_the_compaction_threshold() {
        let session = Session::from_config(
            knows_graph(),
            SessionConfig::new()
                .store(StoreKind::Delta)
                .compaction_threshold(0.0),
        )
        .unwrap();
        session.insert_triples([("x", "knows", "y")]);
        assert_eq!(session.compactions(), 1, "threshold 0.0 compacts per batch");
    }

    #[test]
    fn evaluations_carry_the_epoch_vector() {
        let session = Session::new(knows_graph());
        let text = "SELECT * WHERE { ?x :knows ?y . }";
        assert_eq!(session.query(text).unwrap().epochs, vec![0]);
        session.insert_triples([("dave", "knows", "erin")]);
        // All three serving paths stamp `[epoch]`: view serve, fresh
        // materialization, and the plain engine path.
        assert_eq!(session.query(text).unwrap().epochs, vec![1]);
        assert_eq!(session.query(text).unwrap().epochs, vec![1]);
        let baseline =
            Session::from_config(knows_graph(), SessionConfig::new().engine("relational")).unwrap();
        assert_eq!(baseline.query(text).unwrap().epochs, vec![0]);
    }

    #[test]
    fn sessions_serve_through_dyn_query_executor() {
        let executor: Arc<dyn QueryExecutor> = Arc::new(Session::new(knows_graph()));
        assert_eq!(executor.engine_name(), "wireframe");
        assert_eq!(executor.shard_count(), 1);
        let ev = executor.query("SELECT * WHERE { ?x :knows ?y . }").unwrap();
        assert_eq!(ev.embedding_count(), 3);
        executor.apply_mutation(&Mutation::new().insert("dave", "knows", "erin"));
        assert_eq!(executor.epoch(), 1);
        assert_eq!(executor.epoch_vector(), vec![1]);
        let stats = executor.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.full_evaluations, 1);
    }

    #[test]
    fn session_config_configures_everything_the_builders_did() {
        // `SessionConfig` is the one configuration surface; pin that every
        // knob the former `with_*` builders covered still reaches the
        // session through it.
        let session = Session::from_config(
            knows_likes_graph(),
            SessionConfig::new()
                .engine_config(EngineConfig::default().with_threads(2))
                .store(StoreKind::Delta)
                .maintenance(false)
                .cache_capacity(7)
                .engine("sortmerge"),
        )
        .unwrap();
        assert_eq!(session.store_kind(), StoreKind::Delta);
        assert!(!session.maintenance_enabled());
        assert_eq!(session.cache_capacity(), 7);
        assert_eq!(session.config().threads, 2);
        assert_eq!(session.engine_name(), "sortmerge");
        assert_eq!(
            session
                .query("SELECT * WHERE { ?x :likes ?y . }")
                .unwrap()
                .embedding_count(),
            1
        );
    }
}

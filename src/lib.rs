//! # Wireframe — answer-graph evaluation of SPARQL conjunctive queries
//!
//! This is the umbrella crate of the Wireframe workspace, a reproduction of
//! *"Answer Graph: Factorization Matters in Large Graphs"* (EDBT 2021).
//! It re-exports the public API of the member crates and adds the two pieces
//! that tie them together:
//!
//! * [`Session`] — owns a [`Graph`](graph::Graph) and answers queries in one
//!   call (parse → plan → execute), with a bounded prepared-query cache
//!   keyed by the canonical query signature, plus the dynamic-graph serving
//!   path: epoch-versioned mutations ([`Session::insert_triples`] /
//!   [`Session::remove_triples`]) with predicate-footprint cache
//!   invalidation,
//! * [`ShardedCluster`] — scatter-gather serving over N vertex-partitioned
//!   shards (one `Session` each): per-shard factorized candidate scans, one
//!   merged answer graph, one defactorization. Both it and [`Session`]
//!   implement the [`QueryExecutor`] trait, so serving layers and CLIs
//!   dispatch through `dyn QueryExecutor` and pick shardedness at runtime
//!   (`--shards N`),
//! * [`default_registry`] — the [`EngineRegistry`] with all four engines of
//!   the workspace (`wireframe`, `relational`, `sortmerge`, `exploration`),
//!   every one implementing the uniform [`Engine`] trait.
//!
//! Member crates:
//!
//! * [`api`] — the evaluator contract: [`Engine`], [`Evaluation`],
//!   [`PreparedQuery`], [`EngineRegistry`], [`WireframeError`],
//! * [`graph`] — the in-memory RDF triple store and statistics catalog,
//! * [`query`] — the conjunctive-query model and SPARQL-fragment parser,
//! * [`core`] — the answer-graph engine (the paper's contribution),
//! * [`baseline`] — non-factorized reference engines,
//! * [`datagen`] — synthetic YAGO-like data and the query miner.
//!
//! ## Quickstart
//!
//! ```
//! use wireframe::graph::GraphBuilder;
//! use wireframe::Session;
//!
//! let mut b = GraphBuilder::new();
//! b.add("alice", "knows", "bob");
//! b.add("bob", "knows", "carol");
//! let session = Session::new(b.build());
//!
//! let result = session
//!     .query("SELECT ?x ?y ?z WHERE { ?x :knows ?y . ?y :knows ?z . }")
//!     .unwrap();
//! assert_eq!(result.embedding_count(), 1);
//! assert!(result.factorized.is_some(), "the default engine factorizes");
//! ```
//!
//! ## Comparing engines
//!
//! Every engine answers through the same [`Engine`] trait, so comparing the
//! factorized evaluator against a baseline is a loop, not a dispatch tree:
//!
//! ```
//! use wireframe::api::EngineConfig;
//! use wireframe::graph::GraphBuilder;
//! use wireframe::query::parse_query;
//!
//! let mut b = GraphBuilder::new();
//! b.add("alice", "knows", "bob");
//! let g = b.build();
//! let q = parse_query("SELECT * WHERE { ?x :knows ?y . }", g.dictionary()).unwrap();
//!
//! let registry = wireframe::default_registry();
//! let mut answers = Vec::new();
//! for name in registry.names() {
//!     let engine = registry.build(name, &g, &EngineConfig::default()).unwrap();
//!     answers.push(engine.run(&q).unwrap().embeddings);
//! }
//! assert!(answers.windows(2).all(|w| w[0].same_answer(&w[1])));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod registry;
mod session;

pub use wireframe_api as api;
pub use wireframe_baseline as baseline;
pub use wireframe_core as core;
pub use wireframe_datagen as datagen;
pub use wireframe_graph as graph;
pub use wireframe_query as query;

pub use cluster::ShardedCluster;
pub use registry::default_registry;
pub use session::{Session, SessionConfig, DEFAULT_CACHE_CAPACITY};
pub use wireframe_api::{
    Engine, EngineConfig, EngineEntry, EngineRegistry, EpochListener, Evaluation, ExecutorStats,
    Factorized, LimitInfo, PreparedQuery, QueryExecutor, StoreKind, Timings, WireframeError,
};
pub use wireframe_graph::{EdgeDelta, Mutation, MutationOp, MutationOutcome};

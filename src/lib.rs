//! # Wireframe — answer-graph evaluation of SPARQL conjunctive queries
//!
//! This is the umbrella crate of the Wireframe workspace, a reproduction of
//! *"Answer Graph: Factorization Matters in Large Graphs"* (EDBT 2021).
//! It re-exports the public API of the member crates so that examples and
//! downstream users can depend on a single crate:
//!
//! * [`graph`] — the in-memory RDF triple store and statistics catalog,
//! * [`query`] — the conjunctive-query model and SPARQL-fragment parser,
//! * [`core`] — the answer-graph engine (the paper's contribution),
//! * [`baseline`] — non-factorized reference engines,
//! * [`datagen`] — synthetic YAGO-like data and the query miner.
//!
//! ## Quickstart
//!
//! ```
//! use wireframe::graph::GraphBuilder;
//! use wireframe::query::parse_query;
//! use wireframe::core::WireframeEngine;
//!
//! let mut b = GraphBuilder::new();
//! b.add("alice", "knows", "bob");
//! b.add("bob", "knows", "carol");
//! let g = b.build();
//!
//! let q = parse_query("SELECT ?x ?y ?z WHERE { ?x :knows ?y . ?y :knows ?z . }", g.dictionary()).unwrap();
//! let engine = WireframeEngine::new(&g);
//! let result = engine.execute(&q).unwrap();
//! assert_eq!(result.embeddings().len(), 1);
//! ```

pub use wireframe_baseline as baseline;
pub use wireframe_core as core;
pub use wireframe_datagen as datagen;
pub use wireframe_graph as graph;
pub use wireframe_query as query;

//! Storage-backend equivalence: the CSR store and the edge-map store must be
//! observationally identical — same neighbor sets, same membership answers,
//! same statistics, and byte-identical evaluation results across the full
//! engine registry × workload matrix.
//!
//! Two layers of coverage:
//!
//! 1. A property test over random graphs (seeded shim PRNG, like
//!    `property_equivalence.rs`): every `GraphStore` access path agrees
//!    between the two backends, up to the documented ordering difference
//!    (the edge-map's neighbor lists and scans are unsorted).
//! 2. The full registry × workload matrix on the benchmark dataset family:
//!    every engine returns the same answer on both stores, with identical
//!    embedding counts and (for the wireframe engine) identical answer-graph
//!    sizes.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wireframe::datagen::{full_workload, generate, YagoConfig};
use wireframe::graph::{Graph, GraphBuilder, NodeId, PredId, StoreKind};
use wireframe::Session;

const LABELS: [&str; 5] = ["A", "B", "C", "D", "E"];
const CASES: u64 = 32;

fn gen_edges(rng: &mut SmallRng) -> Vec<(u32, usize, u32)> {
    let nodes = rng.gen_range(2..40u32);
    let edges = rng.gen_range(1..200usize);
    (0..edges)
        .map(|_| {
            (
                rng.gen_range(0..nodes),
                rng.gen_range(0..LABELS.len()),
                rng.gen_range(0..nodes),
            )
        })
        .collect()
}

fn build(edges: &[(u32, usize, u32)], kind: StoreKind) -> Graph {
    let mut b = GraphBuilder::new();
    for l in LABELS {
        b.intern_predicate(l);
    }
    for &(s, p, o) in edges {
        b.add(&format!("n{s}"), LABELS[p], &format!("n{o}"));
    }
    b.build_with_store(kind)
}

fn sorted(mut v: Vec<NodeId>) -> Vec<NodeId> {
    v.sort_unstable();
    v
}

#[test]
fn stores_expose_identical_access_paths_on_random_graphs() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x57AB + seed);
        let edges = gen_edges(&mut rng);
        let csr = build(&edges, StoreKind::Csr);
        let map = build(&edges, StoreKind::Map);

        assert_eq!(csr.triple_count(), map.triple_count(), "seed {seed}");
        assert_eq!(csr.node_count(), map.node_count(), "seed {seed}");
        assert!(csr.neighbors_sorted() && !map.neighbors_sorted());

        for p in 0..csr.predicate_count() {
            let p = PredId(p as u32);
            assert_eq!(
                csr.predicate_cardinality(p),
                map.predicate_cardinality(p),
                "seed {seed}"
            );
            // Scans agree as sets (the edge-map assembles its scan from hash
            // maps, so only the contents are specified).
            let mut map_pairs = map.pairs(p).into_owned();
            map_pairs.sort_unstable();
            assert_eq!(csr.pairs(p).as_ref(), map_pairs.as_slice(), "seed {seed}");

            // Per-node adjacency, degrees, and membership agree everywhere
            // (including out-of-range probes).
            for n in 0..csr.node_count() as u32 + 2 {
                let n = NodeId(n);
                assert_eq!(
                    csr.objects_of(p, n).to_vec(),
                    sorted(map.objects_of(p, n).to_vec()),
                    "seed {seed}"
                );
                assert_eq!(
                    csr.subjects_of(p, n).to_vec(),
                    sorted(map.subjects_of(p, n).to_vec()),
                    "seed {seed}"
                );
                assert_eq!(csr.out_degree(p, n), map.out_degree(p, n));
                assert_eq!(csr.in_degree(p, n), map.in_degree(p, n));
                for o in csr.objects_of(p, n).to_vec() {
                    assert!(map.has_triple(n, p, o), "seed {seed}");
                }
            }

            // The statistics catalog is layout-independent.
            assert_eq!(csr.catalog().unigram(p), map.catalog().unigram(p));
            assert_eq!(
                csr.store().distinct_subjects(p),
                map.store().distinct_subjects(p)
            );
            assert_eq!(csr.store().max_out_degree(p), map.store().max_out_degree(p));
            assert_eq!(csr.store().max_in_degree(p), map.store().max_in_degree(p));
        }

        // Re-indexing round-trips.
        let back = build(&edges, StoreKind::Map).with_store(StoreKind::Csr);
        for p in 0..csr.predicate_count() {
            let p = PredId(p as u32);
            assert_eq!(csr.pairs(p), back.pairs(p), "seed {seed}");
        }
    }
}

#[test]
fn every_engine_answers_identically_on_both_stores() {
    let csr = Arc::new(generate(&YagoConfig::tiny()).with_store(StoreKind::Csr));
    let map = Arc::new(generate(&YagoConfig::tiny()).with_store(StoreKind::Map));
    let workload = full_workload(&csr).unwrap();

    let mut csr_session = Session::shared(Arc::clone(&csr));
    let mut map_session = Session::shared(Arc::clone(&map));
    assert_eq!(csr_session.store_kind(), StoreKind::Csr);
    assert_eq!(map_session.store_kind(), StoreKind::Map);

    let engines: Vec<&str> = csr_session.registry().names();
    for engine in engines {
        csr_session.set_engine(engine).unwrap();
        map_session.set_engine(engine).unwrap();
        for bq in &workload {
            let on_csr = csr_session.execute(&bq.query).unwrap();
            let on_map = map_session.execute(&bq.query).unwrap();
            assert_eq!(
                on_csr.embedding_count(),
                on_map.embedding_count(),
                "{engine}/{}: embedding counts differ across stores",
                bq.name
            );
            assert_eq!(
                on_csr.answer_graph_size(),
                on_map.answer_graph_size(),
                "{engine}/{}: |AG| differs across stores",
                bq.name
            );
            assert!(
                on_csr.embeddings().same_answer(on_map.embeddings()),
                "{engine}/{}: answers differ across stores",
                bq.name
            );
        }
    }
}

#[test]
fn random_queries_agree_across_stores_through_the_wireframe_engine() {
    use wireframe::core::WireframeEngine;
    use wireframe::query::CqBuilder;

    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC5A + seed);
        let edges = gen_edges(&mut rng);
        let csr = build(&edges, StoreKind::Csr);
        let map = build(&edges, StoreKind::Map);

        // A random connected chain query over the label alphabet.
        let len = rng.gen_range(1..4usize);
        let mut qb = CqBuilder::new(csr.dictionary());
        for i in 0..len {
            let l = LABELS[rng.gen_range(0..LABELS.len())];
            qb.pattern(&format!("?v{i}"), l, &format!("?v{}", i + 1))
                .unwrap();
        }
        let q = qb.build().unwrap();

        let on_csr = WireframeEngine::new(&csr).execute(&q).unwrap();
        let on_map = WireframeEngine::new(&map).execute(&q).unwrap();
        assert_eq!(
            on_csr.embedding_count(),
            on_map.embedding_count(),
            "seed {seed}"
        );
        assert_eq!(
            on_csr.answer_graph_size(),
            on_map.answer_graph_size(),
            "seed {seed}"
        );
        assert!(
            on_csr.embeddings().same_answer(on_map.embeddings()),
            "seed {seed}"
        );
    }
}

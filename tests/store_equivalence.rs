//! Storage-backend equivalence: the CSR, edge-map, and delta stores must be
//! observationally identical — same neighbor sets, same membership answers,
//! same statistics, and byte-identical evaluation results across the full
//! engine registry × workload matrix.
//!
//! Three layers of coverage:
//!
//! 1. A property test over random graphs (seeded shim PRNG, like
//!    `property_equivalence.rs`): every `GraphStore` access path agrees
//!    between the backends, up to the documented ordering difference
//!    (the edge-map's neighbor lists and scans are unsorted).
//! 2. A **churn** property test: after seeded random insert/remove batches
//!    (with and without forced compaction cycles), a mutated delta graph
//!    must equal a fresh CSR build of the final triple set on every access
//!    path and statistic.
//! 3. The full registry × workload matrix on the benchmark dataset family:
//!    every engine returns the same answer on all three stores — including
//!    after seeded churn with at least one compaction — with identical
//!    embedding counts and (for the wireframe engine) identical answer-graph
//!    sizes.

use std::collections::BTreeSet;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wireframe::datagen::{full_workload, generate, YagoConfig};
use wireframe::graph::{Graph, GraphBuilder, Mutation, NodeId, PredId, StoreKind};
use wireframe::Session;

const LABELS: [&str; 5] = ["A", "B", "C", "D", "E"];
const CASES: u64 = 32;

fn gen_edges(rng: &mut SmallRng) -> Vec<(u32, usize, u32)> {
    let nodes = rng.gen_range(2..40u32);
    let edges = rng.gen_range(1..200usize);
    (0..edges)
        .map(|_| {
            (
                rng.gen_range(0..nodes),
                rng.gen_range(0..LABELS.len()),
                rng.gen_range(0..nodes),
            )
        })
        .collect()
}

fn build(edges: &[(u32, usize, u32)], kind: StoreKind) -> Graph {
    let mut b = GraphBuilder::new();
    for l in LABELS {
        b.intern_predicate(l);
    }
    for &(s, p, o) in edges {
        b.add(&format!("n{s}"), LABELS[p], &format!("n{o}"));
    }
    b.build_with_store(kind)
}

fn sorted(mut v: Vec<NodeId>) -> Vec<NodeId> {
    v.sort_unstable();
    v
}

#[test]
fn stores_expose_identical_access_paths_on_random_graphs() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x57AB + seed);
        let edges = gen_edges(&mut rng);
        let csr = build(&edges, StoreKind::Csr);
        let map = build(&edges, StoreKind::Map);

        assert_eq!(csr.triple_count(), map.triple_count(), "seed {seed}");
        assert_eq!(csr.node_count(), map.node_count(), "seed {seed}");
        assert!(csr.neighbors_sorted() && !map.neighbors_sorted());

        for p in 0..csr.predicate_count() {
            let p = PredId(p as u32);
            assert_eq!(
                csr.predicate_cardinality(p),
                map.predicate_cardinality(p),
                "seed {seed}"
            );
            // Scans agree as sets (the edge-map assembles its scan from hash
            // maps, so only the contents are specified).
            let mut map_pairs = map.pairs(p).into_owned();
            map_pairs.sort_unstable();
            assert_eq!(csr.pairs(p).as_ref(), map_pairs.as_slice(), "seed {seed}");

            // Per-node adjacency, degrees, and membership agree everywhere
            // (including out-of-range probes).
            for n in 0..csr.node_count() as u32 + 2 {
                let n = NodeId(n);
                assert_eq!(
                    csr.objects_of(p, n).to_vec(),
                    sorted(map.objects_of(p, n).to_vec()),
                    "seed {seed}"
                );
                assert_eq!(
                    csr.subjects_of(p, n).to_vec(),
                    sorted(map.subjects_of(p, n).to_vec()),
                    "seed {seed}"
                );
                assert_eq!(csr.out_degree(p, n), map.out_degree(p, n));
                assert_eq!(csr.in_degree(p, n), map.in_degree(p, n));
                for o in csr.objects_of(p, n).to_vec() {
                    assert!(map.has_triple(n, p, o), "seed {seed}");
                }
            }

            // The statistics catalog is layout-independent.
            assert_eq!(csr.catalog().unigram(p), map.catalog().unigram(p));
            assert_eq!(
                csr.store().distinct_subjects(p),
                map.store().distinct_subjects(p)
            );
            assert_eq!(csr.store().max_out_degree(p), map.store().max_out_degree(p));
            assert_eq!(csr.store().max_in_degree(p), map.store().max_in_degree(p));
        }

        // Re-indexing round-trips.
        let back = build(&edges, StoreKind::Map).with_store(StoreKind::Csr);
        for p in 0..csr.predicate_count() {
            let p = PredId(p as u32);
            assert_eq!(csr.pairs(p), back.pairs(p), "seed {seed}");
        }
    }
}

/// Runs the full registry × workload matrix over a list of graphs that hold
/// the same triples (sharing one dictionary) and asserts identical answers
/// everywhere.
fn assert_matrix_agrees(graphs: &[(&str, Arc<Graph>)], context: &str) {
    let workload = full_workload(&graphs[0].1).unwrap();
    let mut sessions: Vec<(&str, Session)> = graphs
        .iter()
        .map(|(name, g)| (*name, Session::shared(Arc::clone(g))))
        .collect();
    let engines: Vec<&str> = sessions[0].1.registry().names();
    for engine in engines {
        for (_, session) in &mut sessions {
            session.set_engine(engine).unwrap();
        }
        for bq in &workload {
            let reference = sessions[0].1.execute(&bq.query).unwrap();
            for (store_name, session) in &sessions[1..] {
                let answer = session.execute(&bq.query).unwrap();
                assert_eq!(
                    reference.embedding_count(),
                    answer.embedding_count(),
                    "{context}: {engine}/{} embedding counts differ on {store_name}",
                    bq.name
                );
                assert_eq!(
                    reference.answer_graph_size(),
                    answer.answer_graph_size(),
                    "{context}: {engine}/{} |AG| differs on {store_name}",
                    bq.name
                );
                assert!(
                    reference.embeddings().same_answer(answer.embeddings()),
                    "{context}: {engine}/{} answers differ on {store_name}",
                    bq.name
                );
            }
        }
    }
}

#[test]
fn every_engine_answers_identically_on_every_store() {
    let csr = Arc::new(generate(&YagoConfig::tiny()).with_store(StoreKind::Csr));
    let map = Arc::new(generate(&YagoConfig::tiny()).with_store(StoreKind::Map));
    let delta = Arc::new(generate(&YagoConfig::tiny()).with_store(StoreKind::Delta));
    assert_eq!(map.store_kind(), StoreKind::Map);
    assert_eq!(delta.store_kind(), StoreKind::Delta);
    assert_matrix_agrees(
        &[("csr", csr), ("map", map), ("delta", delta)],
        "static matrix",
    );
}

/// A seeded mutation batch over the graph's current triples: removals sample
/// live triples, insertions mix revived/fresh edges over the known labels
/// (plus the occasional brand-new node).
fn random_batch(graph: &Graph, rng: &mut SmallRng, size: usize, fresh_tag: &mut usize) -> Mutation {
    let dict = graph.dictionary();
    let live: Vec<_> = graph.triples().collect();
    let mut mutation = Mutation::new();
    for _ in 0..size {
        if !live.is_empty() && rng.gen_range(0..10u32) < 4 {
            let t = live[rng.gen_range(0..live.len())];
            mutation = mutation.remove(
                dict.node_label(t.subject).unwrap(),
                dict.predicate_label(t.predicate).unwrap(),
                dict.node_label(t.object).unwrap(),
            );
        } else {
            let p = rng.gen_range(0..graph.predicate_count());
            let p = dict.predicate_label(PredId(p as u32)).unwrap().to_owned();
            let s = if rng.gen_range(0..8u32) == 0 {
                *fresh_tag += 1;
                format!("fresh{fresh_tag}")
            } else {
                dict.node_label(NodeId(rng.gen_range(0..graph.node_count() as u32)))
                    .unwrap()
                    .to_owned()
            };
            let o = dict
                .node_label(NodeId(rng.gen_range(0..graph.node_count() as u32)))
                .unwrap()
                .to_owned();
            mutation = mutation.insert(&s, &p, &o);
        }
    }
    mutation
}

/// Rebuilds the graph's final triple set on another backend, reusing the
/// dictionary so identifiers (and therefore answers) stay comparable.
fn rebuild_as(graph: &Graph, kind: StoreKind) -> Graph {
    let mut b = GraphBuilder::with_dictionary(graph.dictionary().clone());
    for t in graph.triples() {
        b.add_encoded(t.subject, t.predicate, t.object);
    }
    b.build_with_store(kind)
}

#[test]
fn delta_store_equals_a_fresh_csr_after_seeded_churn() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC4A2 + seed);
        let edges = gen_edges(&mut rng);
        // Even seeds compact eagerly (every batch crosses the threshold);
        // odd seeds never compact, so the overlay path itself is exercised.
        let threshold = if seed % 2 == 0 { 0.01 } else { 1e9 };
        let mut delta = build(&edges, StoreKind::Delta).with_compaction_threshold(threshold);
        let mut compactions = 0usize;
        let mut fresh_tag = 0usize;
        for _ in 0..4 {
            let mutation = random_batch(&delta, &mut rng, 30, &mut fresh_tag);
            let (next, outcome) = delta.apply(&mutation);
            compactions += outcome.compacted as usize;
            delta = next;
        }
        if seed % 2 == 0 {
            assert!(compactions >= 1, "seed {seed}: eager threshold compacts");
        } else {
            assert_eq!(compactions, 0, "seed {seed}: huge threshold never does");
        }

        // The mutated delta graph must equal a fresh CSR build of the final
        // triple set on every access path and statistic.
        let fresh = rebuild_as(&delta, StoreKind::Csr);
        assert_eq!(delta.triple_count(), fresh.triple_count(), "seed {seed}");
        assert_eq!(delta.node_count(), fresh.node_count(), "seed {seed}");
        assert!(delta.neighbors_sorted(), "seed {seed}");
        for p in 0..fresh.predicate_count() {
            let p = PredId(p as u32);
            assert_eq!(
                delta.predicate_cardinality(p),
                fresh.predicate_cardinality(p),
                "seed {seed}"
            );
            assert_eq!(delta.pairs(p), fresh.pairs(p), "seed {seed}");
            assert_eq!(
                delta.catalog().unigram(p),
                fresh.catalog().unigram(p),
                "seed {seed}: exact statistics after churn"
            );
            for n in 0..fresh.node_count() as u32 + 2 {
                let n = NodeId(n);
                assert_eq!(
                    delta.objects_of(p, n),
                    fresh.objects_of(p, n),
                    "seed {seed}"
                );
                assert_eq!(
                    delta.subjects_of(p, n),
                    fresh.subjects_of(p, n),
                    "seed {seed}"
                );
                for &o in fresh.objects_of(p, n) {
                    assert!(delta.has_triple(n, p, o), "seed {seed}");
                }
            }
        }

        // And the set semantics match an independent reference model.
        let mut reference: BTreeSet<(String, String, String)> = BTreeSet::new();
        for t in fresh.triples() {
            let d = fresh.dictionary();
            reference.insert((
                d.node_label(t.subject).unwrap().to_owned(),
                d.predicate_label(t.predicate).unwrap().to_owned(),
                d.node_label(t.object).unwrap().to_owned(),
            ));
        }
        assert_eq!(reference.len(), delta.triple_count(), "seed {seed}");
    }
}

#[test]
fn registry_workload_matrix_agrees_on_every_store_after_churn() {
    let mut delta = generate(&YagoConfig::tiny())
        .with_store(StoreKind::Delta)
        .with_compaction_threshold(0.01);
    let mut rng = SmallRng::seed_from_u64(0xD31A);
    let mut compactions = 0usize;
    let mut fresh_tag = 0usize;
    for _ in 0..5 {
        let mutation = random_batch(&delta, &mut rng, 60, &mut fresh_tag);
        let (next, outcome) = delta.apply(&mutation);
        compactions += outcome.compacted as usize;
        delta = next;
    }
    assert!(compactions >= 1, "the churn includes a compaction cycle");

    let csr = Arc::new(rebuild_as(&delta, StoreKind::Csr));
    let map = Arc::new(rebuild_as(&delta, StoreKind::Map));
    assert_matrix_agrees(
        &[("csr", csr), ("map", map), ("delta", Arc::new(delta))],
        "post-churn matrix",
    );
}

/// The incremental-maintenance equivalence property: after **every** seeded
/// mutation batch, a maintained `MaterializedQuery`'s answer graph — pattern
/// edges, variable node sets, *and* the embeddings defactorized from it —
/// must be identical to a from-scratch evaluation on the mutated graph.
/// Exercised on all three storage backends; on the delta store both with a
/// forced compaction cycle (even seeds) and on the pure-overlay path (odd
/// seeds).
#[test]
fn maintained_views_equal_fresh_evaluation_on_every_store() {
    use wireframe::core::{MaterializedQuery, WireframeEngine};
    use wireframe::query::{ConjunctiveQuery, CqBuilder};

    fn chain(graph: &Graph, labels: &[&str]) -> ConjunctiveQuery {
        let mut qb = CqBuilder::new(graph.dictionary());
        for (i, l) in labels.iter().enumerate() {
            qb.pattern(&format!("?v{i}"), l, &format!("?v{}", i + 1))
                .unwrap();
        }
        qb.build().unwrap()
    }

    fn two_cycle(graph: &Graph) -> ConjunctiveQuery {
        let mut qb = CqBuilder::new(graph.dictionary());
        qb.pattern("?a", "A", "?b").unwrap();
        qb.pattern("?b", "B", "?a").unwrap();
        qb.build().unwrap()
    }

    fn assert_view_matches_fresh(
        view: &MaterializedQuery,
        graph: &Graph,
        query: &ConjunctiveQuery,
        context: &str,
    ) {
        let fresh = WireframeEngine::new(graph).execute(query).unwrap();
        for q in 0..query.num_patterns() {
            let mut maintained: Vec<_> = view.answer_graph().pattern(q).iter().collect();
            let mut scratch: Vec<_> = fresh.answer_graph().pattern(q).iter().collect();
            maintained.sort_unstable();
            scratch.sort_unstable();
            assert_eq!(maintained, scratch, "{context}: pattern {q} edges");
        }
        for v in query.variables() {
            assert_eq!(
                view.answer_graph().node_set(v).to_sorted_vec(),
                fresh.answer_graph().node_set(v).to_sorted_vec(),
                "{context}: node set of {v:?}"
            );
        }
        let (embeddings, _) = view.defactorize().unwrap();
        assert_eq!(
            embeddings.len(),
            fresh.embedding_count(),
            "{context}: embedding counts"
        );
        assert!(
            embeddings.same_answer(fresh.embeddings()),
            "{context}: defactorized embeddings"
        );
    }

    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(0x11A1 + seed);
        let edges = gen_edges(&mut rng);
        for kind in [StoreKind::Csr, StoreKind::Map, StoreKind::Delta] {
            let mut graph = build(&edges, kind);
            if kind == StoreKind::Delta {
                // Even seeds force a compaction cycle mid-churn; odd seeds
                // stay on the overlay, so maintenance sees both shapes.
                let threshold = if seed % 2 == 0 { 0.01 } else { 1e9 };
                graph = graph.with_compaction_threshold(threshold);
            }
            let queries = vec![
                chain(&graph, &["A", "B"]),
                chain(&graph, &["C", "D", "E"]),
                two_cycle(&graph),
            ];
            let mut views: Vec<MaterializedQuery> = queries
                .iter()
                .map(|q| WireframeEngine::new(&graph).execute(q).unwrap().into_view())
                .collect();

            let mut fresh_tag = 0usize;
            let mut compactions = 0usize;
            for batch_no in 0..4u64 {
                let mutation = random_batch(&graph, &mut rng, 25, &mut fresh_tag);
                let (next, outcome) = graph.apply(&mutation);
                compactions += outcome.compacted as usize;
                graph = next;
                for (view, query) in views.iter_mut().zip(&queries) {
                    view.maintain(&graph, &outcome.delta, batch_no + 1);
                    assert_eq!(view.epoch(), batch_no + 1);
                    assert_view_matches_fresh(
                        view,
                        &graph,
                        query,
                        &format!("seed {seed} {kind:?} batch {batch_no}"),
                    );
                }
            }
            if kind == StoreKind::Delta && seed % 2 == 0 {
                assert!(
                    compactions >= 1,
                    "seed {seed}: maintenance must survive a forced compaction"
                );
            }
        }
    }
}

/// The worst-case-optimal engine's acceptance property on cyclic shapes:
/// on triangles and directed 4-cycles, its embeddings are bit-identical to
/// the triangulating wireframe configuration on every storage backend, and
/// a maintained [`wireframe::core::WcoView`] keeps that equality after
/// every seeded mutation batch (compared against both a fresh wco run and
/// fresh triangulation on the mutated graph).
#[test]
fn wco_matches_triangulation_on_cyclic_shapes_and_survives_churn() {
    use wireframe::api::Engine;
    use wireframe::core::{EvalOptions, WcoEngine, WcoView, WireframeEngine};
    use wireframe::query::templates::cycle;

    for seed in 0..8u64 {
        let mut rng = SmallRng::seed_from_u64(0x77C0 + seed);
        let edges = gen_edges(&mut rng);
        for kind in [StoreKind::Csr, StoreKind::Map, StoreKind::Delta] {
            let mut graph = build(&edges, kind);
            let queries = vec![
                cycle(graph.dictionary(), &["A", "B", "C"]).unwrap(),
                cycle(graph.dictionary(), &["A", "B", "C", "D"]).unwrap(),
            ];

            let triangulated = |graph: &Graph, q: &_| {
                WireframeEngine::with_options(graph, EvalOptions::default().with_edge_burnback())
                    .execute(q)
                    .unwrap()
            };

            let mut views: Vec<WcoView> = Vec::new();
            for q in &queries {
                let wco = WcoEngine::new(&graph);
                let plan = wco.plan(q).unwrap();
                let (view, _) = wco.materialize_query(q, &plan);
                let (embeddings, _) = view.defactorize().unwrap();
                let reference = triangulated(&graph, q);
                assert_eq!(
                    embeddings.len(),
                    reference.embedding_count(),
                    "seed {seed} {kind:?}: wco vs triangulation counts pre-churn"
                );
                assert!(
                    embeddings.same_answer(reference.embeddings()),
                    "seed {seed} {kind:?}: wco vs triangulation pre-churn"
                );
                views.push(view);
            }

            let mut fresh_tag = 0usize;
            for batch_no in 0..4u64 {
                let mutation = random_batch(&graph, &mut rng, 25, &mut fresh_tag);
                let (next, outcome) = graph.apply(&mutation);
                graph = next;
                for (view, q) in views.iter_mut().zip(&queries) {
                    view.maintain(&graph, &outcome.delta, batch_no + 1);
                    let (maintained, _) = view.defactorize().unwrap();
                    let fresh = WcoEngine::new(&graph).run(q).unwrap();
                    assert!(
                        maintained.same_answer(fresh.embeddings()),
                        "seed {seed} {kind:?} batch {batch_no}: \
                         maintained wco view vs fresh wco run"
                    );
                    let reference = triangulated(&graph, q);
                    assert!(
                        maintained.same_answer(reference.embeddings()),
                        "seed {seed} {kind:?} batch {batch_no}: \
                         maintained wco view vs fresh triangulation"
                    );
                }
            }
        }
    }
}

#[test]
fn random_queries_agree_across_stores_through_the_wireframe_engine() {
    use wireframe::core::WireframeEngine;
    use wireframe::query::CqBuilder;

    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC5A + seed);
        let edges = gen_edges(&mut rng);
        let csr = build(&edges, StoreKind::Csr);
        let map = build(&edges, StoreKind::Map);

        // A random connected chain query over the label alphabet.
        let len = rng.gen_range(1..4usize);
        let mut qb = CqBuilder::new(csr.dictionary());
        for i in 0..len {
            let l = LABELS[rng.gen_range(0..LABELS.len())];
            qb.pattern(&format!("?v{i}"), l, &format!("?v{}", i + 1))
                .unwrap();
        }
        let q = qb.build().unwrap();

        let on_csr = WireframeEngine::new(&csr).execute(&q).unwrap();
        let on_map = WireframeEngine::new(&map).execute(&q).unwrap();
        assert_eq!(
            on_csr.embedding_count(),
            on_map.embedding_count(),
            "seed {seed}"
        );
        assert_eq!(
            on_csr.answer_graph_size(),
            on_map.answer_graph_size(),
            "seed {seed}"
        );
        assert!(
            on_csr.embeddings().same_answer(on_map.embeddings()),
            "seed {seed}"
        );
    }
}

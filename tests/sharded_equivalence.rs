//! Cross-shard equivalence property: a [`ShardedCluster`] answers every
//! query bit-identically to an unsharded [`Session`] over the same graph —
//! on the pristine graph and after every seeded mutation batch — across
//! seeded graph instances × the full generated workload × shard counts
//! {1, 2, 4}.
//!
//! This is the acceptance property of the scatter-gather design: the union
//! of per-shard candidate edges followed by a single global node burnback
//! reaches the same greatest fixpoint as evaluating the whole graph in one
//! piece, so sharding must never be observable in an answer (embeddings,
//! answer-graph size) — only in the epoch vector stamped on evaluations.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wireframe::datagen::{full_workload, generate, BenchmarkQuery, YagoConfig};
use wireframe::graph::{Graph, NodeId};
use wireframe::{Mutation, QueryExecutor, Session, SessionConfig, ShardedCluster};

/// Seeded mutation batches applied per (graph, shard-count) combination.
const BATCHES: u64 = 3;
/// Operations per batch.
const BATCH_OPS: usize = 32;

/// Draws a deterministic mutation batch against the current graph: mostly
/// inserts (a quarter with fresh subjects, so the cluster's cross-shard
/// dictionary alignment is on the verified path), the rest removals of
/// triples actually present.
fn seeded_batch(graph: &Graph, seed: u64) -> Mutation {
    let dict = graph.dictionary();
    let predicates: Vec<String> = dict
        .predicates()
        .map(|(_, label)| label.to_owned())
        .collect();
    let nodes: Vec<String> = (0..graph.node_count().min(512))
        .map(|i| dict.node_label(NodeId(i as u32)).unwrap_or("?").to_owned())
        .collect();
    let removable: Vec<(String, String, String)> = graph
        .triples()
        .take(BATCH_OPS)
        .map(|t| {
            (
                dict.node_label(t.subject).unwrap_or("?").to_owned(),
                dict.predicate_label(t.predicate).unwrap_or("?").to_owned(),
                dict.node_label(t.object).unwrap_or("?").to_owned(),
            )
        })
        .collect();

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut mutation = Mutation::new();
    let mut removed = 0usize;
    let mut fresh = 0usize;
    for _ in 0..BATCH_OPS {
        if removed < removable.len() && rng.gen_range(0..4usize) == 0 {
            let (s, p, o) = &removable[removed];
            removed += 1;
            mutation = mutation.remove(s, p, o);
        } else {
            let p = &predicates[rng.gen_range(0..predicates.len())];
            let o = &nodes[rng.gen_range(0..nodes.len())];
            let s = if rng.gen_range(0..4usize) == 0 {
                fresh += 1;
                format!("equiv_n{seed}_{fresh}")
            } else {
                nodes[rng.gen_range(0..nodes.len())].clone()
            };
            mutation = mutation.insert(&s, p, o);
        }
    }
    mutation
}

/// Asserts the cluster answers the whole workload exactly like the
/// reference: equal counts, bit-identical embedding sets, equal
/// answer-graph sizes (when `compare_answer_graphs` — the wco lane skips
/// it, since its unsharded answer graph can be *tighter* than the merged
/// greatest fixpoint), and a correctly shaped epoch vector.
fn assert_equivalent(
    reference: &Session,
    cluster: &ShardedCluster,
    workload: &[BenchmarkQuery],
    shards: usize,
    compare_answer_graphs: bool,
    when: &str,
) {
    for bq in workload {
        let expected = reference.execute(&bq.query).unwrap();
        let sharded = cluster.execute(&bq.query).unwrap();
        assert_eq!(
            expected.embedding_count(),
            sharded.embedding_count(),
            "{} ({when}, {shards} shards): embedding counts diverge",
            bq.name
        );
        assert!(
            expected.embeddings().same_answer(sharded.embeddings()),
            "{} ({when}, {shards} shards): embedding sets diverge",
            bq.name
        );
        if compare_answer_graphs {
            if let (Some(expect), Some(got)) = (&expected.factorized, &sharded.factorized) {
                assert_eq!(
                    expect.answer_graph_edges, got.answer_graph_edges,
                    "{} ({when}, {shards} shards): answer-graph sizes diverge",
                    bq.name
                );
            }
        }
        assert_eq!(
            sharded.epochs.len(),
            shards + 1,
            "{} ({when}): one epoch per shard plus the cluster epoch",
            bq.name
        );
        assert_eq!(
            expected.epochs,
            vec![expected.epoch()],
            "{} ({when}): unsharded epoch vector is the scalar epoch",
            bq.name
        );
    }
}

#[test]
fn sharded_answers_match_unsharded_across_graphs_shards_and_churn() {
    for graph_seed in [3u64, 11] {
        let config = YagoConfig {
            seed: graph_seed,
            ..YagoConfig::tiny()
        };
        let graph = Arc::new(generate(&config));
        let workload = full_workload(&graph).unwrap();
        for shards in [1usize, 2, 4] {
            let reference = Session::shared(Arc::clone(&graph));
            let cluster =
                ShardedCluster::new(Arc::clone(&graph), shards, SessionConfig::new()).unwrap();
            assert_equivalent(&reference, &cluster, &workload, shards, true, "pre-churn");

            for batch_idx in 0..BATCHES {
                let batch = seeded_batch(&reference.graph(), graph_seed * 1000 + batch_idx);
                let ref_outcome = reference.apply_mutation(&batch);
                let cl_outcome = cluster.apply_mutation(&batch);
                assert_eq!(
                    (ref_outcome.inserted, ref_outcome.removed),
                    (cl_outcome.inserted, cl_outcome.removed),
                    "batch {batch_idx} ({shards} shards): mutation totals diverge"
                );
                // The cluster's scalar epoch counts batches; a shard's own
                // epoch advances only when the router sent it operations.
                assert_eq!(cluster.epoch(), batch_idx + 1);
                let vector = cluster.epoch_vector();
                assert_eq!(vector.len(), shards);
                assert!(
                    vector.iter().all(|&e| e <= batch_idx + 1),
                    "no shard can be ahead of the cluster: {vector:?}"
                );
                assert_equivalent(
                    &reference,
                    &cluster,
                    &workload,
                    shards,
                    true,
                    &format!("after batch {batch_idx}"),
                );
            }
        }
    }
}

#[test]
fn wco_sharded_answers_match_unsharded_across_churn() {
    // Same property through the worst-case-optimal engine (its
    // `sharded_merge` capability admits it to the cluster): embeddings
    // stay bit-identical to the unsharded wco session across churn. The
    // answer-graph sizes are *not* compared — the merged artifact is the
    // node-burnback greatest fixpoint, which may strictly contain the
    // tighter answer graph the wco extension records unsharded.
    let config = YagoConfig {
        seed: 7,
        ..YagoConfig::tiny()
    };
    let graph = Arc::new(generate(&config));
    let workload = full_workload(&graph).unwrap();
    let session_config = SessionConfig::new().engine("wco");
    for shards in [2usize, 4] {
        let reference = Session::from_config(Arc::clone(&graph), session_config.clone()).unwrap();
        let cluster =
            ShardedCluster::new(Arc::clone(&graph), shards, session_config.clone()).unwrap();
        assert_eq!(cluster.engine_name(), "wco");
        assert_equivalent(&reference, &cluster, &workload, shards, false, "pre-churn");

        for batch_idx in 0..BATCHES {
            let batch = seeded_batch(&reference.graph(), 7000 + batch_idx);
            reference.apply_mutation(&batch);
            cluster.apply_mutation(&batch);
            assert_equivalent(
                &reference,
                &cluster,
                &workload,
                shards,
                false,
                &format!("after batch {batch_idx}"),
            );
        }
    }
}

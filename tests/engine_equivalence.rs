//! Cross-engine equivalence on the Table 1 workload over the synthetic
//! YAGO-like dataset: Wireframe, the relational baseline and the exploration
//! baseline must return identical answers, and the structural claims of the
//! paper (|AG| far below |Embeddings| for snowflakes, non-ideal AGs for
//! diamonds) must hold.

use wireframe::baseline::{ExplorationEngine, RelationalEngine};
use wireframe::core::{EvalOptions, PlannerKind, WireframeEngine};
use wireframe::datagen::{generate, table1_queries, YagoConfig};
use wireframe::query::Shape;

#[test]
fn all_engines_agree_on_every_table1_query() {
    let g = generate(&YagoConfig::tiny());
    let wf = WireframeEngine::new(&g);
    let rel = RelationalEngine::new(&g);
    let exp = ExplorationEngine::new(&g);

    for bq in table1_queries(&g).unwrap() {
        let w = wf.execute(&bq.query).unwrap();
        let r = rel.evaluate(&bq.query).unwrap();
        let e = exp.evaluate(&bq.query).unwrap();
        assert!(
            w.embeddings().same_answer(&r),
            "{}: wireframe and relational disagree ({} vs {})",
            bq.name,
            w.embedding_count(),
            r.len()
        );
        assert!(
            w.embeddings().same_answer(&e),
            "{}: wireframe and exploration disagree",
            bq.name
        );
        assert!(
            w.embedding_count() > 0,
            "{}: benchmark queries are non-empty",
            bq.name
        );
    }
}

#[test]
fn snowflake_answer_graphs_are_much_smaller_than_their_embeddings() {
    let g = generate(&YagoConfig::small());
    let wf = WireframeEngine::new(&g);
    for bq in table1_queries(&g).unwrap() {
        if bq.shape != Shape::Snowflake {
            continue;
        }
        let out = wf.execute(&bq.query).unwrap();
        let ag = out.answer_graph_size();
        let emb = out.embedding_count();
        assert!(
            (emb as f64) >= 2.0 * ag as f64,
            "{}: expected |Embeddings| ({emb}) to dwarf |AG| ({ag})",
            bq.name
        );
    }
}

#[test]
fn diamond_answer_graphs_shrink_under_edge_burnback() {
    // The paper observes that with node burnback only, diamond AGs can be far
    // from ideal. Edge burnback (their work in progress) must shrink them
    // without changing the answer.
    let g = generate(&YagoConfig::tiny());
    let plain = WireframeEngine::new(&g);
    let ideal = WireframeEngine::with_options(&g, EvalOptions::default().with_edge_burnback());
    let mut any_shrunk = false;
    for bq in table1_queries(&g).unwrap() {
        if bq.shape != Shape::Cycle {
            continue;
        }
        let a = plain.execute(&bq.query).unwrap();
        let b = ideal.execute(&bq.query).unwrap();
        assert!(a.embeddings().same_answer(b.embeddings()), "{}", bq.name);
        assert!(
            b.answer_graph_size() <= a.answer_graph_size(),
            "{}",
            bq.name
        );
        if b.answer_graph_size() < a.answer_graph_size() {
            any_shrunk = true;
        }
    }
    assert!(
        any_shrunk,
        "the planted near-miss edges should make at least one diamond AG non-ideal"
    );
}

#[test]
fn planner_choice_never_changes_the_answer() {
    let g = generate(&YagoConfig::tiny());
    let queries = table1_queries(&g).unwrap();
    for bq in queries.iter().take(4) {
        let mut results = Vec::new();
        for kind in [
            PlannerKind::DpLeftDeep,
            PlannerKind::Greedy,
            PlannerKind::AsWritten,
        ] {
            let engine =
                WireframeEngine::with_options(&g, EvalOptions::default().with_planner(kind));
            results.push(engine.execute(&bq.query).unwrap());
        }
        assert!(
            results[0].embeddings().same_answer(results[1].embeddings()),
            "{}",
            bq.name
        );
        assert!(
            results[0].embeddings().same_answer(results[2].embeddings()),
            "{}",
            bq.name
        );
        assert_eq!(
            results[0].answer_graph_size(),
            results[1].answer_graph_size(),
            "{}: the final AG is plan-independent",
            bq.name
        );
        assert_eq!(
            results[0].answer_graph_size(),
            results[2].answer_graph_size(),
            "{}",
            bq.name
        );
    }
}

#[test]
fn wireframe_walks_fewer_edges_than_exploration_on_snowflakes() {
    // The core claim: factorized evaluation avoids the redundant edge walks of
    // per-embedding exploration. Compare the edge-walk counters on the larger
    // synthetic dataset.
    let g = generate(&YagoConfig::small());
    let wf = WireframeEngine::new(&g);
    let exp = ExplorationEngine::new(&g);
    let mut wf_total = 0u64;
    let mut exp_total = 0u64;
    for bq in table1_queries(&g).unwrap() {
        if bq.shape != Shape::Snowflake {
            continue;
        }
        let w = wf.execute(&bq.query).unwrap();
        let (_, stats) = exp.evaluate_with_stats(&bq.query).unwrap();
        wf_total += w.generation().edge_walks;
        exp_total += stats.edge_walks;
    }
    assert!(
        wf_total < exp_total,
        "wireframe should walk fewer data edges in total ({wf_total} vs {exp_total})"
    );
}

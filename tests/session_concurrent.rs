//! Concurrent `Session` serving: many threads issuing a mix of repeated and
//! distinct queries against one shared session must produce exactly the
//! answers of a sequential run, with every issued query accounted by the
//! cache's hit/miss counters.

use std::sync::Arc;

use wireframe::datagen::{full_workload, generate, YagoConfig};
use wireframe::query::EmbeddingSet;
use wireframe::Session;

/// Two workload passes per worker, each worker starting at its own offset:
/// at any moment the workers collectively issue both identical queries
/// (hammering one cache bucket) and distinct ones (spreading over shards).
const THREADS: usize = 8;
const PASSES: usize = 2;

#[test]
fn concurrent_sessions_match_sequential_answers_and_account_every_query() {
    let graph = Arc::new(generate(&YagoConfig::tiny()));
    let workload = full_workload(&graph).unwrap();

    // Sequential reference run on its own session.
    let sequential = Session::shared(Arc::clone(&graph));
    let reference: Vec<EmbeddingSet> = workload
        .iter()
        .map(|bq| sequential.execute(&bq.query).unwrap().embeddings)
        .collect();

    let session = Arc::new(Session::shared(Arc::clone(&graph)));
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let session = Arc::clone(&session);
            let workload = &workload;
            let reference = &reference;
            scope.spawn(move || {
                for pass in 0..PASSES {
                    for step in 0..workload.len() {
                        let idx = (worker + pass + step) % workload.len();
                        let ev = session.execute(&workload[idx].query).unwrap();
                        assert!(
                            ev.embeddings().same_answer(&reference[idx]),
                            "{}: concurrent answer differs from sequential",
                            workload[idx].name
                        );
                    }
                }
            });
        }
    });

    let issued = (THREADS * PASSES * workload.len()) as u64;
    assert_eq!(
        session.cache_hits() + session.cache_misses(),
        issued,
        "every issued query is exactly one cache hit or one cache miss"
    );
    assert!(
        session.cache_hits() > 0,
        "repeated queries must hit the shared plan cache"
    );
    // Some workload queries are isomorphic to each other (e.g. two chain
    // rows share a label pair), so the expected number of distinct cached
    // plans is whatever the sequential pass cached — not the raw query count.
    assert_eq!(
        session.cached_queries(),
        sequential.cached_queries(),
        "racing preparers of the same query converge on one cached plan"
    );
}

#[test]
fn concurrent_use_spans_engines_via_per_engine_sessions() {
    // The per-engine serving pattern: one shared graph, one session per
    // engine, all sessions queried concurrently.
    let graph = Arc::new(generate(&YagoConfig::tiny()));
    let workload = full_workload(&graph).unwrap();
    let workload = &workload[..4];

    let registry = wireframe::default_registry();
    let sessions: Vec<Session> = registry
        .names()
        .iter()
        .map(|name| {
            Session::from_config(
                Arc::clone(&graph),
                wireframe::SessionConfig::new().engine(*name),
            )
            .unwrap()
        })
        .collect();

    let reference: Vec<EmbeddingSet> = workload
        .iter()
        .map(|bq| sessions[0].execute(&bq.query).unwrap().embeddings)
        .collect();

    std::thread::scope(|scope| {
        for session in &sessions {
            for (idx, bq) in workload.iter().enumerate() {
                let reference = &reference;
                scope.spawn(move || {
                    let ev = session.execute(&bq.query).unwrap();
                    assert_eq!(ev.engine, session.engine_name());
                    assert!(
                        ev.embeddings().same_answer(&reference[idx]),
                        "{} on {}: differs from the wireframe reference",
                        session.engine_name(),
                        bq.name
                    );
                });
            }
        }
    });
}

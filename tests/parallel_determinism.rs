//! Parallel defactorization determinism: for every query of the registry
//! equivalence workload, `threads = 1` and `threads = 4` must produce the
//! identical embedding set — both through the low-level defactorizer (forced
//! onto the parallel path) and end to end through the engine registry's
//! `threads` knob.

use wireframe::core::{
    defactorize_parallel, generate as generate_ag, plan, EvalOptions, ParallelOptions, PlannerKind,
};
use wireframe::datagen::{full_workload, generate, YagoConfig};
use wireframe::{default_registry, EngineConfig};

#[test]
fn low_level_parallel_defactorization_is_thread_count_invariant() {
    let g = generate(&YagoConfig::tiny());
    let workload = full_workload(&g).unwrap();
    assert_eq!(workload.len(), 20);

    for bq in &workload {
        let order = plan(&g, &bq.query, PlannerKind::DpLeftDeep).unwrap().order;
        let (ag, _) = generate_ag(&g, &bq.query, &order, &EvalOptions::default()).unwrap();

        // min_seeds_per_thread = 1 forces the parallel path even on the tiny
        // dataset, so this is a genuine multi-worker run, not the sequential
        // fallback.
        let (one, one_stats) = defactorize_parallel(
            &bq.query,
            &ag,
            &ParallelOptions {
                threads: 1,
                min_seeds_per_thread: 1,
            },
        )
        .unwrap();
        let (four, four_stats) = defactorize_parallel(
            &bq.query,
            &ag,
            &ParallelOptions {
                threads: 4,
                min_seeds_per_thread: 1,
            },
        )
        .unwrap();

        assert!(
            one.same_answer(&four),
            "{}: thread count changed the embedding set",
            bq.name
        );
        assert_eq!(
            one_stats.embeddings, four_stats.embeddings,
            "{}: phase-two statistics disagree on the embedding count",
            bq.name
        );
    }
}

#[test]
fn registry_threads_knob_is_answer_invariant_across_the_workload() {
    let g = generate(&YagoConfig::tiny());
    let registry = default_registry();
    let workload = full_workload(&g).unwrap();

    let sequential = registry
        .build("wireframe", &g, &EngineConfig::default().with_threads(1))
        .unwrap();
    let parallel = registry
        .build("wireframe", &g, &EngineConfig::default().with_threads(4))
        .unwrap();

    for bq in &workload {
        let one = sequential.run(&bq.query).unwrap();
        let four = parallel.run(&bq.query).unwrap();
        assert!(
            one.embeddings().same_answer(four.embeddings()),
            "{}: registry threads knob changed the answer",
            bq.name
        );
        assert_eq!(
            one.answer_graph_size(),
            four.answer_graph_size(),
            "{}: phase one must be untouched by the phase-two thread count",
            bq.name
        );
    }
}

//! Top-k prefix equivalence: the maintained defactorized prefix of a
//! retained view must be **bit-identical** to the first k rows of a fresh
//! full defactorization under the canonical row order — after every seeded
//! mutation batch, on every storage backend, for both engine families.
//!
//! Matrix: {csr, map, delta} × {wireframe `MaterializedQuery`, wco
//! `WcoView`} × 4 seeded mutation batches per seed. Delta graphs force a
//! compaction cycle on even seeds and stay on the pure overlay on odd
//! seeds, so prefix maintenance sees both store shapes. Wireframe views
//! carry a primed prefix and serve `O(k)`; wco views do not support
//! prefixes, so they exercise the fallback contract (full defactorization +
//! canonical truncation, same first-k bytes, `prefix_served: false`).
//!
//! The maintenance counters double as path coverage: across the matrix the
//! passes must report at least one underflow refill, and a deterministic
//! insert flood at the end must push one view over the churn threshold into
//! a full-re-enumeration fallback.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wireframe::api::{Engine, MaintainedView};
use wireframe::core::{MaterializedQuery, WcoEngine, WcoView, WireframeEngine};
use wireframe::graph::{Graph, GraphBuilder, Mutation, NodeId, PredId, StoreKind};
use wireframe::query::templates::cycle;
use wireframe::query::{ConjunctiveQuery, CqBuilder, EmbeddingSet};

const LABELS: [&str; 5] = ["A", "B", "C", "D", "E"];
const SEEDS: u64 = 10;
const BATCHES: u64 = 4;
const K: usize = 3;

fn gen_edges(rng: &mut SmallRng) -> Vec<(u32, usize, u32)> {
    let nodes = rng.gen_range(2..40u32);
    let edges = rng.gen_range(1..200usize);
    (0..edges)
        .map(|_| {
            (
                rng.gen_range(0..nodes),
                rng.gen_range(0..LABELS.len()),
                rng.gen_range(0..nodes),
            )
        })
        .collect()
}

fn build(edges: &[(u32, usize, u32)], kind: StoreKind) -> Graph {
    let mut b = GraphBuilder::new();
    for l in LABELS {
        b.intern_predicate(l);
    }
    for &(s, p, o) in edges {
        b.add(&format!("n{s}"), LABELS[p], &format!("n{o}"));
    }
    b.build_with_store(kind)
}

/// A seeded mutation batch: 40% removals of live triples, the rest
/// insertions over the known labels (occasionally onto a brand-new node).
fn random_batch(graph: &Graph, rng: &mut SmallRng, size: usize, fresh_tag: &mut usize) -> Mutation {
    let dict = graph.dictionary();
    let live: Vec<_> = graph.triples().collect();
    let mut mutation = Mutation::new();
    for _ in 0..size {
        if !live.is_empty() && rng.gen_range(0..10u32) < 4 {
            let t = live[rng.gen_range(0..live.len())];
            mutation = mutation.remove(
                dict.node_label(t.subject).unwrap(),
                dict.predicate_label(t.predicate).unwrap(),
                dict.node_label(t.object).unwrap(),
            );
        } else {
            let p = rng.gen_range(0..graph.predicate_count());
            let p = dict.predicate_label(PredId(p as u32)).unwrap().to_owned();
            let s = if rng.gen_range(0..8u32) == 0 {
                *fresh_tag += 1;
                format!("fresh{fresh_tag}")
            } else {
                dict.node_label(NodeId(rng.gen_range(0..graph.node_count() as u32)))
                    .unwrap()
                    .to_owned()
            };
            let o = dict
                .node_label(NodeId(rng.gen_range(0..graph.node_count() as u32)))
                .unwrap()
                .to_owned();
            mutation = mutation.insert(&s, &p, &o);
        }
    }
    mutation
}

fn chain(graph: &Graph, labels: &[&str]) -> ConjunctiveQuery {
    let mut qb = CqBuilder::new(graph.dictionary());
    for (i, l) in labels.iter().enumerate() {
        qb.pattern(&format!("?v{i}"), l, &format!("?v{}", i + 1))
            .unwrap();
    }
    qb.build().unwrap()
}

fn star(graph: &Graph, labels: &[&str]) -> ConjunctiveQuery {
    let mut qb = CqBuilder::new(graph.dictionary());
    for (i, l) in labels.iter().enumerate() {
        qb.pattern("?hub", l, &format!("?leaf{i}")).unwrap();
    }
    qb.build().unwrap()
}

/// Asserts that a view's bounded evaluation equals the canonical first `k`
/// rows of `fresh` byte for byte, and that the `LimitInfo` stamp tells the
/// truth about the serving path.
fn assert_first_k_matches(
    view: &dyn MaintainedView,
    fresh: &EmbeddingSet,
    k: usize,
    context: &str,
) {
    let expect = fresh.canonical_prefix(k);
    let served = view.evaluate_limited(k).unwrap();
    assert_eq!(
        served.embeddings.schema(),
        expect.schema(),
        "{context}: projection schema"
    );
    assert_eq!(
        served.embeddings.flat_data(),
        expect.flat_data(),
        "{context}: first-{k} rows must be bit-identical to fresh evaluation"
    );
    let info = served.limited.expect("bounded evaluations carry LimitInfo");
    assert_eq!(info.limit, k, "{context}");
    assert_eq!(
        info.prefix_served,
        view.can_prefix_serve(k),
        "{context}: the serving-path stamp matches the prefix state"
    );
    assert_eq!(
        info.truncated,
        fresh.len() > k,
        "{context}: truncation reflects the full answer size"
    );
}

#[test]
fn maintained_prefixes_equal_fresh_first_k_on_every_store_and_engine() {
    let mut total_refills = 0usize;
    let mut total_fallbacks = 0usize;

    for seed in 0..SEEDS {
        let mut rng = SmallRng::seed_from_u64(0x70_9C + seed);
        let edges = gen_edges(&mut rng);
        for kind in [StoreKind::Csr, StoreKind::Map, StoreKind::Delta] {
            let mut graph = build(&edges, kind);
            if kind == StoreKind::Delta {
                // Even seeds force compaction cycles mid-churn; odd seeds
                // keep the pure overlay path.
                let threshold = if seed % 2 == 0 { 0.01 } else { 1e9 };
                graph = graph.with_compaction_threshold(threshold);
            }

            // Wireframe lane: acyclic full-projection views with primed
            // top-k prefixes (chains and a star).
            let wf_queries = vec![
                chain(&graph, &["A", "B"]),
                chain(&graph, &["C", "D", "E"]),
                star(&graph, &["A", "C"]),
            ];
            let mut wf_views: Vec<MaterializedQuery> = wf_queries
                .iter()
                .map(|q| {
                    let mut view = WireframeEngine::new(&graph).execute(q).unwrap().into_view();
                    assert!(
                        MaintainedView::prime_prefix(&mut view, K),
                        "seed {seed} {kind:?}: full-projection acyclic views support prefixes"
                    );
                    view
                })
                .collect();

            // Wco lane: cyclic views, no prefix support — bounded reads
            // must fall back to full defactorization + canonical cut.
            let wco_queries = vec![
                cycle(graph.dictionary(), &["A", "B", "C"]).unwrap(),
                cycle(graph.dictionary(), &["D", "E"]).unwrap(),
            ];
            let mut wco_views: Vec<WcoView> = wco_queries
                .iter()
                .map(|q| {
                    let wco = WcoEngine::new(&graph);
                    let plan = wco.plan(q).unwrap();
                    let (mut view, _) = wco.materialize_query(q, &plan);
                    assert!(
                        !MaintainedView::prime_prefix(&mut view, K),
                        "seed {seed} {kind:?}: wco views do not retain prefixes"
                    );
                    view
                })
                .collect();

            let mut fresh_tag = 0usize;
            for batch_no in 0..BATCHES {
                let mutation = random_batch(&graph, &mut rng, 30, &mut fresh_tag);
                let (next, outcome) = graph.apply(&mutation);
                graph = next;
                let epoch = batch_no + 1;

                for (view, query) in wf_views.iter_mut().zip(&wf_queries) {
                    let stats = MaintainedView::maintain(view, &graph, &outcome.delta, epoch);
                    total_refills += stats.prefix_refills;
                    total_fallbacks += stats.prefix_fallbacks;
                    let fresh = WireframeEngine::new(&graph).execute(query).unwrap();
                    assert_first_k_matches(
                        view,
                        fresh.embeddings(),
                        K,
                        &format!("seed {seed} {kind:?} batch {batch_no} wireframe"),
                    );
                }
                for (view, query) in wco_views.iter_mut().zip(&wco_queries) {
                    MaintainedView::maintain(view, &graph, &outcome.delta, epoch);
                    let fresh = WcoEngine::new(&graph).run(query).unwrap();
                    assert!(
                        !view.can_prefix_serve(K),
                        "seed {seed} {kind:?}: wco stays prefix-free under churn"
                    );
                    assert_first_k_matches(
                        view,
                        fresh.embeddings(),
                        K,
                        &format!("seed {seed} {kind:?} batch {batch_no} wco"),
                    );
                }
            }
        }
    }

    // Path coverage: the seeded churn (40% removals against k-row prefixes
    // of larger answers) must underflow at least one prefix into a refill.
    assert!(
        total_refills > 0,
        "the matrix must exercise the underflow-refill path"
    );
    // Fallbacks are likelier on dense seeds but not guaranteed by random
    // churn alone — the deterministic flood below pins that path down.
    let _ = total_fallbacks;
}

/// An insert flood larger than the fallback churn threshold must abandon
/// incremental prefix maintenance for one full re-enumeration — and the
/// prefix must still match fresh evaluation afterwards.
#[test]
fn an_insert_flood_forces_the_prefix_fallback_path() {
    for kind in [StoreKind::Csr, StoreKind::Map, StoreKind::Delta] {
        let mut graph = build(&[(0, 0, 1), (1, 1, 2)], kind);
        let query = chain(&graph, &["A", "B"]);
        let mut view = WireframeEngine::new(&graph)
            .execute(&query)
            .unwrap()
            .into_view();
        assert!(MaterializedQuery::prime_prefix(&mut view, K));

        // 90 A-edges onto the existing B-source: every insert lands in the
        // view's answer graph, far past max(64, |AG|/4).
        let mut mutation = Mutation::new();
        for i in 0..90 {
            mutation = mutation.insert(&format!("flood{i}"), "A", "n1");
        }
        let (next, outcome) = graph.apply(&mutation);
        graph = next;
        let stats = MaterializedQuery::maintain(&mut view, &graph, &outcome.delta, 1);
        assert!(
            stats.prefix_fallbacks >= 1,
            "{kind:?}: {} answer-edge churn must trigger the fallback",
            stats.edges_added + stats.edges_removed
        );

        let fresh = WireframeEngine::new(&graph).execute(&query).unwrap();
        assert_first_k_matches(
            &view,
            fresh.embeddings(),
            K,
            &format!("{kind:?} post-flood"),
        );
        assert!(view.can_prefix_serve(K), "the fallback re-warms the prefix");
    }
}

//! Integration tests of the synthetic workload at a size where the paper's
//! qualitative claims are measurable: the answer graph stays orders of
//! magnitude below the embedding count on snowflake queries, and the dataset /
//! workload plumbing (generation, mining, statistics) holds together.

use wireframe::core::WireframeEngine;
use wireframe::datagen::{generate, table1_queries, QueryMiner, YagoConfig};
use wireframe::graph::{load, write};
use wireframe::query::Shape;

#[test]
fn dataset_roundtrips_through_the_triple_format() {
    let g = generate(&YagoConfig::tiny());
    let mut buf = Vec::new();
    write(&g, &mut buf).unwrap();
    let reloaded = load(std::io::Cursor::new(buf)).unwrap();
    assert_eq!(reloaded.triple_count(), g.triple_count());
    assert_eq!(reloaded.predicate_count(), g.predicate_count());
    assert_eq!(reloaded.node_count(), g.node_count());
}

#[test]
fn catalog_statistics_match_the_data() {
    let g = generate(&YagoConfig::tiny());
    for (p, _) in g.dictionary().predicates() {
        let u = g.catalog().unigram(p);
        assert_eq!(u.cardinality, g.predicate_cardinality(p));
        assert!(u.distinct_subjects <= u.cardinality);
        assert!(u.distinct_objects <= u.cardinality);
    }
}

#[test]
fn factorization_gap_grows_with_fanout() {
    // Increasing the planted leaf fan-out multiplies embeddings but only adds
    // linearly many answer edges, so the |Embeddings| / |AG| ratio must grow.
    let mut low = YagoConfig::tiny();
    low.snowflake_leaf_fanout = 1;
    low.snowflake_spoke_fanout = 1;
    let mut high = YagoConfig::tiny();
    high.snowflake_leaf_fanout = 4;
    high.snowflake_spoke_fanout = 2;

    let ratio = |cfg: &YagoConfig| {
        let g = generate(cfg);
        let wf = WireframeEngine::new(&g);
        let mut total_ratio = 0.0;
        let mut count = 0;
        for bq in table1_queries(&g).unwrap() {
            if bq.shape != Shape::Snowflake {
                continue;
            }
            let out = wf.execute(&bq.query).unwrap();
            if out.answer_graph_size() > 0 {
                total_ratio += out.embedding_count() as f64 / out.answer_graph_size() as f64;
                count += 1;
            }
        }
        total_ratio / count.max(1) as f64
    };

    let low_ratio = ratio(&low);
    let high_ratio = ratio(&high);
    assert!(
        high_ratio > low_ratio,
        "higher fan-out must widen the factorization gap ({low_ratio:.2} -> {high_ratio:.2})"
    );
}

#[test]
fn mined_queries_evaluate_without_error() {
    let g = generate(&YagoConfig::tiny());
    let mut miner = QueryMiner::new(&g, 99);
    let (snowflakes, _) = miner.mine_snowflakes(300, 3);
    let (diamonds, _) = miner.mine_diamonds(300, 3);
    let wf = WireframeEngine::new(&g);
    for q in snowflakes.iter().chain(diamonds.iter()) {
        let out = wf.execute(q).unwrap();
        assert!(
            out.embedding_count() > 0,
            "the miner only returns non-empty queries: {q}"
        );
    }
}

#[test]
fn edge_walks_scale_with_answer_graph_not_embeddings() {
    // The cost of phase one is measured in edge walks; it must stay within a
    // small factor of the data actually touched, not blow up with the number
    // of embeddings (which is the whole point of factorizing first).
    let g = generate(&YagoConfig::small());
    let wf = WireframeEngine::new(&g);
    for bq in table1_queries(&g).unwrap() {
        if bq.shape != Shape::Snowflake {
            continue;
        }
        let out = wf.execute(&bq.query).unwrap();
        let walks = out.generation().edge_walks;
        let embeddings = out.embedding_count() as u64;
        assert!(
            walks < embeddings.max(1) * 2,
            "{}: {walks} edge walks for {embeddings} embeddings — phase one should not pay per embedding",
            bq.name
        );
    }
}

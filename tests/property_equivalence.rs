//! Property-based tests of the core invariants over random graphs and random
//! query shapes:
//!
//! 1. Wireframe, the relational baseline and the exploration baseline always
//!    return the same embedding set.
//! 2. For acyclic queries the answer graph is ideal: every answer edge is used
//!    by at least one embedding.
//! 3. Edge burnback never changes the answer and never enlarges the answer
//!    graph.
//! 4. The final answer graph does not depend on the planner.

use proptest::prelude::*;

use wireframe::baseline::{ExplorationEngine, RelationalEngine};
use wireframe::core::{EvalOptions, PlannerKind, WireframeEngine};
use wireframe::graph::{Graph, GraphBuilder};
use wireframe::query::{ConjunctiveQuery, CqBuilder, QueryGraph};

/// Predicate labels available to the random graphs and queries.
const LABELS: [&str; 4] = ["A", "B", "C", "D"];

/// A random edge list over a small node universe.
fn arb_graph(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    prop::collection::vec((0..max_nodes, 0..LABELS.len(), 0..max_nodes), 1..max_edges).prop_map(
        |edges| {
            let mut b = GraphBuilder::new();
            // Always intern every predicate so queries over any label resolve.
            for l in LABELS {
                b.intern_predicate(l);
            }
            for (s, p, o) in edges {
                b.add(&format!("n{s}"), LABELS[p], &format!("n{o}"));
            }
            b.build()
        },
    )
}

/// Query shapes exercised by the properties.
#[derive(Debug, Clone)]
enum QueryShape {
    /// Chain of the given labels.
    Chain(Vec<usize>),
    /// Star with the given labels out of one hub.
    Star(Vec<usize>),
    /// Diamond ?x a ?y . ?x b ?z . ?y c ?w . ?z d ?w.
    Diamond(usize, usize, usize, usize),
    /// Triangle ?x a ?y . ?y b ?z . ?z c ?x.
    Triangle(usize, usize, usize),
}

fn arb_query_shape() -> impl Strategy<Value = QueryShape> {
    prop_oneof![
        prop::collection::vec(0..LABELS.len(), 1..4).prop_map(QueryShape::Chain),
        prop::collection::vec(0..LABELS.len(), 2..4).prop_map(QueryShape::Star),
        (
            0..LABELS.len(),
            0..LABELS.len(),
            0..LABELS.len(),
            0..LABELS.len()
        )
            .prop_map(|(a, b, c, d)| QueryShape::Diamond(a, b, c, d)),
        (0..LABELS.len(), 0..LABELS.len(), 0..LABELS.len())
            .prop_map(|(a, b, c)| QueryShape::Triangle(a, b, c)),
    ]
}

fn build_query(graph: &Graph, shape: &QueryShape) -> ConjunctiveQuery {
    let d = graph.dictionary();
    let mut b = CqBuilder::new(d);
    match shape {
        QueryShape::Chain(labels) => {
            for (i, &l) in labels.iter().enumerate() {
                b.pattern(&format!("?v{i}"), LABELS[l], &format!("?v{}", i + 1))
                    .unwrap();
            }
        }
        QueryShape::Star(labels) => {
            for (i, &l) in labels.iter().enumerate() {
                b.pattern("?hub", LABELS[l], &format!("?v{i}")).unwrap();
            }
        }
        QueryShape::Diamond(p1, p2, p3, p4) => {
            b.pattern("?x", LABELS[*p1], "?y").unwrap();
            b.pattern("?x", LABELS[*p2], "?z").unwrap();
            b.pattern("?y", LABELS[*p3], "?w").unwrap();
            b.pattern("?z", LABELS[*p4], "?w").unwrap();
        }
        QueryShape::Triangle(p1, p2, p3) => {
            b.pattern("?x", LABELS[*p1], "?y").unwrap();
            b.pattern("?y", LABELS[*p2], "?z").unwrap();
            b.pattern("?z", LABELS[*p3], "?x").unwrap();
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_on_random_graphs(graph in arb_graph(12, 60), shape in arb_query_shape()) {
        let query = build_query(&graph, &shape);
        let wf = WireframeEngine::new(&graph).execute(&query).unwrap();
        let rel = RelationalEngine::new(&graph).evaluate(&query).unwrap();
        let exp = ExplorationEngine::new(&graph).evaluate(&query).unwrap();
        prop_assert!(wf.embeddings().same_answer(&rel),
            "wireframe {} vs relational {}", wf.embedding_count(), rel.len());
        prop_assert!(wf.embeddings().same_answer(&exp),
            "wireframe {} vs exploration {}", wf.embedding_count(), exp.len());
    }

    #[test]
    fn acyclic_answer_graphs_are_ideal(graph in arb_graph(10, 40), labels in prop::collection::vec(0..LABELS.len(), 1..4)) {
        let query = build_query(&graph, &QueryShape::Chain(labels));
        prop_assume!(QueryGraph::new(&query).is_acyclic());
        let out = WireframeEngine::new(&graph).execute(&query).unwrap();
        let emb = out.embeddings();
        for (i, pattern) in query.patterns().iter().enumerate() {
            let sv = pattern.subject.as_var().unwrap();
            let ov = pattern.object.as_var().unwrap();
            let s_col = emb.schema().iter().position(|v| *v == sv).unwrap();
            let o_col = emb.schema().iter().position(|v| *v == ov).unwrap();
            for (s, o) in out.answer_graph.pattern(i).iter() {
                let used = emb.tuples().iter().any(|t| t[s_col] == s && t[o_col] == o);
                prop_assert!(used, "unused AG edge in pattern {i}: ({s:?}, {o:?})");
            }
        }
    }

    #[test]
    fn edge_burnback_is_sound_and_shrinking(graph in arb_graph(10, 50),
        (p1, p2, p3, p4) in (0..LABELS.len(), 0..LABELS.len(), 0..LABELS.len(), 0..LABELS.len())) {
        let query = build_query(&graph, &QueryShape::Diamond(p1, p2, p3, p4));
        let plain = WireframeEngine::new(&graph).execute(&query).unwrap();
        let burned = WireframeEngine::with_options(&graph, EvalOptions::default().with_edge_burnback())
            .execute(&query)
            .unwrap();
        prop_assert!(plain.embeddings().same_answer(burned.embeddings()));
        prop_assert!(burned.answer_graph_size() <= plain.answer_graph_size());
    }

    #[test]
    fn edge_burnback_yields_ideal_diamond_answer_graphs(graph in arb_graph(8, 40),
        (p1, p2, p3, p4) in (0..LABELS.len(), 0..LABELS.len(), 0..LABELS.len(), 0..LABELS.len())) {
        let query = build_query(&graph, &QueryShape::Diamond(p1, p2, p3, p4));
        let out = WireframeEngine::with_options(&graph, EvalOptions::default().with_edge_burnback())
            .execute(&query)
            .unwrap();
        let emb = out.embeddings();
        for (i, pattern) in query.patterns().iter().enumerate() {
            let sv = pattern.subject.as_var().unwrap();
            let ov = pattern.object.as_var().unwrap();
            let s_col = emb.schema().iter().position(|v| *v == sv).unwrap();
            let o_col = emb.schema().iter().position(|v| *v == ov).unwrap();
            for (s, o) in out.answer_graph.pattern(i).iter() {
                let used = emb.tuples().iter().any(|t| t[s_col] == s && t[o_col] == o);
                prop_assert!(used, "edge burnback left a spurious edge in pattern {i}: ({s:?}, {o:?})");
            }
        }
    }

    #[test]
    fn planner_does_not_change_the_final_answer_graph(graph in arb_graph(10, 40), shape in arb_query_shape()) {
        let query = build_query(&graph, &shape);
        let mut sizes = Vec::new();
        let mut answers = Vec::new();
        for kind in [PlannerKind::DpLeftDeep, PlannerKind::Greedy, PlannerKind::AsWritten] {
            let out = WireframeEngine::with_options(&graph, EvalOptions::default().with_planner(kind))
                .execute(&query)
                .unwrap();
            sizes.push(out.answer_graph_size());
            answers.push(out.embeddings);
        }
        prop_assert_eq!(sizes[0], sizes[1]);
        prop_assert_eq!(sizes[0], sizes[2]);
        prop_assert!(answers[0].same_answer(&answers[1]));
        prop_assert!(answers[0].same_answer(&answers[2]));
    }

    #[test]
    fn burnback_statistics_are_consistent(graph in arb_graph(10, 40), labels in prop::collection::vec(0..LABELS.len(), 1..4)) {
        let query = build_query(&graph, &QueryShape::Chain(labels));
        let out = WireframeEngine::with_options(&graph, EvalOptions::default().with_trace())
            .execute(&query)
            .unwrap();
        // Added minus burned equals what is left in the AG.
        let added = out.generation.edges_added;
        let burned = out.generation.edges_burned;
        prop_assert_eq!(added - burned, out.answer_graph_size() as u64);
        // Step traces sum to the aggregate counters.
        let step_added: u64 = out.generation.steps.iter().map(|s| s.edges_added as u64).sum();
        prop_assert_eq!(step_added, added);
    }
}

//! Property-style tests of the core invariants over random graphs and random
//! query shapes:
//!
//! 1. Wireframe, the relational baseline and the exploration baseline always
//!    return the same embedding set.
//! 2. For acyclic queries the answer graph is ideal: every answer edge is used
//!    by at least one embedding.
//! 3. Edge burnback never changes the answer and never enlarges the answer
//!    graph (and leaves diamond answer graphs ideal).
//! 4. The final answer graph does not depend on the planner.
//! 5. Burnback statistics are internally consistent.
//!
//! Cases are generated from the vendored seeded PRNG (crates.io — and with it
//! `proptest` — is unavailable offline), so every run exercises the same
//! deterministic case list; failures print the offending seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wireframe::baseline::{ExplorationEngine, RelationalEngine};
use wireframe::core::{EvalOptions, PlannerKind, WireframeEngine};
use wireframe::graph::{Graph, GraphBuilder};
use wireframe::query::{ConjunctiveQuery, CqBuilder, QueryGraph};

/// Predicate labels available to the random graphs and queries.
const LABELS: [&str; 4] = ["A", "B", "C", "D"];

/// Cases per property (mirrors the old `ProptestConfig::with_cases(48)`).
const CASES: u64 = 48;

/// A random edge list over a small node universe.
fn gen_graph(rng: &mut SmallRng, max_nodes: u32, max_edges: usize) -> Graph {
    let mut b = GraphBuilder::new();
    // Always intern every predicate so queries over any label resolve.
    for l in LABELS {
        b.intern_predicate(l);
    }
    let edges = rng.gen_range(1..max_edges);
    for _ in 0..edges {
        let s = rng.gen_range(0..max_nodes);
        let p = rng.gen_range(0..LABELS.len());
        let o = rng.gen_range(0..max_nodes);
        b.add(&format!("n{s}"), LABELS[p], &format!("n{o}"));
    }
    b.build()
}

/// Query shapes exercised by the properties.
#[derive(Debug, Clone)]
enum QueryShape {
    /// Chain of the given labels.
    Chain(Vec<usize>),
    /// Star with the given labels out of one hub.
    Star(Vec<usize>),
    /// Diamond ?x a ?y . ?x b ?z . ?y c ?w . ?z d ?w.
    Diamond(usize, usize, usize, usize),
    /// Triangle ?x a ?y . ?y b ?z . ?z c ?x.
    Triangle(usize, usize, usize),
}

fn gen_labels(rng: &mut SmallRng, min: usize, max: usize) -> Vec<usize> {
    let n = rng.gen_range(min..max);
    (0..n).map(|_| rng.gen_range(0..LABELS.len())).collect()
}

fn gen_shape(rng: &mut SmallRng) -> QueryShape {
    match rng.gen_range(0..4usize) {
        0 => QueryShape::Chain(gen_labels(rng, 1, 4)),
        1 => QueryShape::Star(gen_labels(rng, 2, 4)),
        2 => gen_diamond(rng),
        _ => QueryShape::Triangle(
            rng.gen_range(0..LABELS.len()),
            rng.gen_range(0..LABELS.len()),
            rng.gen_range(0..LABELS.len()),
        ),
    }
}

fn gen_diamond(rng: &mut SmallRng) -> QueryShape {
    QueryShape::Diamond(
        rng.gen_range(0..LABELS.len()),
        rng.gen_range(0..LABELS.len()),
        rng.gen_range(0..LABELS.len()),
        rng.gen_range(0..LABELS.len()),
    )
}

fn build_query(graph: &Graph, shape: &QueryShape) -> ConjunctiveQuery {
    let d = graph.dictionary();
    let mut b = CqBuilder::new(d);
    match shape {
        QueryShape::Chain(labels) => {
            for (i, &l) in labels.iter().enumerate() {
                b.pattern(&format!("?v{i}"), LABELS[l], &format!("?v{}", i + 1))
                    .unwrap();
            }
        }
        QueryShape::Star(labels) => {
            for (i, &l) in labels.iter().enumerate() {
                b.pattern("?hub", LABELS[l], &format!("?v{i}")).unwrap();
            }
        }
        QueryShape::Diamond(p1, p2, p3, p4) => {
            b.pattern("?x", LABELS[*p1], "?y").unwrap();
            b.pattern("?x", LABELS[*p2], "?z").unwrap();
            b.pattern("?y", LABELS[*p3], "?w").unwrap();
            b.pattern("?z", LABELS[*p4], "?w").unwrap();
        }
        QueryShape::Triangle(p1, p2, p3) => {
            b.pattern("?x", LABELS[*p1], "?y").unwrap();
            b.pattern("?y", LABELS[*p2], "?z").unwrap();
            b.pattern("?z", LABELS[*p3], "?x").unwrap();
        }
    }
    b.build().unwrap()
}

/// Runs `case` once per seed with a seeded PRNG, reporting the seed on panic.
fn for_each_case(property: &str, mut case: impl FnMut(&mut SmallRng)) {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE + seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(payload) = result {
            eprintln!("property {property:?} failed at seed {seed}");
            std::panic::resume_unwind(payload);
        }
    }
}

#[test]
fn engines_agree_on_random_graphs() {
    for_each_case("engines_agree", |rng| {
        let graph = gen_graph(rng, 12, 60);
        let query = build_query(&graph, &gen_shape(rng));
        let wf = WireframeEngine::new(&graph).execute(&query).unwrap();
        let rel = RelationalEngine::new(&graph).evaluate(&query).unwrap();
        let exp = ExplorationEngine::new(&graph).evaluate(&query).unwrap();
        assert!(
            wf.embeddings().same_answer(&rel),
            "wireframe {} vs relational {}",
            wf.embedding_count(),
            rel.len()
        );
        assert!(
            wf.embeddings().same_answer(&exp),
            "wireframe {} vs exploration {}",
            wf.embedding_count(),
            exp.len()
        );
    });
}

#[test]
fn acyclic_answer_graphs_are_ideal() {
    for_each_case("acyclic_ideal", |rng| {
        let graph = gen_graph(rng, 10, 40);
        let query = build_query(&graph, &QueryShape::Chain(gen_labels(rng, 1, 4)));
        if !QueryGraph::new(&query).is_acyclic() {
            return; // analogous to prop_assume!
        }
        let out = WireframeEngine::new(&graph).execute(&query).unwrap();
        let emb = out.embeddings();
        for (i, pattern) in query.patterns().iter().enumerate() {
            let sv = pattern.subject.as_var().unwrap();
            let ov = pattern.object.as_var().unwrap();
            let s_col = emb.schema().iter().position(|v| *v == sv).unwrap();
            let o_col = emb.schema().iter().position(|v| *v == ov).unwrap();
            for (s, o) in out.answer_graph().pattern(i).iter() {
                let used = emb.rows().any(|t| t[s_col] == s && t[o_col] == o);
                assert!(used, "unused AG edge in pattern {i}: ({s:?}, {o:?})");
            }
        }
    });
}

#[test]
fn edge_burnback_is_sound_and_shrinking() {
    for_each_case("burnback_sound", |rng| {
        let graph = gen_graph(rng, 10, 50);
        let query = build_query(&graph, &gen_diamond(rng));
        let plain = WireframeEngine::new(&graph).execute(&query).unwrap();
        let burned =
            WireframeEngine::with_options(&graph, EvalOptions::default().with_edge_burnback())
                .execute(&query)
                .unwrap();
        assert!(plain.embeddings().same_answer(burned.embeddings()));
        assert!(burned.answer_graph_size() <= plain.answer_graph_size());
    });
}

#[test]
fn edge_burnback_yields_ideal_diamond_answer_graphs() {
    for_each_case("burnback_ideal", |rng| {
        let graph = gen_graph(rng, 8, 40);
        let query = build_query(&graph, &gen_diamond(rng));
        let out =
            WireframeEngine::with_options(&graph, EvalOptions::default().with_edge_burnback())
                .execute(&query)
                .unwrap();
        let emb = out.embeddings();
        for (i, pattern) in query.patterns().iter().enumerate() {
            let sv = pattern.subject.as_var().unwrap();
            let ov = pattern.object.as_var().unwrap();
            let s_col = emb.schema().iter().position(|v| *v == sv).unwrap();
            let o_col = emb.schema().iter().position(|v| *v == ov).unwrap();
            for (s, o) in out.answer_graph().pattern(i).iter() {
                let used = emb.rows().any(|t| t[s_col] == s && t[o_col] == o);
                assert!(
                    used,
                    "edge burnback left a spurious edge in pattern {i}: ({s:?}, {o:?})"
                );
            }
        }
    });
}

#[test]
fn planner_does_not_change_the_final_answer_graph() {
    for_each_case("planner_invariance", |rng| {
        let graph = gen_graph(rng, 10, 40);
        let query = build_query(&graph, &gen_shape(rng));
        let mut sizes = Vec::new();
        let mut answers = Vec::new();
        for kind in [
            PlannerKind::DpLeftDeep,
            PlannerKind::Greedy,
            PlannerKind::AsWritten,
        ] {
            let out =
                WireframeEngine::with_options(&graph, EvalOptions::default().with_planner(kind))
                    .execute(&query)
                    .unwrap();
            sizes.push(out.answer_graph_size());
            answers.push(out.embeddings);
        }
        assert_eq!(sizes[0], sizes[1]);
        assert_eq!(sizes[0], sizes[2]);
        assert!(answers[0].same_answer(&answers[1]));
        assert!(answers[0].same_answer(&answers[2]));
    });
}

#[test]
fn burnback_statistics_are_consistent() {
    for_each_case("stats_consistent", |rng| {
        let graph = gen_graph(rng, 10, 40);
        let query = build_query(&graph, &QueryShape::Chain(gen_labels(rng, 1, 4)));
        let out = WireframeEngine::with_options(&graph, EvalOptions::default().with_trace())
            .execute(&query)
            .unwrap();
        // Added minus burned equals what is left in the AG.
        let added = out.generation().edges_added;
        let burned = out.generation().edges_burned;
        assert_eq!(added - burned, out.answer_graph_size() as u64);
        // Step traces sum to the aggregate counters.
        let step_added: u64 = out
            .generation()
            .steps
            .iter()
            .map(|s| s.edges_added as u64)
            .sum();
        assert_eq!(step_added, added);
    });
}

//! Integration tests pinning the paper's worked examples (Figures 1, 2 and 4)
//! to exact numbers.

use wireframe::core::{triangulate, EvalOptions, WireframeEngine};
use wireframe::graph::{Graph, GraphBuilder};
use wireframe::query::{parse_query, QueryGraph, Shape};

/// The data graph of Figures 1 and 2.
fn figure1_graph() -> Graph {
    let mut b = GraphBuilder::new();
    for s in ["1", "2", "3"] {
        b.add(s, "A", "5");
    }
    b.add("4", "A", "6");
    b.add("5", "B", "9");
    b.add("7", "B", "10");
    for o in ["12", "13", "14", "15"] {
        b.add("9", "C", o);
    }
    b.add("11", "C", "15");
    b.build()
}

/// The Figure 4 scenario: two disjoint diamonds plus two spurious C-edges.
fn figure4_graph() -> Graph {
    let mut b = GraphBuilder::new();
    b.add("3", "A", "4");
    b.add("3", "B", "2");
    b.add("4", "C", "1");
    b.add("2", "D", "1");
    b.add("7", "A", "8");
    b.add("7", "B", "6");
    b.add("8", "C", "5");
    b.add("6", "D", "5");
    b.add("4", "C", "5");
    b.add("8", "C", "1");
    b.build()
}

#[test]
fn figure1_answer_graph_is_eight_edges_and_twelve_embeddings() {
    let g = figure1_graph();
    let q = parse_query(
        "SELECT ?w ?x ?y ?z WHERE { ?w :A ?x . ?x :B ?y . ?y :C ?z . }",
        g.dictionary(),
    )
    .unwrap();
    let out = WireframeEngine::new(&g).execute(&q).unwrap();
    assert_eq!(
        out.answer_graph_size(),
        8,
        "Figure 1: eight labeled node pairs"
    );
    assert_eq!(
        out.embedding_count(),
        12,
        "Figure 1: twelve embedding tuples"
    );

    // The answer graph is exactly the red sub-graph of Figure 1.
    let dict = g.dictionary();
    let n = |label: &str| dict.node_id(label).unwrap();
    let a_edges = out.answer_graph().pattern(0);
    assert!(a_edges.contains(n("1"), n("5")));
    assert!(a_edges.contains(n("2"), n("5")));
    assert!(a_edges.contains(n("3"), n("5")));
    assert!(
        !a_edges.contains(n("4"), n("6")),
        "the A-edge 4->6 is burned back"
    );
    let b_edges = out.answer_graph().pattern(1);
    assert_eq!(b_edges.len(), 1);
    assert!(b_edges.contains(n("5"), n("9")));
    let c_edges = out.answer_graph().pattern(2);
    assert_eq!(c_edges.len(), 4);
    assert!(
        !c_edges.contains(n("11"), n("15")),
        "the C-edge 11->15 is burned back"
    );
}

#[test]
fn figure2_trace_shows_extension_and_burnback() {
    let g = figure1_graph();
    let q = parse_query(
        "SELECT * WHERE { ?w :A ?x . ?x :B ?y . ?y :C ?z . }",
        g.dictionary(),
    )
    .unwrap();
    let engine = WireframeEngine::with_options(&g, EvalOptions::default().with_trace());
    let out = engine.execute(&q).unwrap();
    assert_eq!(
        out.generation().steps.len(),
        3,
        "one extension step per query edge"
    );
    assert!(
        out.generation().edges_burned >= 1,
        "at least one edge (A 4->6 or C 11->15) must be burned back"
    );
    let last = out.generation().steps.last().unwrap();
    assert_eq!(
        last.ag_edges_after, 8,
        "the trace ends at the final answer graph"
    );
    // Edge walks are bounded by the data size and at least the AG size.
    assert!(out.generation().edge_walks >= 8);
    assert!(out.generation().edge_walks <= g.triple_count() as u64 * 2);
}

#[test]
fn figure4_node_burnback_keeps_spurious_edges_and_edge_burnback_removes_them() {
    let g = figure4_graph();
    let q = parse_query(
        "SELECT * WHERE { ?x :A ?e . ?x :B ?z . ?e :C ?y . ?z :D ?y . }",
        g.dictionary(),
    )
    .unwrap();
    assert_eq!(QueryGraph::new(&q).shape(), Shape::Cycle);

    let plain = WireframeEngine::new(&g).execute(&q).unwrap();
    assert_eq!(plain.embedding_count(), 2, "Figure 4: two embeddings");
    assert_eq!(
        plain.answer_graph_size(),
        10,
        "node burnback alone keeps the two spurious C-edges"
    );

    let ideal = WireframeEngine::with_options(&g, EvalOptions::default().with_edge_burnback())
        .execute(&q)
        .unwrap();
    assert_eq!(
        ideal.answer_graph_size(),
        8,
        "edge burnback restores the ideal AG"
    );
    assert_eq!(ideal.embedding_count(), 2);
    assert!(plain.embeddings().same_answer(ideal.embeddings()));
}

#[test]
fn figure4_triangulation_structure() {
    let g = figure4_graph();
    let q = parse_query(
        "SELECT * WHERE { ?x :A ?e . ?x :B ?z . ?e :C ?y . ?z :D ?y . }",
        g.dictionary(),
    )
    .unwrap();
    let c = triangulate(&q);
    assert_eq!(c.chords.len(), 1, "the 4-cycle is bisected by one chord");
    assert_eq!(c.triangles.len(), 2);
}

#[test]
fn acyclic_answer_graphs_are_ideal() {
    // Every answer edge of an acyclic query's AG participates in at least one
    // embedding (the defining property of the ideal AG).
    let g = figure1_graph();
    let q = parse_query(
        "SELECT * WHERE { ?w :A ?x . ?x :B ?y . ?y :C ?z . }",
        g.dictionary(),
    )
    .unwrap();
    let out = WireframeEngine::new(&g).execute(&q).unwrap();

    for (i, pattern) in q.patterns().iter().enumerate() {
        for (s, o) in out.answer_graph().pattern(i).iter() {
            let sv = pattern.subject.as_var().unwrap();
            let ov = pattern.object.as_var().unwrap();
            let used = out.embeddings().rows().any(|t| {
                let s_col = out
                    .embeddings()
                    .schema()
                    .iter()
                    .position(|v| *v == sv)
                    .unwrap();
                let o_col = out
                    .embeddings()
                    .schema()
                    .iter()
                    .position(|v| *v == ov)
                    .unwrap();
                t[s_col] == s && t[o_col] == o
            });
            assert!(
                used,
                "AG edge ({s:?},{o:?}) of pattern {i} is not used by any embedding"
            );
        }
    }
}

//! Cross-engine equivalence driven entirely through the [`Engine`] trait and
//! the engine registry: every registered engine must return the identical
//! answer on every query of the generated mixed-shape workload (chains,
//! stars, snowflakes, cycles), and the `Session` facade must agree with the
//! engines it wraps.

use wireframe::datagen::{full_workload, generate, YagoConfig};
use wireframe::{default_registry, EngineConfig, Session};

#[test]
fn every_registered_engine_agrees_on_every_workload_shape() {
    let g = generate(&YagoConfig::tiny());
    let registry = default_registry();
    let names = registry.names();
    assert_eq!(
        names,
        vec!["wireframe", "wco", "relational", "sortmerge", "exploration"],
        "all five engines are reachable by name"
    );

    let engines: Vec<_> = names
        .iter()
        .map(|name| {
            registry
                .build(name, &g, &EngineConfig::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        })
        .collect();

    let workload = full_workload(&g).unwrap();
    assert_eq!(
        workload.len(),
        20,
        "5 chains + 5 stars + 5 snowflakes + 5 cycles"
    );

    let mut nonempty = 0usize;
    for bq in &workload {
        let reference = engines[0].run(&bq.query).unwrap();
        if reference.embedding_count() > 0 {
            nonempty += 1;
        }
        for engine in &engines[1..] {
            let other = engine.run(&bq.query).unwrap();
            assert!(
                reference.embeddings().same_answer(other.embeddings()),
                "{}: {} ({} embeddings) and {} ({} embeddings) disagree",
                bq.name,
                reference.engine,
                reference.embedding_count(),
                other.engine,
                other.embedding_count()
            );
            assert_eq!(reference.cyclic, other.cyclic, "{}", bq.name);
        }
    }
    assert_eq!(
        nonempty,
        workload.len(),
        "the planted cores make every workload query non-empty"
    );
}

#[test]
fn edge_burnback_config_never_changes_answers_across_the_registry() {
    // Only the wireframe engine interprets the edge_burnback knob; the
    // baselines must ignore it and still agree.
    let g = generate(&YagoConfig::tiny());
    let registry = default_registry();
    let config = EngineConfig::default().with_edge_burnback();
    let workload = full_workload(&g).unwrap();

    for bq in workload.iter().filter(|bq| bq.query.num_patterns() == 4) {
        let mut answers = Vec::new();
        for name in registry.names() {
            let engine = registry.build(name, &g, &config).unwrap();
            answers.push(engine.run(&bq.query).unwrap().embeddings);
        }
        for other in &answers[1..] {
            assert!(answers[0].same_answer(other), "{}", bq.name);
        }
    }
}

#[test]
fn session_answers_match_direct_engine_runs() {
    let g = generate(&YagoConfig::tiny());
    let registry = default_registry();
    let workload = full_workload(&g).unwrap();

    let mut session = Session::new(generate(&YagoConfig::tiny()));
    for name in registry.names() {
        session.set_engine(name).unwrap();
        for bq in workload.iter().take(6) {
            let direct = registry
                .build(name, &g, &EngineConfig::default())
                .unwrap()
                .run(&bq.query)
                .unwrap();
            let via_session = session.execute(&bq.query).unwrap();
            assert!(
                direct.embeddings().same_answer(via_session.embeddings()),
                "{name} on {}",
                bq.name
            );
        }
    }
    // A second pass over a query already seen by an engine reuses its
    // prepared plan instead of preparing again.
    let misses_before = session.cache_misses();
    session.set_engine("wireframe").unwrap();
    session.execute(&workload[0].query).unwrap();
    assert!(session.cache_hits() > 0, "second pass hits the cache");
    assert_eq!(session.cache_misses(), misses_before, "nothing re-prepared");
}

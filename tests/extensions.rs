//! Integration tests for the engineering extensions beyond the paper's
//! prototype — streaming, bushy and parallel defactorization, the sort-merge
//! baseline, canonical query signatures — exercised over the Table 1 workload
//! on the synthetic dataset. The invariant throughout: every alternative path
//! produces exactly the same answer as the reference pipeline.

use wireframe::baseline::SortMergeEngine;
use wireframe::core::{
    defactorize_parallel, execute_bushy, explain_output, plan_bushy, EmbeddingStream,
    ParallelOptions, WireframeEngine,
};
use wireframe::datagen::{generate, table1_queries, DatasetReport, YagoConfig};
use wireframe::query::canonical::{equivalent, signature};
use wireframe::query::EmbeddingSet;

#[test]
fn sortmerge_baseline_agrees_with_wireframe_on_the_workload() {
    let g = generate(&YagoConfig::tiny());
    let wf = WireframeEngine::new(&g);
    let sm = SortMergeEngine::new(&g);
    for bq in table1_queries(&g).unwrap() {
        let w = wf.execute(&bq.query).unwrap();
        let s = sm.evaluate(&bq.query).unwrap();
        assert!(
            w.embeddings().same_answer(&s),
            "{}: wireframe {} vs sort-merge {}",
            bq.name,
            w.embedding_count(),
            s.len()
        );
    }
}

#[test]
fn streaming_bushy_and_parallel_match_the_reference_pipeline() {
    let g = generate(&YagoConfig::tiny());
    let wf = WireframeEngine::new(&g);
    for bq in table1_queries(&g).unwrap() {
        let out = wf.execute(&bq.query).unwrap();
        let (ag, _, _) = wf.answer_graph(&bq.query).unwrap();

        // Streaming enumeration.
        let streamed: Vec<_> = EmbeddingStream::new(&bq.query, &ag).unwrap().collect();
        let schema: Vec<_> = bq.query.variables().collect();
        let streamed = EmbeddingSet::new(schema.clone(), streamed)
            .project(&bq.query)
            .unwrap();
        assert!(
            streamed.same_answer(out.embeddings()),
            "{}: streaming differs",
            bq.name
        );

        // Bushy phase-two plan.
        let plan = plan_bushy(&bq.query, &ag).unwrap();
        let (bushy, _) = execute_bushy(&bq.query, &ag, &plan).unwrap();
        let bushy = bushy.project(&bq.query).unwrap();
        assert!(
            bushy.same_answer(out.embeddings()),
            "{}: bushy differs",
            bq.name
        );

        // Parallel defactorization.
        let (parallel, _) = defactorize_parallel(
            &bq.query,
            &ag,
            &ParallelOptions {
                threads: 3,
                min_seeds_per_thread: 1,
            },
        )
        .unwrap();
        let parallel = parallel.project(&bq.query).unwrap();
        assert!(
            parallel.same_answer(out.embeddings()),
            "{}: parallel differs",
            bq.name
        );
    }
}

#[test]
fn explain_covers_the_whole_workload() {
    let g = generate(&YagoConfig::tiny());
    let wf = WireframeEngine::new(&g);
    for bq in table1_queries(&g).unwrap() {
        let out = wf.execute(&bq.query).unwrap();
        let text = explain_output(&g, &bq.query, &out);
        assert!(text.contains("answer-graph plan"), "{}", bq.name);
        assert_eq!(
            text.matches("materialize").count(),
            bq.query.num_patterns(),
            "{}: one plan line per query edge",
            bq.name
        );
    }
}

#[test]
fn table1_queries_have_distinct_signatures() {
    let g = generate(&YagoConfig::tiny());
    let queries = table1_queries(&g).unwrap();
    for (i, a) in queries.iter().enumerate() {
        for b in queries.iter().skip(i + 1) {
            assert!(
                !equivalent(&a.query, &b.query),
                "{} and {} should not be structurally equivalent",
                a.name,
                b.name
            );
        }
        // Signatures are stable across recomputation.
        assert_eq!(signature(&a.query), signature(&a.query));
    }
}

#[test]
fn dataset_report_covers_the_workload_predicates() {
    let g = generate(&YagoConfig::tiny());
    let report = DatasetReport::build(&g);
    for bq in table1_queries(&g).unwrap() {
        for p in bq.query.patterns() {
            let label = g.dictionary().predicate_label(p.predicate).unwrap();
            let entry = report.predicate(label).unwrap();
            assert!(entry.cardinality > 0, "{label} must have edges");
        }
    }
}

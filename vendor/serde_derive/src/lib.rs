//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The vendored `serde` shim defines `Serialize` as a marker trait; this
//! derive emits a trivial `impl` for the annotated type. It handles plain
//! (non-generic) structs and enums, which is all the workspace derives on.
//! Implemented without `syn`/`quote` since neither is available offline.

use proc_macro::{TokenStream, TokenTree};

/// Derives the marker `serde::Serialize` impl for a non-generic type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl serde::Serialize for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        None => TokenStream::new(),
    }
}

/// Extracts the identifier following the `struct` / `enum` / `union` keyword.
/// Returns `None` for generic types (angle brackets after the name), which
/// would need real serde to handle bounds — the shim degrades to no impl.
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next()? {
                    TokenTree::Ident(name) => name.to_string(),
                    _ => return None,
                };
                // A `<` right after the name means generics: bail out.
                if let Some(TokenTree::Punct(p)) = tokens.next() {
                    if p.as_char() == '<' {
                        return None;
                    }
                }
                return Some(name);
            }
        }
    }
    None
}

//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The vendored `serde` shim defines `Serialize` as a conversion to its JSON
//! document model (`serde::json::Value`); this derive generates that
//! conversion for named-field structs (every field in declaration order) and
//! unit-variant enums (the variant name as a string). Implemented without
//! `syn`/`quote` since neither is available offline. Unsupported shapes
//! (generics, tuple structs, enum variants with payloads) produce a
//! `compile_error!` instead of a silently useless impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the shim's JSON conversion) for a
/// named-field struct or a unit-variant enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let source = match parse(input) {
        Ok(s) => generate(&s),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    source.parse().expect("generated impl parses")
}

enum Shape {
    /// Field names of a named-field struct, in declaration order.
    Struct(Vec<String>),
    /// Variant names of a unit-variant enum, in declaration order.
    Enum(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn generate(parsed: &Parsed) -> String {
    let name = &parsed.name;
    match &parsed.shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         serde::Serialize::to_json(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_json(&self) -> serde::json::Value {{\n\
                         serde::json::Value::Object(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => serde::json::Value::Str(\
                         ::std::string::String::from({v:?}))"
                    )
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_json(&self) -> serde::json::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    }
}

fn parse(input: TokenStream) -> Result<Parsed, String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        let TokenTree::Ident(ident) = &tt else {
            continue;
        };
        let kw = ident.to_string();
        if kw != "struct" && kw != "enum" && kw != "union" {
            continue;
        }
        if kw == "union" {
            return Err("serde shim derive does not support unions".to_owned());
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(name)) => name.to_string(),
            _ => return Err("expected a type name".to_owned()),
        };
        let body = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    return Err(format!(
                        "serde shim derive does not support generic type {name}"
                    ));
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                    // Unit struct: serializes as the empty object.
                    return Ok(Parsed {
                        name,
                        shape: Shape::Struct(Vec::new()),
                    });
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    break g.stream();
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    return Err(format!(
                        "serde shim derive does not support tuple struct {name}"
                    ));
                }
                Some(_) => continue,
                None => return Err(format!("no body found for {name}")),
            }
        };
        let shape = if kw == "struct" {
            Shape::Struct(named_fields(body)?)
        } else {
            Shape::Enum(unit_variants(body)?)
        };
        return Ok(Parsed { name, shape });
    }
    Err("no struct or enum found in derive input".to_owned())
}

/// Extracts the field names of a named-field struct body: for each
/// comma-separated (at angle-bracket depth zero) field, skip attributes and
/// visibility, take the identifier before the `:`.
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes: `#` followed by a bracket group.
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                _ => return Err("malformed attribute in struct body".to_owned()),
            }
        }
        // Skip visibility: `pub` with an optional `(...)` restriction.
        if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            tokens.next();
            if matches!(
                tokens.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                tokens.next();
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(field)) => fields.push(field.to_string()),
            None => return Ok(fields),
            Some(other) => return Err(format!("expected a field name, found {other}")),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => {
                return Err(
                    "serde shim derive supports named-field structs only (missing ':')".to_owned(),
                )
            }
        }
        // Consume the type up to the next comma at angle-bracket depth zero.
        // `<`/`>` are plain puncts, so generic arguments must be tracked by
        // hand; `->` must not close an angle bracket.
        let mut angle_depth = 0usize;
        let mut prev_joint_minus = false;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) => {
                    match p.as_char() {
                        '<' => angle_depth += 1,
                        '>' if !prev_joint_minus => {
                            angle_depth = angle_depth.saturating_sub(1);
                        }
                        ',' if angle_depth == 0 => break,
                        _ => {}
                    }
                    prev_joint_minus =
                        p.as_char() == '-' && p.spacing() == proc_macro::Spacing::Joint;
                }
                Some(_) => prev_joint_minus = false,
                None => return Ok(fields),
            }
        }
    }
}

/// Extracts the variant names of an enum body, rejecting variants with
/// payloads (the shim would have nothing sensible to emit for them).
fn unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                _ => return Err("malformed attribute in enum body".to_owned()),
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(variant)) => variants.push(variant.to_string()),
            None => return Ok(variants),
            Some(other) => return Err(format!("expected a variant name, found {other}")),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => {
                return Err("serde shim derive supports unit enum variants only".to_owned())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: consume up to the next comma.
                loop {
                    match tokens.next() {
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                        Some(_) => continue,
                        None => return Ok(variants),
                    }
                }
            }
            Some(other) => return Err(format!("unexpected token {other} in enum body")),
            None => return Ok(variants),
        }
    }
}

//! A minimal JSON document model: construction, rendering and parsing.
//!
//! This module is the serialization half of the vendored serde shim. The
//! workspace's benchmark harness writes `BENCH_*.json` reports and reads them
//! back for regression comparison; both directions go through [`Value`].
//! Rendering follows RFC 8259 (string escaping, `null` for non-finite
//! floats); parsing accepts the same subset it renders plus arbitrary
//! whitespace.

use std::fmt::Write as _;

use crate::Serialize;

/// A JSON value.
///
/// Integers keep their own variants instead of flattening into `f64` so that
/// `u64` counters (edge walks, embedding counts) round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (counters; preserves values above `i64::MAX`).
    UInt(u64),
    /// A double. Non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Insertion order is preserved (no key sorting), so reports
    /// render in the order their fields are declared.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array; `None` for other variants.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents; `None` for other variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` (any of the three numeric variants).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric value as `u64`, when non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => Some(u),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The boolean contents; `None` for other variants.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, None, 0);
        out
    }

    /// Renders the value as indented JSON (two spaces per level).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{}` on f64 prints the shortest representation that
                    // round-trips; integral floats gain a `.0` so they parse
                    // back as floats.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        let _ = write!(out, "{f:.1}");
                    } else {
                        let _ = write!(out, "{f}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_string(out, s),
            Value::Array(items) => {
                render_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].render_into(out, indent, depth + 1)
                });
            }
            Value::Object(fields) => {
                render_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    render_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render_into(out, indent, depth + 1)
                });
            }
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(close);
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes any [`Serialize`] type to compact JSON
/// (the shim's `serde_json::to_string`).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    value.to_json().render()
}

/// Serializes any [`Serialize`] type to indented JSON
/// (the shim's `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    value.to_json().render_pretty()
}

/// A JSON parse error: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input where the problem was found.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (the shim's `serde_json::from_str`, untyped).
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", expected as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {text}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.error(format!("unexpected character {:?}", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our renderer;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.error(format!("invalid escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at the byte we
                    // just consumed.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(&rest[..utf8_len(b).min(rest.len())])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| self.error("empty char"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| ParseError {
                message: format!("invalid number {text:?}"),
                offset: start,
            })
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Value::Null.render(), "null");
        assert_eq!(Value::Bool(true).render(), "true");
        assert_eq!(Value::Int(-5).render(), "-5");
        assert_eq!(Value::UInt(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Value::Float(1.5).render(), "1.5");
        assert_eq!(Value::Float(3.0).render(), "3.0");
        assert_eq!(Value::Float(f64::NAN).render(), "null");
        assert_eq!(Value::Str("a\"b\n".into()).render(), r#""a\"b\n""#);
    }

    #[test]
    fn containers_render_in_order() {
        let v = Value::Object(vec![
            ("b".into(), Value::Int(1)),
            ("a".into(), Value::Array(vec![Value::Bool(false)])),
        ]);
        assert_eq!(v.render(), r#"{"b":1,"a":[false]}"#);
        assert!(v.render_pretty().contains("\n  \"b\": 1"));
    }

    #[test]
    fn parse_round_trips_render() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("CQS-1 \u{2603}".into())),
            ("p50_ms".into(), Value::Float(0.125)),
            ("count".into(), Value::UInt(12345678901234567890)),
            ("neg".into(), Value::Int(-7)),
            (
                "flags".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("empty_obj".into(), Value::Object(vec![])),
            ("empty_arr".into(), Value::Array(vec![])),
        ]);
        assert_eq!(from_str(&v.render()).unwrap(), v);
        assert_eq!(from_str(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = from_str(r#"{"x": 2, "s": "hi", "a": [1.5], "b": true}"#).unwrap();
        assert_eq!(v.get("x").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(2.0));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").unwrap_err().offset > 0);
        assert!(from_str(r#"{"a" 1}"#).is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let s = "tab\there \"quote\" back\\slash \u{1}control";
        let rendered = Value::Str(s.into()).render();
        assert_eq!(from_str(&rendered).unwrap(), Value::Str(s.into()));
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io. The workspace only uses
//! `#[derive(Serialize)]` as forward-looking metadata (no code serializes
//! yet), so this shim provides `Serialize` as a marker trait plus the derive
//! macro from the vendored `serde_derive`. Swapping in real serde later is a
//! manifest change only.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
///
/// The real trait's `serialize` method is deliberately absent: nothing in the
/// workspace serializes yet, and a marker keeps the shim honest — code that
/// actually needs serialization will fail to compile here rather than
/// silently do nothing.
pub trait Serialize {}

pub use serde_derive::Serialize;

impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl Serialize for String {}
impl Serialize for str {}
impl Serialize for bool {}
impl Serialize for f32 {}
impl Serialize for f64 {}
impl Serialize for u8 {}
impl Serialize for u16 {}
impl Serialize for u32 {}
impl Serialize for u64 {}
impl Serialize for usize {}
impl Serialize for i8 {}
impl Serialize for i16 {}
impl Serialize for i32 {}
impl Serialize for i64 {}
impl Serialize for isize {}

#[cfg(test)]
mod tests {
    use crate as serde;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Plain {
        #[allow(dead_code)]
        x: u32,
    }

    fn assert_serialize<T: Serialize>() {}

    #[test]
    fn derive_produces_an_impl() {
        assert_serialize::<Plain>();
        assert_serialize::<Vec<String>>();
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the slice of serde the workspace actually uses: a [`Serialize`] trait, a
//! derive for named-field structs (from the vendored `serde_derive`), and a
//! JSON backend in [`json`] standing in for `serde_json` (`json::to_string`,
//! `json::to_string_pretty`, `json::from_str`).
//!
//! The API is deliberately smaller than real serde's: instead of the visitor
//! architecture, [`Serialize`] converts straight to a [`json::Value`]
//! document. Swapping in real serde later means replacing
//! `serde::json::to_string(&report)` call sites with
//! `serde_json::to_string(&report)` — the `#[derive(Serialize)]` annotations
//! carry over unchanged.

#![forbid(unsafe_code)]

pub mod json;

/// Conversion to a JSON document, standing in for `serde::Serialize`.
///
/// Derivable for named-field structs via the vendored `serde_derive`.
pub trait Serialize {
    /// The JSON representation of `self`.
    fn to_json(&self) -> json::Value;
}

pub use serde_derive::Serialize;

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> json::Value {
        match self {
            Some(v) => v.to_json(),
            None => json::Value::Null,
        }
    }
}

impl Serialize for json::Value {
    fn to_json(&self) -> json::Value {
        self.clone()
    }
}

impl Serialize for String {
    fn to_json(&self) -> json::Value {
        json::Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> json::Value {
        json::Value::Str(self.to_owned())
    }
}

impl Serialize for bool {
    fn to_json(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> json::Value {
        json::Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> json::Value {
        json::Value::Float(*self)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                json::Value::UInt(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                json::Value::Int(*self as i64)
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use crate as serde;
    use crate::json::Value;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Plain {
        x: u32,
        label: String,
    }

    #[derive(Serialize)]
    struct Nested {
        name: &'static str,
        inner: Vec<Plain>,
        maybe: Option<f64>,
        ratio: Option<f64>,
    }

    #[test]
    fn derive_serializes_named_fields_in_order() {
        let p = Plain {
            x: 7,
            label: "hi".into(),
        };
        assert_eq!(serde::json::to_string(&p), r#"{"x":7,"label":"hi"}"#);
    }

    #[test]
    fn derive_handles_nesting_options_and_references() {
        let n = Nested {
            name: "run",
            inner: vec![Plain {
                x: 1,
                label: "a".into(),
            }],
            maybe: None,
            ratio: Some(0.5),
        };
        assert_eq!(
            serde::json::to_string(&n),
            r#"{"name":"run","inner":[{"x":1,"label":"a"}],"maybe":null,"ratio":0.5}"#
        );
    }

    #[test]
    fn primitive_impls_cover_the_numeric_tower() {
        assert_eq!(1u64.to_json(), Value::UInt(1));
        assert_eq!((-1i32).to_json(), Value::Int(-1));
        assert_eq!(2.5f32.to_json(), Value::Float(2.5));
        assert_eq!(true.to_json(), Value::Bool(true));
        assert_eq!("s".to_json(), Value::Str("s".into()));
        assert_eq!(vec![1u8, 2].to_json().as_array().unwrap().len(), 2);
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the (small) subset of the `rand` 0.8 API that the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`]. The generator is SplitMix64 —
//! deterministic for a seed, statistically solid for data generation, and
//! explicitly **not** cryptographic (neither is the real `SmallRng`).

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from a single `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator (the shim's analogue
/// of sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value from the range. Panics when the range is empty, like
    /// the real `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let i = rng.gen_range(0..10usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..100 {
            let i = rng.gen_range(3..=5u32);
            assert!((3..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the subset of Criterion's API that the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It measures wall-clock time with a short
//! warmup, auto-calibrated iteration counts, and prints a mean per iteration.
//! It performs no statistical analysis or HTML reporting.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export of the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// An identifier of one benchmark within a group: a function name plus a
/// parameter value, rendered as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the routine.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    last_mean: Duration,
}

impl Bencher {
    /// Times `routine`, auto-calibrating the iteration count to the group's
    /// per-benchmark time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: one untimed run to estimate the cost.
        let t = Instant::now();
        black_box(routine());
        let once = t.elapsed().max(Duration::from_nanos(1));

        let per_sample = self.budget / self.samples.max(1) as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000) as usize;

        let mut total = Duration::ZERO;
        let mut measured = 0usize;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            total += t.elapsed();
            measured += iters;
            if total > self.budget {
                break;
            }
        }
        self.last_mean = total / measured.max(1) as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            // Keep shim runs quick: cap the per-benchmark budget well below
            // real Criterion's defaults.
            budget: self.measurement_time.min(Duration::from_millis(500)),
            last_mean: Duration::ZERO,
        };
        routine(&mut b, input);
        println!("bench {}/{id}: {:?}/iter", self.name, b.last_mean);
        self
    }

    /// Benchmarks a routine with no explicit input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| routine(b))
    }

    /// Finishes the group (a no-op in the shim, kept for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_with_input(BenchmarkId::from_parameter("default"), &(), |b, ()| {
            routine(b)
        });
        group.finish();
        self
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench target built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 1), &3u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert!(runs > 0, "the routine must actually run");
    }

    #[test]
    fn id_renders_name_and_param() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}

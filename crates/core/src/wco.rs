//! Worst-case-optimal generic join: the `wco` engine and its cyclic views.
//!
//! [`WcoEngine`] evaluates conjunctive queries by **variable extension**
//! instead of the Wireframe engine's edge extension: variables are bound
//! one at a time along a catalog-chosen order, and each step intersects the
//! sorted neighbor slices of every pattern that constrains the new variable
//! (leapfrog-style, smallest slice first). The per-step candidate set is
//! bounded by the *smallest* constraining slice, which is what makes the
//! strategy worst-case optimal on cyclic shapes — a triangle never
//! materializes the quadratic open wedge the edge-at-a-time pipeline builds
//! before burning it back.
//!
//! The output is deliberately the same factorized artifact the rest of the
//! workspace speaks: an [`AnswerGraph`]. Every data edge that supports a
//! surviving candidate is recorded **at bind time**, so the recorded set
//! sandwiches between the ideal answer graph and the matching data edges —
//! and defactorization (which re-joins all patterns simultaneously) is
//! embedding-exact for any graph in that sandwich. A single node-burnback
//! cascade ([`crate::sharded::settle_candidates`]) then settles the
//! candidates to a subset of the node-burnback fixpoint, so the artifact is
//! never larger than the Wireframe engine's and all downstream machinery
//! (defactorization, streaming, sharded merge, views) works unchanged.
//!
//! **Cyclic views.** Because the recorded graph can sit *below* the
//! node-burnback fixpoint, [`MaterializedQuery`]'s revive-closure
//! maintenance (which only re-pulls edges incident to revived nodes) is not
//! sound here: a brand-new embedding among already-live nodes whose edge
//! leapfrog pruned would stay missing. [`WcoView`] therefore maintains by
//! **delta rules**: one rule per `(inserted triple, matching pattern)`
//! seeds that pattern's variables from the triple and re-runs the leapfrog
//! extension for the remaining variables, recording at bind time into the
//! retained graph. Any new embedding must use at least one inserted edge in
//! some pattern, so the rule family covers all of them; tombstones and one
//! settling burnback handle the rest. This is what finally makes **cyclic
//! queries maintainable** — the configuration the Wireframe engine declines
//! (`maintainable_cyclic` off under edge burnback) and serving layers used
//! to evict for.
//!
//! The maintained graph stays embedding-exact but may drift *above* the
//! size a fresh `wco` run would produce (delta rules record support the
//! fresh leapfrog would never visit); equivalence tests therefore compare
//! embeddings, not answer-graph bytes.

use std::collections::HashSet;
use std::time::Instant;

use wireframe_api::{
    Engine, EngineCapabilities, Evaluation, Factorized, MaintainedView, MaintenanceInfo,
    MaintenanceStats, PreparedQuery, Timings, WireframeError,
};
use wireframe_graph::{slices, EdgeDelta, End, Graph, NodeId, PredId};
use wireframe_query::{ConjunctiveQuery, EmbeddingSet, QueryGraph, Term, Var};

use crate::answer_graph::AnswerGraph;
use crate::config::EvalOptions;
use crate::defactorize::{defactorize, embedding_plan, DefactorizationStats};
use crate::error::EngineError;
use crate::generate::GenerationStats;
use crate::maintain::{ends_match, ProvenanceIndex};
use crate::parallel::{defactorize_parallel, ParallelOptions};
use crate::planner::{self, Plan};
use crate::sharded::{cleared_answer_graph, settle_candidates};

/// The prepared artifact of the `wco` engine: the catalog-scored variable
/// extension order, plus the Edgifier plan (kept for its cost metadata and
/// its connectivity check — phase two and the uniform `plan_order` metric
/// still speak pattern indexes).
#[derive(Debug, Clone)]
pub struct WcoPlan {
    order: Vec<Var>,
    cyclic: bool,
    plan: Plan,
}

impl WcoPlan {
    /// The variable extension order, most selective first.
    pub fn order(&self) -> &[Var] {
        &self.order
    }

    /// Whether the query graph is cyclic.
    pub fn cyclic(&self) -> bool {
        self.cyclic
    }
}

/// Per-variable selectivity scores from the statistics catalog: the minimum,
/// over the variable's incident pattern ends, of the number of distinct
/// values that end takes (a constant other end pins the score to 1 — one
/// slice lookup). Smaller is more selective; the catalog is bit-identical
/// across storage backends, so so is the order derived from these.
fn catalog_scores(graph: &Graph, query: &ConjunctiveQuery) -> Vec<f64> {
    let catalog = graph.catalog();
    let mut scores = vec![f64::INFINITY; query.num_vars()];
    for pat in query.patterns() {
        let arms = [
            (pat.subject, pat.object, End::Subject),
            (pat.object, pat.subject, End::Object),
        ];
        for (term, other, end) in arms {
            if let Some(v) = term.as_var() {
                let s = if matches!(other, Term::Const(_)) {
                    1.0
                } else {
                    catalog.unigram(pat.predicate).distinct(end).max(1) as f64
                };
                if s < scores[v.index()] {
                    scores[v.index()] = s;
                }
            }
        }
    }
    scores
}

/// The extension order for one delta rule: the seeded variables are already
/// bound, the remaining ones extend greedily from the bound region by the
/// same catalog scores the full order uses (ties broken by variable index).
fn delta_order(qg: &QueryGraph, scores: &[f64], seeded: &[Var], num_vars: usize) -> Vec<Var> {
    let mut bound = vec![false; num_vars];
    for &v in seeded {
        bound[v.index()] = true;
    }
    let mut order = Vec::new();
    loop {
        let mut best: Option<(f64, Var)> = None;
        let mut fallback: Option<(f64, Var)> = None;
        for vi in 0..num_vars {
            let v = Var(vi as u32);
            if bound[vi] {
                continue;
            }
            let adjacent = qg.neighbors(v).iter().any(|u| bound[u.index()]);
            let slot = if adjacent { &mut best } else { &mut fallback };
            let better = match *slot {
                Some((bs, bv)) => scores[vi] < bs || (scores[vi] == bs && vi < bv.index()),
                None => true,
            };
            if better {
                *slot = Some((scores[vi], v));
            }
        }
        let Some((_, v)) = best.or(fallback) else {
            break;
        };
        bound[v.index()] = true;
        order.push(v);
    }
    order
}

/// The end a step constraint resolves its *other* side from.
#[derive(Debug, Clone, Copy)]
enum OtherEnd {
    /// A pattern constant.
    Const(NodeId),
    /// A variable bound at an earlier step (or seeded).
    Bound(Var),
}

/// How one pattern constrains the variable being bound at a step.
#[derive(Debug, Clone, Copy)]
enum ConstraintKind {
    /// The step variable is the pattern's subject; candidates come from
    /// `subjects_of(p, other)`.
    Subject(OtherEnd),
    /// The step variable is the pattern's object; candidates come from
    /// `objects_of(p, other)`.
    Object(OtherEnd),
    /// A `?v p ?v` self-loop: a per-candidate `has_triple(n, p, n)` filter.
    SelfLoop,
}

/// One pattern's contribution to a step: the slice (or filter) it
/// constrains the candidates with, and the answer-graph edge it records for
/// each survivor.
#[derive(Debug, Clone, Copy)]
struct Constraint {
    q: usize,
    p: PredId,
    kind: ConstraintKind,
}

/// One variable-extension step.
#[derive(Debug)]
struct Step {
    var: Var,
    constraints: Vec<Constraint>,
}

/// A neighbor slice, borrowed when the backend stores adjacency sorted and
/// copied-and-sorted when it does not (the map store), so the leapfrog
/// intersection always sees sorted input.
enum SliceRef<'g> {
    Borrowed(&'g [NodeId]),
    Owned(Vec<NodeId>),
}

impl SliceRef<'_> {
    fn as_slice(&self) -> &[NodeId] {
        match self {
            SliceRef::Borrowed(s) => s,
            SliceRef::Owned(v) => v,
        }
    }
}

/// The leapfrog extension machine, shared by full evaluation (no seed) and
/// the delta rules of view maintenance (pattern variables seeded from an
/// inserted triple). Survivor edges are streamed into `sink` at bind time.
struct Extender<'g, 'q> {
    graph: &'g Graph,
    query: &'q ConjunctiveQuery,
    sorted: bool,
    edge_walks: u64,
}

impl<'g, 'q> Extender<'g, 'q> {
    fn new(graph: &'g Graph, query: &'q ConjunctiveQuery) -> Self {
        Extender {
            graph,
            query,
            sorted: graph.neighbors_sorted(),
            edge_walks: 0,
        }
    }

    /// Runs the extension over `order` with `prebound` seed bindings,
    /// emitting every recorded `(pattern, subject, object)` edge to `sink`.
    /// Returns `false` when a pattern fully covered by the seed (or by
    /// constants alone) is absent from the data — the rule is vacuous and
    /// nothing was emitted.
    fn run(
        &mut self,
        order: &[Var],
        prebound: &[(Var, NodeId)],
        sink: &mut dyn FnMut(usize, NodeId, NodeId),
    ) -> bool {
        let num_vars = self.query.num_vars();
        let mut binding: Vec<Option<NodeId>> = vec![None; num_vars];
        // Position 0 is "known before any step": constants and seeds.
        let mut pos: Vec<usize> = vec![usize::MAX; num_vars];
        for &(v, n) in prebound {
            binding[v.index()] = Some(n);
            pos[v.index()] = 0;
        }
        for (i, &v) in order.iter().enumerate() {
            pos[v.index()] = i + 1;
        }

        let term_pos = |t: Term| match t {
            Term::Const(_) => 0,
            Term::Var(v) => pos[v.index()],
        };

        // Classify every pattern: fully seeded patterns validate (and
        // record) up front; all others attach to the step where their last
        // end binds.
        let mut steps: Vec<Step> = order
            .iter()
            .map(|&v| Step {
                var: v,
                constraints: Vec::new(),
            })
            .collect();
        let mut seeds: Vec<(usize, NodeId, NodeId)> = Vec::new();
        for (q, pat) in self.query.patterns().iter().enumerate() {
            let (sp, op) = (term_pos(pat.subject), term_pos(pat.object));
            debug_assert!(
                sp != usize::MAX && op != usize::MAX,
                "extension order must cover every variable"
            );
            let value = |t: Term| match t {
                Term::Const(c) => c,
                Term::Var(v) => binding[v.index()].expect("seeded variable is bound"),
            };
            if sp == 0 && op == 0 {
                let (s, o) = (value(pat.subject), value(pat.object));
                self.edge_walks += 1;
                if !ends_match(pat, s, o) || !self.graph.has_triple(s, pat.predicate, o) {
                    return false;
                }
                seeds.push((q, s, o));
                continue;
            }
            let other_end = |t: Term| match t {
                Term::Const(c) => OtherEnd::Const(c),
                Term::Var(v) => OtherEnd::Bound(v),
            };
            let kind = match (pat.subject, pat.object) {
                (Term::Var(a), Term::Var(b)) if a == b => ConstraintKind::SelfLoop,
                _ if sp > op => ConstraintKind::Subject(other_end(pat.object)),
                _ => ConstraintKind::Object(other_end(pat.subject)),
            };
            let at = sp.max(op) - 1;
            steps[at].constraints.push(Constraint {
                q,
                p: pat.predicate,
                kind,
            });
        }

        for &(q, s, o) in &seeds {
            sink(q, s, o);
        }
        if !steps.is_empty() {
            self.extend(&steps, 0, &mut binding, sink);
        }
        true
    }

    fn resolve(binding: &[Option<NodeId>], other: OtherEnd) -> NodeId {
        match other {
            OtherEnd::Const(c) => c,
            OtherEnd::Bound(w) => binding[w.index()].expect("earlier step bound this variable"),
        }
    }

    fn constraint_slice(
        &mut self,
        c: &Constraint,
        binding: &[Option<NodeId>],
    ) -> Option<SliceRef<'g>> {
        let raw = match c.kind {
            ConstraintKind::Subject(other) => {
                self.graph.subjects_of(c.p, Self::resolve(binding, other))
            }
            ConstraintKind::Object(other) => {
                self.graph.objects_of(c.p, Self::resolve(binding, other))
            }
            ConstraintKind::SelfLoop => return None,
        };
        self.edge_walks += raw.len() as u64;
        Some(if self.sorted {
            SliceRef::Borrowed(raw)
        } else {
            let mut copy = raw.to_vec();
            copy.sort_unstable();
            SliceRef::Owned(copy)
        })
    }

    /// The candidate universe for a step with no slice constraints (the
    /// first variable of a run, typically): the step variable's endpoint
    /// values in its cheapest incident pattern.
    fn universe(&mut self, v: Var) -> Vec<NodeId> {
        let mut best: Option<(usize, usize)> = None;
        for (q, pat) in self.query.patterns().iter().enumerate() {
            if pat.subject.as_var() == Some(v) || pat.object.as_var() == Some(v) {
                let card = self.graph.predicate_cardinality(pat.predicate);
                if best.is_none_or(|(bc, _)| card < bc) {
                    best = Some((card, q));
                }
            }
        }
        let Some((_, q)) = best else {
            return Vec::new();
        };
        let pat = &self.query.patterns()[q];
        let self_loop = pat.subject.as_var() == Some(v) && pat.object.as_var() == Some(v);
        let pairs = self.graph.pairs(pat.predicate);
        self.edge_walks += pairs.len() as u64;
        let mut out: Vec<NodeId> = Vec::with_capacity(pairs.len());
        for &(s, o) in pairs.iter() {
            if self_loop {
                if s == o {
                    out.push(s);
                }
            } else if pat.subject.as_var() == Some(v) {
                out.push(s);
            } else {
                out.push(o);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn extend(
        &mut self,
        steps: &[Step],
        depth: usize,
        binding: &mut Vec<Option<NodeId>>,
        sink: &mut dyn FnMut(usize, NodeId, NodeId),
    ) {
        let step = &steps[depth];

        let mut holders: Vec<SliceRef<'g>> = Vec::new();
        for c in &step.constraints {
            if let Some(slice) = self.constraint_slice(c, binding) {
                holders.push(slice);
            }
        }
        let mut candidates: Vec<NodeId> = if holders.is_empty() {
            self.universe(step.var)
        } else {
            // Leapfrog: intersect smallest-first so every later pass scans
            // no more than the current survivor set.
            let mut by_len: Vec<usize> = (0..holders.len()).collect();
            by_len.sort_unstable_by_key(|&i| holders[i].as_slice().len());
            let mut current = holders[by_len[0]].as_slice().to_vec();
            let mut buf = Vec::new();
            for &i in &by_len[1..] {
                if current.is_empty() {
                    break;
                }
                buf.clear();
                slices::intersect_sorted(&current, holders[i].as_slice(), &mut buf);
                std::mem::swap(&mut current, &mut buf);
            }
            current
        };
        for c in &step.constraints {
            if matches!(c.kind, ConstraintKind::SelfLoop) {
                self.edge_walks += candidates.len() as u64;
                let (graph, p) = (self.graph, c.p);
                candidates.retain(|&n| graph.has_triple(n, p, n));
            }
        }

        for &n in &candidates {
            binding[step.var.index()] = Some(n);
            // Record the survivor's supporting edges at bind time: every
            // real embedding extends through here, so the recorded set
            // contains the ideal answer graph; every recorded edge is a
            // matching data edge, so defactorization stays exact.
            for c in &step.constraints {
                match c.kind {
                    ConstraintKind::Subject(other) => sink(c.q, n, Self::resolve(binding, other)),
                    ConstraintKind::Object(other) => sink(c.q, Self::resolve(binding, other), n),
                    ConstraintKind::SelfLoop => sink(c.q, n, n),
                }
            }
            if depth + 1 < steps.len() {
                self.extend(steps, depth + 1, binding, sink);
            }
        }
        binding[step.var.index()] = None;
    }
}

/// The worst-case-optimal generic-join engine over one graph.
#[derive(Debug, Clone, Copy)]
pub struct WcoEngine<'g> {
    graph: &'g Graph,
    options: EvalOptions,
}

impl<'g> WcoEngine<'g> {
    /// Creates an engine with default options.
    pub fn new(graph: &'g Graph) -> Self {
        WcoEngine {
            graph,
            options: EvalOptions::default(),
        }
    }

    /// Creates an engine with explicit evaluation options.
    ///
    /// `edge_burnback` is ignored: leapfrog recording already lands at or
    /// below the node-burnback fixpoint, so there is nothing for the
    /// Triangulator to prune and views stay maintainable on every shape.
    pub fn with_options(graph: &'g Graph, options: EvalOptions) -> Self {
        WcoEngine { graph, options }
    }

    /// The graph this engine evaluates against.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The evaluation options in effect.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// Plans the variable extension order (and the Edgifier metadata plan)
    /// without executing anything.
    pub fn plan(&self, query: &ConjunctiveQuery) -> Result<WcoPlan, EngineError> {
        let plan = planner::plan(self.graph, query, self.options.planner)?;
        let qg = QueryGraph::new(query);
        let scores = catalog_scores(self.graph, query);
        let order = qg.connected_order(|v| scores[v.index()]);
        Ok(WcoPlan {
            order,
            cyclic: qg.is_cyclic(),
            plan,
        })
    }

    /// Runs the leapfrog extension and settles the recorded candidates into
    /// an answer graph at (or below) the node-burnback fixpoint.
    fn build_answer_graph(
        &self,
        query: &ConjunctiveQuery,
        order: &[Var],
    ) -> (AnswerGraph, GenerationStats) {
        let mut ext = Extender::new(self.graph, query);
        let mut sets: Vec<HashSet<(NodeId, NodeId)>> = vec![HashSet::new(); query.num_patterns()];
        ext.run(order, &[], &mut |q, s, o| {
            sets[q].insert((s, o));
        });
        let mut stats = GenerationStats {
            edge_walks: ext.edge_walks,
            ..GenerationStats::default()
        };

        let mut ag = AnswerGraph::new(query);
        let mut empty_pattern = false;
        for (q, set) in sets.into_iter().enumerate() {
            let mut edges: Vec<(NodeId, NodeId)> = set.into_iter().collect();
            edges.sort_unstable();
            stats.edges_added += edges.len() as u64;
            empty_pattern |= edges.is_empty();
            if !edges.is_empty() {
                ag.pattern_mut(q).bulk_load(edges);
            }
            ag.mark_materialized(q);
        }
        if empty_pattern {
            return (cleared_answer_graph(query), stats);
        }

        let settled = settle_candidates(query, &mut ag);
        stats.edges_burned += settled.edges_burned as u64;
        stats.nodes_burned += settled.nodes_burned as u64;
        if ag.has_empty_pattern() {
            ag = cleared_answer_graph(query);
        }
        (ag, stats)
    }

    /// Evaluates phase one and wraps the result into a retained,
    /// maintainable [`WcoView`].
    pub fn materialize_query(
        &self,
        query: &ConjunctiveQuery,
        wplan: &WcoPlan,
    ) -> (WcoView, Timings) {
        let t = Instant::now();
        let (answer_graph, generation) = self.build_answer_graph(query, &wplan.order);
        let timings = Timings {
            answer_graph: t.elapsed(),
            ..Timings::default()
        };
        let view = WcoView {
            query: query.clone(),
            order: wplan.order.clone(),
            plan: wplan.plan.clone(),
            cyclic: wplan.cyclic,
            provenance: ProvenanceIndex::new(query),
            answer_graph,
            generation,
            options: self.options,
            epoch: 0,
            info: MaintenanceInfo::default(),
        };
        (view, timings)
    }

    fn wco_plan<'a>(
        &self,
        prepared: &'a PreparedQuery,
        owned: &'a mut Option<WcoPlan>,
    ) -> Result<&'a WcoPlan, EngineError> {
        match prepared.plan::<WcoPlan>() {
            Some(p) => Ok(p),
            None => {
                *owned = Some(self.plan(prepared.query())?);
                Ok(owned.as_ref().expect("just stored"))
            }
        }
    }
}

impl Engine for WcoEngine<'_> {
    fn name(&self) -> &'static str {
        "wco"
    }

    fn prepare(&self, query: &ConjunctiveQuery) -> Result<PreparedQuery, WireframeError> {
        let wplan = self.plan(query)?;
        Ok(PreparedQuery::new(self.name(), query.clone()).with_payload(wplan))
    }

    fn evaluate(&self, prepared: &PreparedQuery) -> Result<Evaluation, WireframeError> {
        self.check_prepared(prepared)?;
        let t = Instant::now();
        let mut owned = None;
        let wplan = self.wco_plan(prepared, &mut owned)?;
        let planning = t.elapsed();
        let (view, mut timings) = self.materialize_query(prepared.query(), wplan);
        timings.planning = planning;

        let t = Instant::now();
        let (embeddings, defact) = view.defactorize()?;
        timings.defactorization = t.elapsed();
        timings.defactorization_cpu = defact.cpu;

        let factorized = view.factorized();
        let metrics = factorized.metrics(defact.peak_intermediate as u64);
        let explain = self
            .options
            .explain
            .then(|| view.explain_text(&defact, embeddings.len()));
        Ok(Evaluation {
            engine: self.name().to_owned(),
            epochs: Vec::new(),
            embeddings,
            timings,
            cyclic: view.cyclic,
            factorized: Some(factorized),
            metrics,
            explain,
            maintenance: None,
            limited: None,
        })
    }

    /// Always: delta-rule maintenance covers every query shape, cyclic
    /// included.
    fn supports_maintenance(&self) -> bool {
        true
    }

    fn capabilities(&self) -> EngineCapabilities {
        EngineCapabilities {
            cyclic: true,
            factorizes: true,
            maintainable: true,
            maintainable_cyclic: true,
            parallel_defactorize: true,
            sharded_merge: true,
        }
    }

    fn materialize(
        &self,
        prepared: &PreparedQuery,
    ) -> Result<Option<Box<dyn MaintainedView>>, WireframeError> {
        self.check_prepared(prepared)?;
        let mut owned = None;
        let wplan = self.wco_plan(prepared, &mut owned)?;
        let (view, _timings) = self.materialize_query(prepared.query(), wplan);
        Ok(Some(Box::new(view)))
    }
}

/// A retained `wco` evaluation, incrementally maintainable on **every**
/// query shape — cyclic queries included — via delta rules (see the module
/// docs for why [`MaterializedQuery`]'s revive closure cannot be reused
/// here, and why the maintained graph may drift above a fresh run's size
/// while staying embedding-exact).
///
/// [`MaterializedQuery`]: crate::MaterializedQuery
#[derive(Debug, Clone)]
pub struct WcoView {
    query: ConjunctiveQuery,
    order: Vec<Var>,
    plan: Plan,
    cyclic: bool,
    provenance: ProvenanceIndex,
    answer_graph: AnswerGraph,
    generation: GenerationStats,
    options: EvalOptions,
    epoch: u64,
    info: MaintenanceInfo,
}

impl WcoView {
    /// The query this view answers.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The maintained answer graph.
    pub fn answer_graph(&self) -> &AnswerGraph {
        &self.answer_graph
    }

    /// The variable extension order the view was built with.
    pub fn order(&self) -> &[Var] {
        &self.order
    }

    /// Whether the query graph is cyclic.
    pub fn cyclic(&self) -> bool {
        self.cyclic
    }

    /// Phase-one statistics of the original materialization.
    pub fn generation(&self) -> &GenerationStats {
        &self.generation
    }

    /// Folds one mutation batch's net `delta` into the retained answer
    /// graph and stamps `epoch`. `graph` must be the post-mutation graph.
    ///
    /// Tombstoned edges are dropped from every pattern they were bound to
    /// (phase A); each inserted edge seeds one delta rule per pattern it
    /// matches, re-running the leapfrog extension for the remaining
    /// variables and recording survivors into the retained graph (phase B);
    /// one settling burnback re-derives the node sets and cascades to the
    /// fixpoint (phase C). Work is `O(|delta| · rule cost + |AG|)`.
    pub fn maintain(&mut self, graph: &Graph, delta: &EdgeDelta, epoch: u64) -> MaintenanceStats {
        let start = Instant::now();
        let mut stats = MaintenanceStats::default();
        let touched: Vec<PredId> = self.provenance.predicates().collect();

        // Phase A — tombstones.
        let mut dirty = false;
        for &p in &touched {
            for t in delta.removed_for(p) {
                for &q in self.provenance.patterns_for(p) {
                    let pat = self.query.patterns()[q];
                    if !ends_match(&pat, t.subject, t.object) {
                        continue;
                    }
                    if self.answer_graph.pattern_mut(q).remove(t.subject, t.object) {
                        stats.candidate_removals += 1;
                        stats.edges_removed += 1;
                        dirty = true;
                    }
                }
            }
        }

        // Phase B — delta rules: one per (inserted triple, matching
        // pattern). The rule seeds the pattern's variables from the triple
        // and leapfrogs the rest; at-bind recording writes straight into
        // the retained graph.
        let query = &self.query;
        let ag = &mut self.answer_graph;
        let qg = QueryGraph::new(query);
        let scores = catalog_scores(graph, query);
        let mut ext = Extender::new(graph, query);
        for &p in &touched {
            for t in delta.inserted_for(p) {
                for &q in self.provenance.patterns_for(p) {
                    let pat = query.patterns()[q];
                    if !ends_match(&pat, t.subject, t.object) {
                        continue;
                    }
                    let was_known = ag.pattern(q).contains(t.subject, t.object);
                    let mut prebound: Vec<(Var, NodeId)> = Vec::new();
                    if let Some(v) = pat.subject.as_var() {
                        prebound.push((v, t.subject));
                    }
                    if let Some(w) = pat.object.as_var() {
                        if prebound.iter().all(|&(u, _)| u != w) {
                            prebound.push((w, t.object));
                        }
                    }
                    let seeded: Vec<Var> = prebound.iter().map(|&(v, _)| v).collect();
                    let order = delta_order(&qg, &scores, &seeded, query.num_vars());
                    let mut added = 0usize;
                    ext.run(&order, &prebound, &mut |qi, s, o| {
                        if ag.pattern_mut(qi).insert(s, o) {
                            added += 1;
                        }
                    });
                    if added > 0 {
                        stats.edges_added += added;
                        dirty = true;
                        if !was_known && ag.pattern(q).contains(t.subject, t.object) {
                            stats.candidate_inserts += 1;
                        }
                    }
                }
            }
        }

        // Phase C — settle: re-derive the node sets from the maintained
        // pattern edges and burn back to the fixpoint. Simpler than suspect
        // tracking and O(|AG|) — the factorized artifact is small by design.
        if dirty {
            let before: Vec<Vec<NodeId>> = query
                .variables()
                .map(|v| ag.node_set(v).to_sorted_vec())
                .collect();
            if ag.has_empty_pattern() {
                *ag = cleared_answer_graph(query);
            } else {
                let settled = settle_candidates(query, ag);
                stats.edges_removed += settled.edges_burned;
                stats.frontier_nodes = settled.frontier;
                if ag.has_empty_pattern() {
                    *ag = cleared_answer_graph(query);
                }
            }
            for (v, old) in query.variables().zip(before) {
                let new = ag.node_set(v).to_sorted_vec();
                let (mut i, mut j) = (0, 0);
                while i < old.len() || j < new.len() {
                    match (old.get(i), new.get(j)) {
                        (Some(a), Some(b)) if a == b => {
                            i += 1;
                            j += 1;
                        }
                        (Some(a), Some(b)) if a < b => {
                            stats.nodes_removed += 1;
                            i += 1;
                        }
                        (Some(_), Some(_)) | (None, Some(_)) => {
                            stats.nodes_added += 1;
                            j += 1;
                        }
                        (Some(_), None) => {
                            stats.nodes_removed += 1;
                            i += 1;
                        }
                        (None, None) => unreachable!(),
                    }
                }
            }
        }

        self.epoch = epoch;
        self.info.maintained_epoch = epoch;
        self.info.passes += 1;
        self.info.frontier_nodes += stats.frontier_nodes as u64;
        self.info.maintenance_us += start.elapsed().as_micros() as u64;
        stats
    }

    /// Phase two on demand: defactorizes the current answer graph into
    /// projected embeddings (never retained, only re-derived).
    pub fn defactorize(&self) -> Result<(EmbeddingSet, DefactorizationStats), EngineError> {
        let (full, stats) = if self.options.threads == 1 {
            let order = embedding_plan(&self.query, &self.answer_graph);
            defactorize(&self.query, &self.answer_graph, &order)?
        } else {
            defactorize_parallel(
                &self.query,
                &self.answer_graph,
                &ParallelOptions::for_threads(self.options.threads),
            )?
        };
        let embeddings = full.into_projected_set(&self.query).ok_or_else(|| {
            EngineError::Internal("projection referenced a variable missing from the result".into())
        })?;
        Ok((embeddings, stats))
    }

    fn factorized(&self) -> Factorized {
        Factorized {
            answer_graph_edges: self.answer_graph.total_edges(),
            plan_order: self.plan.order.clone(),
            edge_walks: self.generation.edge_walks,
            edges_burned: self.generation.edges_burned,
            nodes_burned: self.generation.nodes_burned,
            edge_burnback_removed: 0,
        }
    }

    fn explain_text(&self, defact: &DefactorizationStats, embeddings: usize) -> String {
        use std::fmt::Write as _;
        let order: Vec<String> = self
            .order
            .iter()
            .map(|&v| format!("?{}", self.query.var_name(v)))
            .collect();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "wco generic join (epoch {}, {} maintenance pass(es)):",
            self.info.maintained_epoch, self.info.passes
        );
        let _ = writeln!(
            out,
            "  variable order [{}]   |AG| = {} answer edges across {} query edges{}",
            order.join(", "),
            self.answer_graph.total_edges(),
            self.query.num_patterns(),
            if self.cyclic { "  (cyclic query)" } else { "" }
        );
        let _ = writeln!(
            out,
            "phase 2 (defactorization, on demand):\n  join order {:?}   peak intermediate {}   embeddings {}",
            defact.join_order, defact.peak_intermediate, embeddings
        );
        out
    }
}

impl MaintainedView for WcoView {
    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.info.maintained_epoch = epoch;
    }

    fn maintain(&mut self, graph: &Graph, delta: &EdgeDelta, epoch: u64) -> MaintenanceStats {
        WcoView::maintain(self, graph, delta, epoch)
    }

    fn evaluate(&self) -> Result<Evaluation, WireframeError> {
        let t = Instant::now();
        let (embeddings, defact) = self.defactorize()?;
        let timings = Timings {
            defactorization: t.elapsed(),
            defactorization_cpu: defact.cpu,
            ..Timings::default()
        };
        let factorized = self.factorized();
        let metrics = factorized.metrics(defact.peak_intermediate as u64);
        let explain = self
            .options
            .explain
            .then(|| self.explain_text(&defact, embeddings.len()));
        Ok(Evaluation {
            engine: "wco".to_owned(),
            epochs: Vec::new(),
            embeddings,
            timings,
            cyclic: self.cyclic,
            factorized: Some(factorized),
            metrics,
            explain,
            maintenance: Some(self.info),
            limited: None,
        })
    }

    fn info(&self) -> MaintenanceInfo {
        self.info
    }

    fn clone_view(&self) -> Box<dyn MaintainedView> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WireframeEngine;
    use wireframe_graph::{GraphBuilder, Mutation, StoreKind};
    use wireframe_query::parse_query;

    fn triangle_graph(kind: StoreKind) -> Graph {
        let mut b = GraphBuilder::new();
        // Two proper triangles plus open wedges that edge-at-a-time
        // pipelines materialize and burn back.
        for (s, p, o) in [
            ("a", "A", "b"),
            ("b", "B", "c"),
            ("c", "C", "a"),
            ("d", "A", "e"),
            ("e", "B", "f"),
            ("f", "C", "d"),
            ("a", "A", "x"),
            ("x", "B", "y"),
            ("y", "C", "z"),
            ("g", "A", "b"),
            ("h", "B", "c"),
        ] {
            b.add(s, p, o);
        }
        b.build_with_store(kind)
    }

    fn triangle_query(g: &Graph) -> ConjunctiveQuery {
        parse_query(
            "SELECT * WHERE { ?x :A ?y . ?y :B ?z . ?z :C ?x . }",
            g.dictionary(),
        )
        .unwrap()
    }

    fn assert_same_answer(g: &Graph, q: &ConjunctiveQuery, context: &str) {
        let wco = WcoEngine::new(g);
        let reference = WireframeEngine::new(g).execute(q).unwrap();
        let prepared = wco.prepare(q).unwrap();
        let ev = wco.evaluate(&prepared).unwrap();
        assert!(
            ev.embeddings.same_answer(reference.embeddings()),
            "{context}: embeddings differ from the wireframe engine"
        );
        assert!(
            ev.answer_graph_size().unwrap() <= reference.answer_graph_size(),
            "{context}: leapfrog recording must not exceed the node-burnback fixpoint"
        );
    }

    #[test]
    fn triangles_match_the_wireframe_engine_on_all_stores() {
        for kind in [StoreKind::Csr, StoreKind::Map, StoreKind::Delta] {
            let g = triangle_graph(kind);
            let q = triangle_query(&g);
            assert_same_answer(&g, &q, &format!("triangle on {kind:?}"));
        }
    }

    #[test]
    fn wco_answer_graph_is_store_deterministic() {
        let reference: Vec<Vec<(NodeId, NodeId)>> = {
            let g = triangle_graph(StoreKind::Csr);
            let q = triangle_query(&g);
            let wco = WcoEngine::new(&g);
            let wplan = wco.plan(&q).unwrap();
            let (view, _) = wco.materialize_query(&q, &wplan);
            (0..q.num_patterns())
                .map(|qi| {
                    let mut edges: Vec<_> = view.answer_graph().pattern(qi).iter().collect();
                    edges.sort_unstable();
                    edges
                })
                .collect()
        };
        for kind in [StoreKind::Map, StoreKind::Delta] {
            let g = triangle_graph(kind);
            let q = triangle_query(&g);
            let wco = WcoEngine::new(&g);
            let wplan = wco.plan(&q).unwrap();
            let (view, _) = wco.materialize_query(&q, &wplan);
            for (qi, expect) in reference.iter().enumerate() {
                let mut got: Vec<_> = view.answer_graph().pattern(qi).iter().collect();
                got.sort_unstable();
                assert_eq!(&got, expect, "pattern {qi} differs on {kind:?}");
            }
        }
    }

    #[test]
    fn chains_stars_and_constants_agree_with_the_wireframe_engine() {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "5");
        b.add("2", "A", "5");
        b.add("3", "A", "5");
        b.add("4", "A", "6");
        b.add("5", "B", "9");
        b.add("7", "B", "10");
        for o in ["12", "13", "14", "15"] {
            b.add("9", "C", o);
        }
        b.add("11", "C", "15");
        let g = b.build();
        for text in [
            "SELECT * WHERE { ?w :A ?x . ?x :B ?y . ?y :C ?z . }",
            "SELECT DISTINCT ?x WHERE { ?w :A ?x . ?x :B ?y . }",
            "SELECT * WHERE { ?w :A 5 . }",
            "SELECT ?y WHERE { 5 :B ?y . ?y :C ?z . }",
        ] {
            let q = parse_query(text, g.dictionary()).unwrap();
            assert_same_answer(&g, &q, text);
        }
    }

    #[test]
    fn self_loops_admit_only_loops() {
        let mut b = GraphBuilder::new();
        b.add("n", "p", "n");
        b.add("n", "p", "m");
        b.add("m", "p", "n");
        let g = b.build();
        let q = parse_query("SELECT ?x WHERE { ?x :p ?x . }", g.dictionary()).unwrap();
        assert_same_answer(&g, &q, "self loop");
    }

    #[test]
    fn empty_answers_clear_the_answer_graph() {
        let g = triangle_graph(StoreKind::Csr);
        let q = parse_query("SELECT * WHERE { ?x :C ?y . ?y :C ?z . }", g.dictionary()).unwrap();
        let wco = WcoEngine::new(&g);
        let ev = wco.evaluate(&wco.prepare(&q).unwrap()).unwrap();
        assert_eq!(ev.embedding_count(), 0);
        assert_eq!(ev.answer_graph_size(), Some(0));
    }

    #[test]
    fn disconnected_queries_are_rejected() {
        let g = triangle_graph(StoreKind::Csr);
        let q = parse_query("SELECT * WHERE { ?x :A ?y . ?a :C ?b . }", g.dictionary()).unwrap();
        assert!(WcoEngine::new(&g).prepare(&q).is_err());
    }

    #[test]
    fn capabilities_cover_cyclic_views_regardless_of_options() {
        let g = triangle_graph(StoreKind::Csr);
        let wco = WcoEngine::with_options(&g, EvalOptions::default().with_edge_burnback());
        let caps = wco.capabilities();
        assert!(caps.cyclic && caps.factorizes && caps.maintainable);
        assert!(caps.maintainable_cyclic, "wco ignores edge burnback");
        assert!(caps.parallel_defactorize && caps.sharded_merge);
        assert!(wco.supports_maintenance());
    }

    /// The churn invariant: after every mutation batch, the maintained
    /// view's embeddings equal a fresh evaluation's. Answer-graph *size*
    /// may drift above a fresh run (delta rules record support leapfrog
    /// would skip), so only embeddings are compared.
    fn assert_view_matches_fresh(view: &WcoView, graph: &Graph, context: &str) {
        let wco = WcoEngine::new(graph);
        let fresh = wco.evaluate(&wco.prepare(view.query()).unwrap()).unwrap();
        let (ours, _) = view.defactorize().unwrap();
        assert!(
            ours.same_answer(&fresh.embeddings),
            "{context}: maintained embeddings differ from a fresh evaluation"
        );
    }

    #[test]
    fn cyclic_views_survive_churn() {
        let g = triangle_graph(StoreKind::Delta);
        let q = triangle_query(&g);
        let wco = WcoEngine::new(&g);
        let wplan = wco.plan(&q).unwrap();
        let (mut view, _) = wco.materialize_query(&q, &wplan);
        assert_view_matches_fresh(&view, &g, "after materialization");

        // Close the open wedge a→x→y into a triangle: a brand-new
        // embedding whose first two edges were leapfrog-pruned. This is
        // exactly the case the revive-closure maintenance misses.
        let (g1, out1) = g.apply(&Mutation::new().insert("y", "C", "a"));
        let stats = view.maintain(&g1, &out1.delta, 1);
        assert!(stats.edges_added >= 3, "the whole new triangle is recorded");
        assert_eq!(view.epoch(), 1);
        assert_view_matches_fresh(&view, &g1, "after closing a wedge");

        // Break one of the original triangles.
        let (g2, out2) = g1.apply(&Mutation::new().remove("b", "B", "c"));
        let stats = view.maintain(&g2, &out2.delta, 2);
        assert!(stats.edges_removed >= 1);
        assert_view_matches_fresh(&view, &g2, "after breaking a triangle");

        // A mixed batch: remove the just-added closure, add a non-closing
        // edge, plus a predicate the query ignores.
        let (g3, out3) = g2.apply(
            &Mutation::new()
                .remove("y", "C", "a")
                .insert("z", "C", "a")
                .insert("y", "Z", "a"),
        );
        view.maintain(&g3, &out3.delta, 3);
        assert_view_matches_fresh(&view, &g3, "after a mixed batch");

        // Empty the answer entirely, then resurrect it.
        let (g4, out4) = g3.apply(
            &Mutation::new()
                .remove("a", "A", "b")
                .remove("g", "A", "b")
                .remove("d", "A", "e")
                .remove("a", "A", "x"),
        );
        view.maintain(&g4, &out4.delta, 4);
        assert_eq!(view.answer_graph().total_edges(), 0);
        assert_view_matches_fresh(&view, &g4, "after emptying");

        let (g5, out5) = g4.apply(&Mutation::new().insert("d", "A", "e"));
        view.maintain(&g5, &out5.delta, 5);
        assert!(view.answer_graph().total_edges() >= 3, "answer resurrected");
        assert_view_matches_fresh(&view, &g5, "after resurrection");
    }

    #[test]
    fn four_cycle_views_survive_churn() {
        let mut b = GraphBuilder::new();
        for (s, p, o) in [
            ("1", "A", "2"),
            ("2", "B", "3"),
            ("3", "C", "4"),
            ("4", "D", "1"),
            ("5", "A", "6"),
            ("6", "B", "7"),
            ("7", "C", "8"),
        ] {
            b.add(s, p, o);
        }
        let g = b.build_with_store(StoreKind::Delta);
        let q = parse_query(
            "SELECT * WHERE { ?a :A ?b . ?b :B ?c . ?c :C ?d . ?d :D ?a . }",
            g.dictionary(),
        )
        .unwrap();
        assert_same_answer(&g, &q, "4-cycle");

        let wco = WcoEngine::new(&g);
        let wplan = wco.plan(&q).unwrap();
        let (mut view, _) = wco.materialize_query(&q, &wplan);
        let (g1, out1) = g.apply(&Mutation::new().insert("8", "D", "5"));
        view.maintain(&g1, &out1.delta, 1);
        assert_view_matches_fresh(&view, &g1, "after closing the second 4-cycle");

        let (g2, out2) = g1.apply(&Mutation::new().remove("2", "B", "3"));
        view.maintain(&g2, &out2.delta, 2);
        assert_view_matches_fresh(&view, &g2, "after breaking the first 4-cycle");
    }

    #[test]
    fn view_evaluate_serves_uniform_evaluations() {
        let g = triangle_graph(StoreKind::Csr);
        let q = triangle_query(&g);
        let wco = WcoEngine::new(&g);
        let view = wco
            .materialize(&wco.prepare(&q).unwrap())
            .unwrap()
            .expect("wco always materializes");
        let ev = view.evaluate().unwrap();
        assert_eq!(ev.engine, "wco");
        assert!(ev.cyclic);
        assert!(ev.factorized.is_some());
        assert_eq!(ev.embedding_count(), 2, "one embedding per triangle");
        assert!(ev.maintenance.is_some());
    }

    #[test]
    fn explain_renders_the_variable_order() {
        let g = triangle_graph(StoreKind::Csr);
        let q = triangle_query(&g);
        let wco = WcoEngine::with_options(&g, EvalOptions::default().with_explain());
        let ev = wco.evaluate(&wco.prepare(&q).unwrap()).unwrap();
        let explain = ev.explain.expect("explain was requested");
        assert!(explain.contains("wco generic join"));
        assert!(explain.contains("variable order"));
    }
}

//! Bushy planning for embedding generation (the paper's §6 "next steps").
//!
//! The shipped Defactorizer uses a greedy, left-deep join order over the
//! answer graph's per-query-edge edge sets. The paper's conclusions point out
//! that a *bushy* plan space is richer: joining two independently-built
//! sub-results can keep intermediate relations far smaller than always
//! extending one growing relation. This module implements that extension:
//!
//! * [`plan_bushy`] — a bottom-up dynamic program over connected subsets of
//!   query edges, minimizing the total size of intermediate results
//!   (the `C_out` cost metric), using the exact per-edge answer-graph sizes
//!   and the answer-graph node sets as join-selectivity statistics;
//! * [`execute_bushy`] — evaluation of the resulting join tree with hash
//!   joins over the answer graph.
//!
//! Both produce exactly the same embeddings as the left-deep Defactorizer;
//! the ablation benches compare their intermediate sizes.

use std::collections::HashMap;

use wireframe_graph::NodeId;
use wireframe_query::{ConjunctiveQuery, EmbeddingSet, Term, Var};

use crate::answer_graph::AnswerGraph;
use crate::error::EngineError;

/// A node of a bushy join tree over the query's edges.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinTree {
    /// A single query edge (its answer-graph edge set).
    Leaf {
        /// Pattern index.
        pattern: usize,
    },
    /// A join of two sub-trees on their shared variables.
    Join {
        /// Left input.
        left: Box<JoinTree>,
        /// Right input.
        right: Box<JoinTree>,
        /// Estimated output cardinality used during planning.
        estimated_size: f64,
    },
}

impl JoinTree {
    /// The pattern indexes covered by this tree.
    pub fn patterns(&self) -> Vec<usize> {
        match self {
            JoinTree::Leaf { pattern } => vec![*pattern],
            JoinTree::Join { left, right, .. } => {
                let mut p = left.patterns();
                p.extend(right.patterns());
                p
            }
        }
    }

    /// Depth of the tree (1 for a leaf).
    pub fn depth(&self) -> usize {
        match self {
            JoinTree::Leaf { .. } => 1,
            JoinTree::Join { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    /// Whether the tree is left-deep (every right child is a leaf).
    pub fn is_left_deep(&self) -> bool {
        match self {
            JoinTree::Leaf { .. } => true,
            JoinTree::Join { left, right, .. } => {
                matches!(**right, JoinTree::Leaf { .. }) && left.is_left_deep()
            }
        }
    }
}

/// A planned bushy defactorization.
#[derive(Debug, Clone, PartialEq)]
pub struct BushyPlan {
    /// The join tree over all query edges.
    pub root: JoinTree,
    /// Estimated total intermediate size (`C_out`).
    pub estimated_cost: f64,
}

/// Statistics of executing a bushy plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BushyStats {
    /// Total tuples materialized across all join outputs (the measured `C_out`).
    pub intermediate_tuples: usize,
    /// Largest single intermediate relation.
    pub peak_intermediate: usize,
}

/// Plans a bushy join tree for generating the embeddings of `query` from `ag`.
///
/// Falls back to a left-deep chain (in answer-edge-count order) for queries
/// with more than 16 edges, where the subset dynamic program would be too
/// expensive.
pub fn plan_bushy(query: &ConjunctiveQuery, ag: &AnswerGraph) -> Result<BushyPlan, EngineError> {
    let n = query.num_patterns();
    if n == 0 {
        return Err(EngineError::Internal("query has no patterns".into()));
    }
    if n > 16 {
        return Ok(left_deep_fallback(query, ag));
    }

    #[derive(Clone)]
    struct Entry {
        cost: f64,
        size: f64,
        tree: JoinTree,
    }

    let mut table: HashMap<u32, Entry> = HashMap::new();
    for i in 0..n {
        table.insert(
            1 << i,
            Entry {
                cost: 0.0,
                size: ag.edge_count(i) as f64,
                tree: JoinTree::Leaf { pattern: i },
            },
        );
    }

    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    // Enumerate subsets in increasing popcount so both halves of every split
    // are already solved.
    let mut masks: Vec<u32> = (1..=full).filter(|m| m.count_ones() >= 2).collect();
    masks.sort_by_key(|m| m.count_ones());

    for mask in masks {
        if !subset_connected(query, mask) {
            continue;
        }
        let mut best: Option<Entry> = None;
        // Iterate proper non-empty submasks; consider each split once.
        let mut left = (mask - 1) & mask;
        while left > 0 {
            let right = mask & !left;
            if left < right {
                // Each unordered split is visited twice; keep one orientation.
                left = (left - 1) & mask;
                continue;
            }
            if let (Some(l), Some(r)) = (table.get(&left), table.get(&right)) {
                let est = estimate_join_size(query, ag, left, right, l.size, r.size);
                let cost = l.cost + r.cost + est;
                let better = match &best {
                    None => true,
                    Some(b) => cost < b.cost,
                };
                if better {
                    best = Some(Entry {
                        cost,
                        size: est,
                        tree: JoinTree::Join {
                            left: Box::new(l.tree.clone()),
                            right: Box::new(r.tree.clone()),
                            estimated_size: est,
                        },
                    });
                }
            }
            left = (left - 1) & mask;
        }
        if let Some(entry) = best {
            table.insert(mask, entry);
        }
    }

    match table.remove(&full) {
        Some(entry) => Ok(BushyPlan {
            root: entry.tree,
            estimated_cost: entry.cost,
        }),
        // A disconnected query graph never produces an entry for the full set.
        None => Err(EngineError::DisconnectedQuery),
    }
}

fn left_deep_fallback(query: &ConjunctiveQuery, ag: &AnswerGraph) -> BushyPlan {
    let order = crate::defactorize::embedding_plan(query, ag);
    let mut iter = order.into_iter();
    let first = iter.next().expect("query has at least one pattern");
    let mut tree = JoinTree::Leaf { pattern: first };
    for p in iter {
        tree = JoinTree::Join {
            left: Box::new(tree),
            right: Box::new(JoinTree::Leaf { pattern: p }),
            estimated_size: 0.0,
        };
    }
    BushyPlan {
        root: tree,
        estimated_cost: f64::INFINITY,
    }
}

/// Whether the patterns selected by `mask` form a connected sub-query.
fn subset_connected(query: &ConjunctiveQuery, mask: u32) -> bool {
    let members: Vec<usize> = (0..query.num_patterns())
        .filter(|i| mask & (1 << i) != 0)
        .collect();
    if members.len() <= 1 {
        return true;
    }
    let mut seen = vec![false; members.len()];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(i) = stack.pop() {
        for (j, seen_j) in seen.iter_mut().enumerate() {
            if *seen_j {
                continue;
            }
            let a = &query.patterns()[members[i]];
            let b = &query.patterns()[members[j]];
            if a.variables().any(|v| b.mentions(v)) {
                *seen_j = true;
                stack.push(j);
            }
        }
    }
    seen.into_iter().all(|s| s)
}

/// Variables covered by the patterns in `mask`.
fn subset_vars(query: &ConjunctiveQuery, mask: u32) -> Vec<Var> {
    let mut vars: Vec<Var> = Vec::new();
    for (i, p) in query.patterns().iter().enumerate() {
        if mask & (1 << i) == 0 {
            continue;
        }
        for v in p.variables() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    vars
}

/// Textbook join-size estimate over the answer graph's node sets:
/// `|L| · |R| / Π_v d(v)` over the shared variables `v`, where `d(v)` is the
/// number of viable nodes of `v` in the answer graph.
fn estimate_join_size(
    query: &ConjunctiveQuery,
    ag: &AnswerGraph,
    left: u32,
    right: u32,
    left_size: f64,
    right_size: f64,
) -> f64 {
    let lv = subset_vars(query, left);
    let rv = subset_vars(query, right);
    let mut denom = 1.0;
    for v in lv.iter().filter(|v| rv.contains(v)) {
        denom *= ag.node_set(*v).len().max(1) as f64;
    }
    (left_size * right_size / denom).max(0.0)
}

/// Executes a bushy plan over the answer graph, producing the full embedding
/// set (one column per query variable) and execution statistics.
pub fn execute_bushy(
    query: &ConjunctiveQuery,
    ag: &AnswerGraph,
    plan: &BushyPlan,
) -> Result<(EmbeddingSet, BushyStats), EngineError> {
    let mut covered = plan.root.patterns();
    covered.sort_unstable();
    covered.dedup();
    if covered.len() != query.num_patterns() {
        return Err(EngineError::Internal(
            "bushy plan does not cover every query edge".into(),
        ));
    }

    let mut stats = BushyStats::default();
    let rel = eval_node(query, ag, &plan.root, &mut stats)?;

    // Reorder columns into variable-index order; an empty result is returned
    // with the full schema.
    let schema: Vec<Var> = query.variables().collect();
    if rel.tuples.is_empty() {
        return Ok((EmbeddingSet::empty(schema), stats));
    }
    let cols: Result<Vec<usize>, EngineError> = schema
        .iter()
        .map(|v| {
            rel.schema.iter().position(|s| s == v).ok_or_else(|| {
                EngineError::Internal(format!("variable {v} missing from bushy result"))
            })
        })
        .collect();
    let cols = cols?;
    let tuples: Vec<Vec<NodeId>> = rel
        .tuples
        .iter()
        .map(|t| cols.iter().map(|&c| t[c]).collect())
        .collect();
    Ok((EmbeddingSet::new(schema, tuples), stats))
}

struct Relation {
    schema: Vec<Var>,
    tuples: Vec<Vec<NodeId>>,
}

fn eval_node(
    query: &ConjunctiveQuery,
    ag: &AnswerGraph,
    node: &JoinTree,
    stats: &mut BushyStats,
) -> Result<Relation, EngineError> {
    match node {
        JoinTree::Leaf { pattern } => Ok(leaf_relation(query, ag, *pattern)),
        JoinTree::Join { left, right, .. } => {
            let l = eval_node(query, ag, left, stats)?;
            let r = eval_node(query, ag, right, stats)?;
            let out = hash_join(&l, &r);
            stats.intermediate_tuples += out.tuples.len();
            stats.peak_intermediate = stats.peak_intermediate.max(out.tuples.len());
            Ok(out)
        }
    }
}

fn leaf_relation(query: &ConjunctiveQuery, ag: &AnswerGraph, pattern: usize) -> Relation {
    let p = query.patterns()[pattern];
    let mut schema = Vec::new();
    if let Some(v) = p.subject.as_var() {
        schema.push(v);
    }
    if let Some(v) = p.object.as_var() {
        if Some(v) != p.subject.as_var() {
            schema.push(v);
        }
    }
    let self_loop = matches!((p.subject, p.object), (Term::Var(a), Term::Var(b)) if a == b);
    let mut tuples = Vec::with_capacity(ag.edge_count(pattern));
    for (s, o) in ag.pattern(pattern).iter() {
        // Constant ends were already enforced during answer-graph generation;
        // keep only the variable columns.
        match (p.subject, p.object) {
            (Term::Var(_), Term::Var(_)) if self_loop => {
                if s == o {
                    tuples.push(vec![s]);
                }
            }
            (Term::Var(_), Term::Var(_)) => tuples.push(vec![s, o]),
            (Term::Var(_), Term::Const(_)) => tuples.push(vec![s]),
            (Term::Const(_), Term::Var(_)) => tuples.push(vec![o]),
            (Term::Const(_), Term::Const(_)) => tuples.push(Vec::new()),
        }
    }
    Relation { schema, tuples }
}

fn hash_join(left: &Relation, right: &Relation) -> Relation {
    let shared: Vec<Var> = left
        .schema
        .iter()
        .copied()
        .filter(|v| right.schema.contains(v))
        .collect();
    let l_cols: Vec<usize> = shared
        .iter()
        .map(|v| left.schema.iter().position(|s| s == v).expect("shared var"))
        .collect();
    let r_cols: Vec<usize> = shared
        .iter()
        .map(|v| {
            right
                .schema
                .iter()
                .position(|s| s == v)
                .expect("shared var")
        })
        .collect();
    let r_extra: Vec<usize> = (0..right.schema.len())
        .filter(|c| !shared.contains(&right.schema[*c]))
        .collect();

    let mut schema = left.schema.clone();
    schema.extend(r_extra.iter().map(|&c| right.schema[c]));

    let mut table: HashMap<Vec<NodeId>, Vec<usize>> = HashMap::new();
    for (idx, t) in right.tuples.iter().enumerate() {
        table
            .entry(r_cols.iter().map(|&c| t[c]).collect())
            .or_default()
            .push(idx);
    }
    let mut tuples = Vec::new();
    for lt in &left.tuples {
        let key: Vec<NodeId> = l_cols.iter().map(|&c| lt[c]).collect();
        if let Some(matches) = table.get(&key) {
            for &ri in matches {
                let mut out = lt.clone();
                out.extend(r_extra.iter().map(|&c| right.tuples[ri][c]));
                tuples.push(out);
            }
        }
    }
    Relation { schema, tuples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalOptions;
    use crate::defactorize::{defactorize, embedding_plan};
    use crate::generate::generate;
    use wireframe_graph::{Graph, GraphBuilder};
    use wireframe_query::CqBuilder;

    fn figure1_graph() -> Graph {
        let mut b = GraphBuilder::new();
        for s in ["1", "2", "3"] {
            b.add(s, "A", "5");
        }
        b.add("4", "A", "6");
        b.add("5", "B", "9");
        b.add("7", "B", "10");
        for o in ["12", "13", "14", "15"] {
            b.add("9", "C", o);
        }
        b.add("11", "C", "15");
        b.build()
    }

    fn chain_query(g: &Graph) -> ConjunctiveQuery {
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?w", "A", "?x").unwrap();
        qb.pattern("?x", "B", "?y").unwrap();
        qb.pattern("?y", "C", "?z").unwrap();
        qb.build().unwrap()
    }

    fn ag_for(g: &Graph, q: &ConjunctiveQuery) -> AnswerGraph {
        let order: Vec<usize> = (0..q.num_patterns()).collect();
        generate(g, q, &order, &EvalOptions::default()).unwrap().0
    }

    #[test]
    fn bushy_plan_matches_left_deep_answer() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let ag = ag_for(&g, &q);
        let plan = plan_bushy(&q, &ag).unwrap();
        let (bushy, _) = execute_bushy(&q, &ag, &plan).unwrap();
        let (left_deep, _) = defactorize(&q, &ag, &embedding_plan(&q, &ag)).unwrap();
        assert!(bushy.same_answer(&left_deep));
        assert_eq!(bushy.len(), 12);
    }

    #[test]
    fn plan_covers_every_pattern_exactly_once() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let ag = ag_for(&g, &q);
        let plan = plan_bushy(&q, &ag).unwrap();
        let mut patterns = plan.root.patterns();
        patterns.sort_unstable();
        assert_eq!(patterns, vec![0, 1, 2]);
        assert!(plan.estimated_cost.is_finite());
    }

    #[test]
    fn bushy_beats_left_deep_on_a_star_of_heavy_arms() {
        // Two heavy arms hang off two different variables of a central edge.
        // A left-deep plan must carry one arm's multiplicity through the other
        // arm's join; a bushy plan joins each arm with the center separately…
        // at minimum the DP must never be worse than the left-deep order.
        let mut b = GraphBuilder::new();
        b.add("c1", "Mid", "c2");
        for i in 0..30 {
            b.add(&format!("l{i}"), "L", "c1");
            b.add("c2", "R", &format!("r{i}"));
        }
        let g = b.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?a", "L", "?b").unwrap();
        qb.pattern("?b", "Mid", "?c").unwrap();
        qb.pattern("?c", "R", "?d").unwrap();
        let q = qb.build().unwrap();
        let ag = ag_for(&g, &q);

        let plan = plan_bushy(&q, &ag).unwrap();
        let (bushy, bushy_stats) = execute_bushy(&q, &ag, &plan).unwrap();
        let (left_deep, ld_stats) = defactorize(&q, &ag, &embedding_plan(&q, &ag)).unwrap();
        assert!(bushy.same_answer(&left_deep));
        assert_eq!(bushy.len(), 900);
        assert!(
            bushy_stats.peak_intermediate <= ld_stats.peak_intermediate.max(900),
            "bushy {} vs left-deep {}",
            bushy_stats.peak_intermediate,
            ld_stats.peak_intermediate
        );
    }

    #[test]
    fn diamond_queries_plan_and_execute() {
        let mut b = GraphBuilder::new();
        b.add("3", "A", "4");
        b.add("3", "B", "2");
        b.add("4", "C", "1");
        b.add("2", "D", "1");
        b.add("4", "C", "5");
        let g = b.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "A", "?e").unwrap();
        qb.pattern("?x", "B", "?z").unwrap();
        qb.pattern("?e", "C", "?y").unwrap();
        qb.pattern("?z", "D", "?y").unwrap();
        let q = qb.build().unwrap();
        let ag = ag_for(&g, &q);
        let plan = plan_bushy(&q, &ag).unwrap();
        let (emb, _) = execute_bushy(&q, &ag, &plan).unwrap();
        assert_eq!(emb.len(), 1);
    }

    #[test]
    fn single_pattern_plan_is_a_leaf() {
        let g = figure1_graph();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?w", "A", "?x").unwrap();
        let q = qb.build().unwrap();
        let ag = ag_for(&g, &q);
        let plan = plan_bushy(&q, &ag).unwrap();
        assert_eq!(plan.root, JoinTree::Leaf { pattern: 0 });
        let (emb, stats) = execute_bushy(&q, &ag, &plan).unwrap();
        assert_eq!(emb.len(), 4);
        assert_eq!(stats.intermediate_tuples, 0, "a leaf performs no join");
    }

    #[test]
    fn tree_shape_helpers() {
        let leaf = JoinTree::Leaf { pattern: 0 };
        assert_eq!(leaf.depth(), 1);
        assert!(leaf.is_left_deep());
        let join = JoinTree::Join {
            left: Box::new(JoinTree::Leaf { pattern: 0 }),
            right: Box::new(JoinTree::Leaf { pattern: 1 }),
            estimated_size: 1.0,
        };
        assert_eq!(join.depth(), 2);
        assert!(join.is_left_deep());
        let bushy = JoinTree::Join {
            left: Box::new(join.clone()),
            right: Box::new(JoinTree::Join {
                left: Box::new(JoinTree::Leaf { pattern: 2 }),
                right: Box::new(JoinTree::Leaf { pattern: 3 }),
                estimated_size: 1.0,
            }),
            estimated_size: 1.0,
        };
        assert!(!bushy.is_left_deep());
        assert_eq!(bushy.depth(), 3);
    }

    #[test]
    fn disconnected_query_is_rejected() {
        let g = figure1_graph();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?a", "A", "?b").unwrap();
        qb.pattern("?c", "C", "?d").unwrap();
        let q = qb.build().unwrap();
        let ag = AnswerGraph::new(&q);
        assert_eq!(
            plan_bushy(&q, &ag).unwrap_err(),
            EngineError::DisconnectedQuery
        );
    }
}

//! Human-readable explanations of Wireframe plans and executions.
//!
//! `EXPLAIN`-style output is table stakes for a query engine: it is how users
//! debug unexpected plans and how the ablation experiments present themselves.
//! [`explain_plan`] renders a phase-one plan (the Edgifier's edge order with
//! its per-step estimates), and [`explain_output`] renders a full execution —
//! the two-phase pipeline of the paper's Figure 3 as text.

use std::fmt::Write as _;

use wireframe_graph::Graph;
use wireframe_query::{ConjunctiveQuery, Term};

use crate::engine::QueryOutput;
use crate::estimate::Estimator;
use crate::planner::Plan;

/// Renders a triple pattern with dictionary labels.
fn pattern_text(graph: &Graph, query: &ConjunctiveQuery, idx: usize) -> String {
    let p = query.patterns()[idx];
    let term = |t: Term| match t {
        Term::Var(v) => format!("?{}", query.var_name(v)),
        Term::Const(n) => graph
            .dictionary()
            .node_label(n)
            .map(|s| format!("<{s}>"))
            .unwrap_or_else(|| format!("<n{}>", n.0)),
    };
    let label = graph
        .dictionary()
        .predicate_label(p.predicate)
        .unwrap_or("?");
    format!("{} {} {}", term(p.subject), label, term(p.object))
}

/// Renders a phase-one plan: one line per edge-extension step with the
/// planner's running cardinality estimates.
pub fn explain_plan(graph: &Graph, query: &ConjunctiveQuery, plan: &Plan) -> String {
    let estimator = Estimator::new(graph, query);
    let mut cards = vec![None; query.num_vars()];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "answer-graph plan ({:?}, estimated cost {:.0} edge walks):",
        plan.planner, plan.estimated_cost
    );
    for (step_no, &i) in plan.order.iter().enumerate() {
        let est = estimator.estimate_step(&cards, i);
        let _ = writeln!(
            out,
            "  {:>2}. materialize [{}]   est. walks {:>10.0} (≤{:.0} worst)  est. AG edges {:>10.0}",
            step_no + 1,
            pattern_text(graph, query, i),
            est.edge_walks,
            est.worst_case_walks,
            est.result_edges,
        );
        let p = &query.patterns()[i];
        if let Some(v) = p.subject.as_var() {
            cards[v.index()] = Some(est.subject_card);
        }
        if let Some(v) = p.object.as_var() {
            cards[v.index()] = Some(est.object_card);
        }
    }
    out
}

/// Renders a full execution: the plan, the phase-one statistics, and the
/// phase-two (defactorization) summary.
pub fn explain_output(graph: &Graph, query: &ConjunctiveQuery, output: &QueryOutput) -> String {
    let mut out = explain_plan(graph, query, output.plan());
    let _ = writeln!(out, "phase 1 (answer-graph generation):");
    let _ = writeln!(
        out,
        "  edge walks {}   edges added {}   edges burned {}   nodes burned {}",
        output.generation().edge_walks,
        output.generation().edges_added,
        output.generation().edges_burned,
        output.generation().nodes_burned
    );
    let _ = writeln!(
        out,
        "  |AG| = {} answer edges across {} query edges{}",
        output.answer_graph_size(),
        query.num_patterns(),
        if output.cyclic() {
            "  (cyclic query)"
        } else {
            ""
        }
    );
    if output.edge_burnback().iterations > 0 {
        let _ = writeln!(
            out,
            "  edge burnback: removed {} edges in {} iteration(s)",
            output.edge_burnback().edges_removed,
            output.edge_burnback().iterations
        );
    }
    let _ = writeln!(out, "phase 2 (defactorization):");
    let _ = writeln!(
        out,
        "  join order {:?}   peak intermediate {}   embeddings {}",
        output.defactorization.join_order,
        output.defactorization.peak_intermediate,
        output.embedding_count()
    );
    let _ = writeln!(
        out,
        "timings: planning {:?}, answer graph {:?}, edge burnback {:?}, defactorization {:?}",
        output.timings.planning,
        output.timings.answer_graph,
        output.timings.edge_burnback,
        output.timings.defactorization
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalOptions;
    use crate::engine::WireframeEngine;
    use wireframe_graph::GraphBuilder;
    use wireframe_query::parse_query;

    fn setup() -> (Graph, ConjunctiveQuery) {
        let mut b = GraphBuilder::new();
        for s in ["1", "2", "3"] {
            b.add(s, "A", "5");
        }
        b.add("5", "B", "9");
        b.add("9", "C", "12");
        let g = b.build();
        let q = parse_query(
            "SELECT * WHERE { ?w :A ?x . ?x :B ?y . ?y :C ?z . }",
            g.dictionary(),
        )
        .unwrap();
        (g, q)
    }

    #[test]
    fn explain_plan_lists_every_step_with_labels() {
        let (g, q) = setup();
        let engine = WireframeEngine::new(&g);
        let plan = engine.plan(&q).unwrap();
        let text = explain_plan(&g, &q, &plan);
        assert_eq!(text.matches("materialize").count(), 3);
        assert!(text.contains("?w A ?x") || text.contains("?x B ?y"));
        assert!(text.contains("estimated cost"));
    }

    #[test]
    fn explain_output_summarizes_both_phases() {
        let (g, q) = setup();
        let out = WireframeEngine::new(&g).execute(&q).unwrap();
        let text = explain_output(&g, &q, &out);
        assert!(text.contains("phase 1"));
        assert!(text.contains("phase 2"));
        assert!(text.contains("|AG| ="));
        assert!(text.contains("embeddings"));
    }

    #[test]
    fn explain_marks_cyclic_queries_and_edge_burnback() {
        let mut b = GraphBuilder::new();
        b.add("3", "A", "4");
        b.add("3", "B", "2");
        b.add("4", "C", "1");
        b.add("2", "D", "1");
        b.add("4", "C", "5");
        b.add("8", "C", "1");
        b.add("7", "A", "8");
        b.add("7", "B", "6");
        b.add("8", "C", "5");
        b.add("6", "D", "5");
        let g = b.build();
        let q = parse_query(
            "SELECT * WHERE { ?x :A ?e . ?x :B ?z . ?e :C ?y . ?z :D ?y . }",
            g.dictionary(),
        )
        .unwrap();
        let out = WireframeEngine::with_options(&g, EvalOptions::default().with_edge_burnback())
            .execute(&q)
            .unwrap();
        let text = explain_output(&g, &q, &out);
        assert!(text.contains("cyclic query"));
        assert!(text.contains("edge burnback: removed"));
    }

    #[test]
    fn constants_render_with_angle_brackets() {
        let (g, _) = setup();
        let q = parse_query("SELECT ?w WHERE { ?w :A 5 . }", g.dictionary()).unwrap();
        let plan = WireframeEngine::new(&g).plan(&q).unwrap();
        let text = explain_plan(&g, &q, &plan);
        assert!(text.contains("<5>"));
    }
}

//! The Wireframe engine: the two-phase, cost-based evaluator.
//!
//! [`WireframeEngine::execute`] runs the full pipeline of the paper's
//! prototype: plan the edge order (the Edgifier), generate the answer graph
//! (edge extension + node burnback, optionally followed by triangulation and
//! edge burnback for cyclic queries), then defactorize the answer graph into
//! embedding tuples and apply the query's projection.

use std::time::Instant;

use wireframe_api::{
    Engine, Evaluation, Factorized, MaintainedView, PreparedQuery, WireframeError,
};
use wireframe_graph::Graph;
use wireframe_query::{ConjunctiveQuery, EmbeddingSet, QueryGraph};

use crate::answer_graph::AnswerGraph;
use crate::config::EvalOptions;
use crate::defactorize::DefactorizationStats;
use crate::error::EngineError;
use crate::explain::explain_output;
use crate::generate::{generate, GenerationStats};
use crate::maintain::MaterializedQuery;
use crate::planner::{plan, Plan};
use crate::triangulate::{edge_burnback, triangulate, EdgeBurnbackStats};

pub use wireframe_api::Timings;

/// The complete result of evaluating one query: the retained, maintainable
/// [`MaterializedQuery`] view (plan + answer graph + provenance index) plus
/// the phase-two products derived from it.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The factorized artifact: plan, answer graph, per-pattern-edge
    /// provenance index, and maintenance state. [`QueryOutput::into_view`]
    /// extracts it for retention; serving layers maintain it under data
    /// mutations instead of re-evaluating.
    pub view: MaterializedQuery,
    /// Statistics of defactorization.
    pub defactorization: DefactorizationStats,
    /// The projected embeddings (the query's answer).
    pub embeddings: EmbeddingSet,
    /// Per-phase wall-clock timings.
    pub timings: Timings,
}

impl QueryOutput {
    /// The phase-one plan that was executed.
    pub fn plan(&self) -> &Plan {
        self.view.plan()
    }

    /// The answer graph after generation (and edge burnback, if enabled).
    pub fn answer_graph(&self) -> &AnswerGraph {
        self.view.answer_graph()
    }

    /// Statistics of answer-graph generation.
    pub fn generation(&self) -> &GenerationStats {
        self.view.generation()
    }

    /// Statistics of edge burnback (all zeros when it did not run).
    pub fn edge_burnback(&self) -> &EdgeBurnbackStats {
        self.view.edge_burnback()
    }

    /// Whether the query graph is cyclic.
    pub fn cyclic(&self) -> bool {
        self.view.cyclic()
    }

    /// Total answer-graph size (the |AG| / |iAG| column of Table 1).
    pub fn answer_graph_size(&self) -> usize {
        self.view.answer_graph().total_edges()
    }

    /// Number of embeddings in the answer (the |Embeddings| column of Table 1).
    pub fn embedding_count(&self) -> usize {
        self.embeddings.len()
    }

    /// The projected embeddings.
    pub fn embeddings(&self) -> &EmbeddingSet {
        &self.embeddings
    }

    /// Extracts the retained view, discarding the per-call products (the
    /// embeddings are re-derivable from the view on demand).
    pub fn into_view(self) -> MaterializedQuery {
        self.view
    }

    /// Converts this rich output into the uniform [`Evaluation`] of the
    /// workspace-wide [`Engine`] API. The `metrics` list is derived from the
    /// [`Factorized`] artifacts so the two views can never drift apart.
    pub fn into_evaluation(self, explain: Option<String>) -> Evaluation {
        let factorized = Factorized {
            answer_graph_edges: self.view.answer_graph().total_edges(),
            plan_order: self.view.plan().order.clone(),
            edge_walks: self.view.generation().edge_walks,
            edges_burned: self.view.generation().edges_burned,
            nodes_burned: self.view.generation().nodes_burned,
            edge_burnback_removed: self.view.edge_burnback().edges_removed,
        };
        let metrics = factorized.metrics(self.defactorization.peak_intermediate as u64);
        Evaluation {
            engine: "wireframe".to_owned(),
            epochs: Vec::new(),
            cyclic: self.view.cyclic(),
            embeddings: self.embeddings,
            timings: self.timings,
            factorized: Some(factorized),
            metrics,
            explain,
            maintenance: None,
            limited: None,
        }
    }
}

/// The Wireframe query engine over one graph.
#[derive(Debug, Clone, Copy)]
pub struct WireframeEngine<'g> {
    graph: &'g Graph,
    options: EvalOptions,
}

impl<'g> WireframeEngine<'g> {
    /// Creates an engine with the paper's default configuration.
    pub fn new(graph: &'g Graph) -> Self {
        WireframeEngine {
            graph,
            options: EvalOptions::default(),
        }
    }

    /// Creates an engine with explicit evaluation options.
    pub fn with_options(graph: &'g Graph, options: EvalOptions) -> Self {
        WireframeEngine { graph, options }
    }

    /// The graph this engine evaluates against.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The evaluation options in effect.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// Plans the phase-one edge order without executing anything.
    pub fn plan(&self, query: &ConjunctiveQuery) -> Result<Plan, EngineError> {
        plan(self.graph, query, self.options.planner)
    }

    /// Runs only phase one: plans and generates the answer graph.
    /// Useful for benchmarks that study factorization in isolation.
    pub fn answer_graph(
        &self,
        query: &ConjunctiveQuery,
    ) -> Result<(AnswerGraph, GenerationStats, Plan), EngineError> {
        let plan = self.plan(query)?;
        let (mut ag, stats) = generate(self.graph, query, &plan.order, &self.options)?;
        if self.options.edge_burnback {
            let chordification = triangulate(query);
            edge_burnback(query, &mut ag, &chordification);
        }
        Ok((ag, stats, plan))
    }

    /// Evaluates `query` end to end: plan, generate the answer graph,
    /// defactorize, project.
    pub fn execute(&self, query: &ConjunctiveQuery) -> Result<QueryOutput, EngineError> {
        let t = Instant::now();
        let plan = self.plan(query)?;
        let planning = t.elapsed();
        let mut out = self.execute_with_plan(query, &plan)?;
        out.timings.planning += planning;
        Ok(out)
    }

    /// Runs phase one with a precomputed plan and wraps the result into a
    /// retained [`MaterializedQuery`] view, returning the phase-one timings
    /// alongside. This is the shared trunk of [`execute_with_plan`]
    /// (which defactorizes immediately) and the [`Engine::materialize`]
    /// capability (which retains the view for incremental maintenance).
    ///
    /// [`execute_with_plan`]: WireframeEngine::execute_with_plan
    pub fn materialize_with_plan(
        &self,
        query: &ConjunctiveQuery,
        plan: &Plan,
    ) -> Result<(MaterializedQuery, Timings), EngineError> {
        let mut timings = Timings::default();

        let t0 = Instant::now();
        let plan = plan.clone();
        let qg = QueryGraph::new(query);
        let cyclic = qg.is_cyclic();
        let chordification = if cyclic && self.options.edge_burnback {
            Some(triangulate(query))
        } else {
            None
        };
        timings.planning = t0.elapsed();

        let t1 = Instant::now();
        let (mut ag, generation) = generate(self.graph, query, &plan.order, &self.options)?;
        timings.answer_graph = t1.elapsed();

        let mut eb_stats = EdgeBurnbackStats::default();
        if let Some(chordification) = &chordification {
            let t2 = Instant::now();
            eb_stats = edge_burnback(query, &mut ag, chordification);
            timings.edge_burnback = t2.elapsed();
        }

        let view = MaterializedQuery::from_phase_one(
            query.clone(),
            plan,
            cyclic,
            ag,
            generation,
            eb_stats,
            self.options,
        );
        Ok((view, timings))
    }

    /// Evaluates `query` with a precomputed phase-one plan (for example one
    /// cached by a `Session` prepared query), skipping the Edgifier.
    pub fn execute_with_plan(
        &self,
        query: &ConjunctiveQuery,
        plan: &Plan,
    ) -> Result<QueryOutput, EngineError> {
        let (view, mut timings) = self.materialize_with_plan(query, plan)?;

        // Phase two runs through the view's on-demand defactorizer (the
        // parallel path falls back to sequential for small inputs and is
        // answer-identical by construction, verified by tests).
        let t3 = Instant::now();
        let (embeddings, defact_stats) = view.defactorize()?;
        timings.defactorization = t3.elapsed();
        timings.defactorization_cpu = defact_stats.cpu;

        Ok(QueryOutput {
            view,
            defactorization: defact_stats,
            embeddings,
            timings,
        })
    }
}

impl Engine for WireframeEngine<'_> {
    fn name(&self) -> &'static str {
        "wireframe"
    }

    /// Runs the Edgifier and attaches the resulting [`Plan`] to the prepared
    /// query, so cached preparations skip planning on re-evaluation.
    fn prepare(&self, query: &ConjunctiveQuery) -> Result<PreparedQuery, WireframeError> {
        let plan = self.plan(query)?;
        Ok(PreparedQuery::new(self.name(), query.clone()).with_payload(plan))
    }

    fn evaluate(&self, prepared: &PreparedQuery) -> Result<Evaluation, WireframeError> {
        self.check_prepared(prepared)?;
        let query = prepared.query();
        let out = match prepared.plan::<Plan>() {
            Some(plan) => self.execute_with_plan(query, plan)?,
            None => self.execute(query)?,
        };
        let explain = self
            .options
            .explain
            .then(|| explain_output(self.graph, query, &out));
        let mut ev = out.into_evaluation(explain);
        ev.apply_limit(self.options.limit);
        Ok(ev)
    }

    /// The Wireframe engine maintains: its retained artifact (the answer
    /// graph at the node-burnback fixpoint) is updated in `O(delta)` by
    /// [`MaterializedQuery::maintain`].
    fn supports_maintenance(&self) -> bool {
        true
    }

    /// As configured: under edge burnback the answer graph of a cyclic
    /// query is pruned below the node-burnback fixpoint, so those views are
    /// not maintainable and `maintainable_cyclic` drops out.
    fn capabilities(&self) -> wireframe_api::EngineCapabilities {
        wireframe_api::EngineCapabilities {
            cyclic: true,
            factorizes: true,
            maintainable: true,
            maintainable_cyclic: !self.options.edge_burnback,
            parallel_defactorize: true,
            sharded_merge: true,
        }
    }

    /// Runs phase one and retains the result as a maintainable view.
    /// Returns `Ok(None)` for configurations whose answer graph is pruned
    /// below the node-burnback fixpoint (cyclic query with
    /// [`EvalOptions::edge_burnback`] enabled) — those must be re-evaluated,
    /// not maintained.
    fn materialize(
        &self,
        prepared: &PreparedQuery,
    ) -> Result<Option<Box<dyn MaintainedView>>, WireframeError> {
        self.check_prepared(prepared)?;
        // Maintainability is a property of the query shape and the engine
        // options alone — decline *before* paying phase one, so callers
        // that fall back to plain evaluation run the pipeline exactly once.
        if self.options.edge_burnback && prepared.cyclic() {
            return Ok(None);
        }
        let query = prepared.query();
        let owned_plan;
        let plan = match prepared.plan::<Plan>() {
            Some(plan) => plan,
            None => {
                owned_plan = self.plan(query)?;
                &owned_plan
            }
        };
        let (view, _timings) = self.materialize_with_plan(query, plan)?;
        debug_assert!(view.is_maintainable());
        Ok(Some(Box::new(view)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlannerKind;
    use std::time::Duration;
    use wireframe_graph::GraphBuilder;
    use wireframe_query::{parse_query, CqBuilder};

    fn figure1_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "5");
        b.add("2", "A", "5");
        b.add("3", "A", "5");
        b.add("4", "A", "6");
        b.add("5", "B", "9");
        b.add("7", "B", "10");
        for o in ["12", "13", "14", "15"] {
            b.add("9", "C", o);
        }
        b.add("11", "C", "15");
        b.build()
    }

    #[test]
    fn figure1_end_to_end() {
        let g = figure1_graph();
        let q = parse_query(
            "SELECT ?w ?x ?y ?z WHERE { ?w :A ?x . ?x :B ?y . ?y :C ?z . }",
            g.dictionary(),
        )
        .unwrap();
        let engine = WireframeEngine::new(&g);
        let out = engine.execute(&q).unwrap();
        assert_eq!(out.answer_graph_size(), 8);
        assert_eq!(out.embedding_count(), 12);
        assert!(!out.cyclic());
        assert_eq!(out.embeddings().schema().len(), 4);
        assert!(out.timings.total() > Duration::ZERO);
    }

    #[test]
    fn projection_and_distinct_are_applied() {
        let g = figure1_graph();
        let q = parse_query(
            "SELECT DISTINCT ?x WHERE { ?w :A ?x . ?x :B ?y . }",
            g.dictionary(),
        )
        .unwrap();
        let out = WireframeEngine::new(&g).execute(&q).unwrap();
        assert_eq!(
            out.embedding_count(),
            1,
            "only node 5 both receives A and has B"
        );
        assert_eq!(out.embeddings().schema().len(), 1);
    }

    #[test]
    fn empty_answer() {
        let g = figure1_graph();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "C", "?y").unwrap();
        qb.pattern("?y", "A", "?z").unwrap(); // nothing follows a C edge with an A edge
        let q = qb.build().unwrap();
        let out = WireframeEngine::new(&g).execute(&q).unwrap();
        assert_eq!(out.embedding_count(), 0);
        assert_eq!(out.answer_graph_size(), 0);
    }

    #[test]
    fn disconnected_query_is_rejected() {
        let g = figure1_graph();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?a", "A", "?b").unwrap();
        qb.pattern("?c", "C", "?d").unwrap();
        let q = qb.build().unwrap();
        assert_eq!(
            WireframeEngine::new(&g).execute(&q).unwrap_err(),
            EngineError::DisconnectedQuery
        );
    }

    #[test]
    fn all_planners_agree_on_the_answer() {
        let g = figure1_graph();
        let q = parse_query(
            "SELECT * WHERE { ?w :A ?x . ?x :B ?y . ?y :C ?z . }",
            g.dictionary(),
        )
        .unwrap();
        let mut answers = Vec::new();
        for kind in [
            PlannerKind::DpLeftDeep,
            PlannerKind::Greedy,
            PlannerKind::AsWritten,
        ] {
            let engine =
                WireframeEngine::with_options(&g, EvalOptions::default().with_planner(kind));
            answers.push(engine.execute(&q).unwrap().embeddings);
        }
        assert!(answers[0].same_answer(&answers[1]));
        assert!(answers[0].same_answer(&answers[2]));
    }

    #[test]
    fn edge_burnback_option_shrinks_cyclic_answer_graphs() {
        let mut b = GraphBuilder::new();
        b.add("3", "A", "4");
        b.add("3", "B", "2");
        b.add("4", "C", "1");
        b.add("2", "D", "1");
        b.add("7", "A", "8");
        b.add("7", "B", "6");
        b.add("8", "C", "5");
        b.add("6", "D", "5");
        b.add("4", "C", "5");
        b.add("8", "C", "1");
        let g = b.build();
        let q = parse_query(
            "SELECT * WHERE { ?x :A ?e . ?x :B ?z . ?e :C ?y . ?z :D ?y . }",
            g.dictionary(),
        )
        .unwrap();

        let plain = WireframeEngine::new(&g).execute(&q).unwrap();
        let burned = WireframeEngine::with_options(&g, EvalOptions::default().with_edge_burnback())
            .execute(&q)
            .unwrap();
        assert!(plain.cyclic() && burned.cyclic());
        assert!(burned.answer_graph_size() < plain.answer_graph_size());
        assert!(plain.embeddings.same_answer(&burned.embeddings));
        assert!(burned.edge_burnback().edges_removed > 0);
        assert_eq!(plain.edge_burnback().edges_removed, 0);
    }

    #[test]
    fn threads_option_never_changes_answers() {
        let mut b = GraphBuilder::new();
        for i in 0..200 {
            b.add(&format!("a{i}"), "A", "hub");
            b.add("mid", "C", &format!("c{i}"));
        }
        b.add("hub", "B", "mid");
        let g = b.build();
        let q = parse_query(
            "SELECT * WHERE { ?w :A ?x . ?x :B ?y . ?y :C ?z . }",
            g.dictionary(),
        )
        .unwrap();
        let sequential = WireframeEngine::new(&g).execute(&q).unwrap();
        let parallel = WireframeEngine::with_options(&g, EvalOptions::default().with_threads(4))
            .execute(&q)
            .unwrap();
        assert_eq!(sequential.embedding_count(), 200 * 200);
        assert!(sequential.embeddings.same_answer(&parallel.embeddings));
        assert_eq!(
            sequential.answer_graph_size(),
            parallel.answer_graph_size(),
            "phase one is untouched by the phase-two thread count"
        );
    }

    #[test]
    fn answer_graph_only_entry_point() {
        let g = figure1_graph();
        let q = parse_query("SELECT * WHERE { ?w :A ?x . ?x :B ?y . }", g.dictionary()).unwrap();
        let (ag, stats, plan) = WireframeEngine::new(&g).answer_graph(&q).unwrap();
        assert!(ag.total_edges() > 0);
        assert!(stats.edge_walks > 0);
        assert_eq!(plan.order.len(), 2);
    }
}

//! # wireframe-core — the answer-graph (factorized) CQ evaluator
//!
//! This crate implements the paper's contribution: two-phase, cost-based
//! evaluation of SPARQL conjunctive queries through an intermediate *answer
//! graph* — the subset of data edges sufficient to compose all embeddings.
//!
//! * [`AnswerGraph`] — the factorized result representation,
//! * [`generate`] — phase one: edge extension + cascading node burnback,
//! * [`plan`] / [`Plan`] — the Edgifier, a cost-based dynamic-programming
//!   planner over the estimated number of edge walks,
//! * [`triangulate`] / [`edge_burnback`] — the Triangulator and the optional
//!   edge-burnback pass for cyclic queries,
//! * [`defactorize`] — phase two: embedding generation from the answer graph,
//! * [`EmbeddingStream`] — lazy, constant-memory embedding enumeration,
//! * [`plan_bushy`] / [`execute_bushy`] — the bushy phase-two plan space the
//!   paper lists as future work,
//! * [`WireframeEngine`] — the end-to-end engine tying the phases together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod answer_graph;
mod bushy;
mod config;
mod defactorize;
mod engine;
mod error;
mod estimate;
mod explain;
mod generate;
mod parallel;
mod planner;
mod stream;
mod triangulate;

pub use answer_graph::{AnswerGraph, PatternEdges};
pub use bushy::{execute_bushy, plan_bushy, BushyPlan, BushyStats, JoinTree};
pub use config::{EvalOptions, PlannerKind};
pub use defactorize::{count_embeddings, defactorize, embedding_plan, DefactorizationStats};
pub use engine::{QueryOutput, Timings, WireframeEngine};
pub use error::EngineError;
pub use estimate::{Estimator, StepEstimate};
pub use explain::{explain_output, explain_plan};
pub use generate::{generate, ExtensionStep, GenerationStats};
pub use parallel::{defactorize_parallel, ParallelOptions};
pub use planner::{cost_of_order, plan, Plan};
pub use stream::{count_streaming, EmbeddingStream};
pub use triangulate::{
    edge_burnback, triangulate, Chord, Chordification, EdgeBurnbackStats, SideRef, Triangle,
};

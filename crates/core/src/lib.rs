//! # wireframe-core — the answer-graph (factorized) CQ evaluator
//!
//! This crate implements the paper's contribution: two-phase, cost-based
//! evaluation of SPARQL conjunctive queries through an intermediate *answer
//! graph* — the subset of data edges sufficient to compose all embeddings.
//!
//! * [`AnswerGraph`] — the factorized result representation,
//! * [`generate`] — phase one: edge extension + cascading node burnback,
//! * [`plan`] / [`Plan`] — the Edgifier, a cost-based dynamic-programming
//!   planner over the estimated number of edge walks,
//! * [`triangulate`] / [`edge_burnback`] — the Triangulator and the optional
//!   edge-burnback pass for cyclic queries,
//! * [`defactorize`] — phase two: embedding generation from the answer graph,
//! * [`EmbeddingStream`] — lazy, constant-memory embedding enumeration,
//! * [`plan_bushy`] / [`execute_bushy`] — the bushy phase-two plan space the
//!   paper lists as future work,
//! * [`WireframeEngine`] — the end-to-end engine tying the phases together,
//! * [`WcoEngine`] — a worst-case-optimal generic-join engine producing the
//!   same factorized artifact by variable extension (leapfrog intersection),
//!   whose [`WcoView`]s keep **cyclic** queries incrementally maintainable.
//!
//! ## Quickstart
//!
//! [`WireframeEngine`] implements the workspace-wide
//! [`Engine`](wireframe_api::Engine) trait, so it is driven exactly like the
//! baseline engines — or, more conveniently, through the `Session` facade of
//! the umbrella `wireframe` crate:
//!
//! ```
//! use wireframe_api::Engine;
//! use wireframe_core::WireframeEngine;
//! use wireframe_graph::GraphBuilder;
//! use wireframe_query::parse_query;
//!
//! let mut b = GraphBuilder::new();
//! b.add("alice", "knows", "bob");
//! b.add("bob", "knows", "carol");
//! let g = b.build();
//!
//! let engine = WireframeEngine::new(&g);
//! let q = parse_query(
//!     "SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . }",
//!     g.dictionary(),
//! )
//! .unwrap();
//! let prepared = engine.prepare(&q).unwrap(); // plans once…
//! let result = engine.evaluate(&prepared).unwrap(); // …evaluate many times
//! assert_eq!(result.embedding_count(), 1);
//! assert!(result.factorized.is_some(), "this engine factorizes");
//! ```
//!
//! The richer [`QueryOutput`] (full answer graph, per-step statistics) stays
//! available through [`WireframeEngine::execute`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod answer_graph;
mod bushy;
mod config;
mod defactorize;
mod engine;
mod error;
mod estimate;
mod explain;
mod generate;
mod maintain;
mod parallel;
mod planner;
mod sharded;
mod stream;
mod triangulate;
mod wco;

pub use answer_graph::{AnswerGraph, PatternEdges};
pub use bushy::{execute_bushy, plan_bushy, BushyPlan, BushyStats, JoinTree};
pub use config::{EvalOptions, PlannerKind};
pub use defactorize::{count_embeddings, defactorize, embedding_plan, DefactorizationStats};
pub use engine::{QueryOutput, Timings, WireframeEngine};
pub use error::EngineError;
pub use estimate::{Estimator, StepEstimate};
pub use explain::{explain_output, explain_plan};
pub use generate::{generate, ExtensionStep, GenerationStats};
pub use maintain::{MaterializedQuery, ProvenanceIndex};
pub use parallel::{auto_threads, defactorize_parallel, ParallelOptions};
pub use planner::{cost_of_order, plan, Plan};
pub use sharded::{merge_candidates, scan_candidates};
pub use stream::{count_streaming, EmbeddingStream};
pub use triangulate::{
    edge_burnback, triangulate, Chord, Chordification, EdgeBurnbackStats, SideRef, Triangle,
};
pub use wco::{WcoEngine, WcoPlan, WcoView};

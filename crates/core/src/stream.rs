//! Streaming defactorization: enumerate embeddings lazily from an answer graph.
//!
//! [`defactorize`](crate::defactorize::defactorize) materializes every
//! embedding tuple, which is what the benchmark measures (the paper reports
//! the time "to retrieve all the result tuples"). Many consumers, however,
//! only need to iterate — to stream results to a client, to take the first
//! `k`, or to count with constant memory. [`EmbeddingStream`] walks the answer
//! graph with a backtracking cursor and yields one embedding at a time without
//! ever holding more than one partial binding, which is possible precisely
//! because the answer graph is a factorized representation of the result.

use wireframe_graph::NodeId;
use wireframe_query::{ConjunctiveQuery, Term, Var};

use crate::answer_graph::AnswerGraph;
use crate::defactorize::embedding_plan;
use crate::error::EngineError;

/// A lazy iterator over the embeddings encoded by an answer graph.
///
/// The stream yields full embeddings (one value per query variable, in
/// variable-index order). Apply the query's projection afterwards if needed.
pub struct EmbeddingStream<'a> {
    query: &'a ConjunctiveQuery,
    ag: &'a AnswerGraph,
    /// Pattern indexes in join order.
    order: Vec<usize>,
    /// Current binding, indexed by variable.
    binding: Vec<Option<NodeId>>,
    /// For each depth, the candidate edges of that pattern under the binding
    /// at the time the depth was entered, and the next candidate to try.
    frames: Vec<Frame>,
    /// Whether iteration has finished.
    done: bool,
}

struct Frame {
    candidates: Vec<(NodeId, NodeId)>,
    next: usize,
    /// Variables bound by descending into this frame (to unbind on backtrack).
    bound_here: Vec<Var>,
}

impl<'a> EmbeddingStream<'a> {
    /// Creates a stream over `ag` using the same greedy connected join order
    /// as the materializing defactorizer.
    pub fn new(query: &'a ConjunctiveQuery, ag: &'a AnswerGraph) -> Result<Self, EngineError> {
        let order = embedding_plan(query, ag);
        Self::with_order(query, ag, order)
    }

    /// Creates a stream with an explicit join order (a permutation of the
    /// pattern indexes).
    pub fn with_order(
        query: &'a ConjunctiveQuery,
        ag: &'a AnswerGraph,
        order: Vec<usize>,
    ) -> Result<Self, EngineError> {
        if order.len() != query.num_patterns() {
            return Err(EngineError::Internal(
                "stream join order does not cover every query edge".into(),
            ));
        }
        let mut stream = EmbeddingStream {
            query,
            ag,
            order,
            binding: vec![None; query.num_vars()],
            frames: Vec::new(),
            done: false,
        };
        stream.push_frame();
        Ok(stream)
    }

    /// The candidates of the pattern at the current depth under the current binding.
    fn candidates_at(&self, depth: usize) -> Vec<(NodeId, NodeId)> {
        let pattern = self.query.patterns()[self.order[depth]];
        let edges = self.ag.pattern(self.order[depth]);
        let s_val = self.term_value(pattern.subject);
        let o_val = self.term_value(pattern.object);
        match (s_val, o_val) {
            (Some(s), Some(o)) => {
                if edges.contains(s, o) {
                    vec![(s, o)]
                } else {
                    Vec::new()
                }
            }
            (Some(s), None) => edges.objects_of(s).iter().map(|&o| (s, o)).collect(),
            (None, Some(o)) => edges.subjects_of(o).iter().map(|&s| (s, o)).collect(),
            (None, None) => edges.iter().collect(),
        }
    }

    fn term_value(&self, term: Term) -> Option<NodeId> {
        match term {
            Term::Const(c) => Some(c),
            Term::Var(v) => self.binding[v.index()],
        }
    }

    fn push_frame(&mut self) {
        let depth = self.frames.len();
        let candidates = self.candidates_at(depth);
        self.frames.push(Frame {
            candidates,
            next: 0,
            bound_here: Vec::new(),
        });
    }

    /// Tries to bind the pattern at `depth` to candidate `(s, o)`.
    /// Returns `false` (and undoes nothing) on a conflict with the binding.
    fn try_bind(&mut self, depth: usize, s: NodeId, o: NodeId) -> bool {
        let pattern = self.query.patterns()[self.order[depth]];
        let mut bound_here = Vec::new();
        let mut ok = true;
        for (term, value) in [(pattern.subject, s), (pattern.object, o)] {
            match term {
                Term::Const(c) => {
                    if c != value {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match self.binding[v.index()] {
                    None => {
                        self.binding[v.index()] = Some(value);
                        bound_here.push(v);
                    }
                    Some(existing) => {
                        if existing != value {
                            ok = false;
                            break;
                        }
                    }
                },
            }
        }
        if !ok {
            for v in bound_here {
                self.binding[v.index()] = None;
            }
            return false;
        }
        self.frames[depth].bound_here = bound_here;
        true
    }

    fn unbind(&mut self, depth: usize) {
        let vars = std::mem::take(&mut self.frames[depth].bound_here);
        for v in vars {
            self.binding[v.index()] = None;
        }
    }
}

impl Iterator for EmbeddingStream<'_> {
    type Item = Vec<NodeId>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let depth = self.frames.len() - 1;
            // A full embedding was emitted on the previous call if depth ==
            // num_patterns; that state is handled below by popping first.
            if depth == self.query.num_patterns() {
                // We emitted from here last time; drop the sentinel and let the
                // last pattern frame advance to its next candidate.
                self.frames.pop();
                continue;
            }
            let frame = &mut self.frames[depth];
            if frame.next >= frame.candidates.len() {
                // Exhausted: release this frame's binding and backtrack.
                self.unbind(depth);
                self.frames.pop();
                if self.frames.is_empty() {
                    self.done = true;
                    return None;
                }
                continue;
            }
            let (s, o) = frame.candidates[frame.next];
            frame.next += 1;
            // Undo the binding of the previous candidate at this depth, if any.
            self.unbind(depth);
            if !self.try_bind(depth, s, o) {
                continue;
            }
            if depth + 1 == self.query.num_patterns() {
                // Complete embedding. Keep a sentinel frame so the next call
                // backtracks correctly.
                let out: Option<Vec<NodeId>> = self.binding.iter().copied().collect();
                match out {
                    Some(tuple) => {
                        self.frames.push(Frame {
                            candidates: Vec::new(),
                            next: 0,
                            bound_here: Vec::new(),
                        });
                        return Some(tuple);
                    }
                    None => {
                        // A variable is unbound even though all patterns are
                        // matched — possible only if some variable appears in
                        // no pattern, which the query model prevents; treat as
                        // exhausted to stay safe.
                        self.done = true;
                        return None;
                    }
                }
            }
            self.push_frame();
        }
    }
}

/// Counts the embeddings of an answer graph with constant memory.
pub fn count_streaming(query: &ConjunctiveQuery, ag: &AnswerGraph) -> Result<usize, EngineError> {
    Ok(EmbeddingStream::new(query, ag)?.count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalOptions;
    use crate::defactorize::defactorize;
    use crate::generate::generate;
    use wireframe_graph::{Graph, GraphBuilder};
    use wireframe_query::{CqBuilder, EmbeddingSet};

    fn figure1_graph() -> Graph {
        let mut b = GraphBuilder::new();
        for s in ["1", "2", "3"] {
            b.add(s, "A", "5");
        }
        b.add("4", "A", "6");
        b.add("5", "B", "9");
        b.add("7", "B", "10");
        for o in ["12", "13", "14", "15"] {
            b.add("9", "C", o);
        }
        b.add("11", "C", "15");
        b.build()
    }

    fn chain_query(g: &Graph) -> ConjunctiveQuery {
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?w", "A", "?x").unwrap();
        qb.pattern("?x", "B", "?y").unwrap();
        qb.pattern("?y", "C", "?z").unwrap();
        qb.build().unwrap()
    }

    fn ag_for(g: &Graph, q: &ConjunctiveQuery) -> AnswerGraph {
        let order: Vec<usize> = (0..q.num_patterns()).collect();
        generate(g, q, &order, &EvalOptions::default()).unwrap().0
    }

    #[test]
    fn stream_matches_materialized_defactorization() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let ag = ag_for(&g, &q);
        let order = embedding_plan(&q, &ag);
        let (materialized, _) = defactorize(&q, &ag, &order).unwrap();

        let streamed: Vec<Vec<NodeId>> = EmbeddingStream::new(&q, &ag).unwrap().collect();
        let schema: Vec<Var> = q.variables().collect();
        let streamed_set = EmbeddingSet::new(schema, streamed);
        assert!(streamed_set.same_answer(&materialized));
        assert_eq!(streamed_set.len(), 12);
    }

    #[test]
    fn streaming_count_is_constant_memory_path() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let ag = ag_for(&g, &q);
        assert_eq!(count_streaming(&q, &ag).unwrap(), 12);
    }

    #[test]
    fn take_k_stops_early() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let ag = ag_for(&g, &q);
        let first3: Vec<_> = EmbeddingStream::new(&q, &ag).unwrap().take(3).collect();
        assert_eq!(first3.len(), 3);
        for t in first3 {
            assert_eq!(t.len(), q.num_vars());
        }
    }

    #[test]
    fn empty_answer_graph_streams_nothing() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let ag = AnswerGraph::new(&q);
        assert_eq!(EmbeddingStream::new(&q, &ag).unwrap().count(), 0);
    }

    #[test]
    fn stream_handles_constants_and_cycles() {
        let mut b = GraphBuilder::new();
        b.add("3", "A", "4");
        b.add("3", "B", "2");
        b.add("4", "C", "1");
        b.add("2", "D", "1");
        b.add("4", "C", "5");
        let g = b.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "A", "?e").unwrap();
        qb.pattern("?x", "B", "?z").unwrap();
        qb.pattern("?e", "C", "?y").unwrap();
        qb.pattern("?z", "D", "?y").unwrap();
        let q = qb.build().unwrap();
        let ag = ag_for(&g, &q);
        let all: Vec<_> = EmbeddingStream::new(&q, &ag).unwrap().collect();
        assert_eq!(all.len(), 1, "only the closed diamond is an embedding");
    }

    #[test]
    fn explicit_order_must_cover_all_patterns() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let ag = ag_for(&g, &q);
        assert!(EmbeddingStream::with_order(&q, &ag, vec![0, 1]).is_err());
    }

    #[test]
    fn self_loop_streaming() {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "1");
        b.add("1", "A", "2");
        b.add("1", "B", "4");
        let g = b.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "A", "?x").unwrap();
        qb.pattern("?x", "B", "?y").unwrap();
        let q = qb.build().unwrap();
        let ag = ag_for(&g, &q);
        let all: Vec<_> = EmbeddingStream::new(&q, &ag).unwrap().collect();
        assert_eq!(all.len(), 1);
    }
}

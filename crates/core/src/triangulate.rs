//! The Triangulator and edge burnback for cyclic queries.
//!
//! Node burnback alone guarantees the *ideal* answer graph only for acyclic
//! queries. In a cyclic query, an answer edge can survive node burnback while
//! participating in no embedding (the spurious edges of the paper's Figure 4).
//! To cull them, the paper triangulates cycles of length greater than three by
//! adding *chords*, maintains each chord as the intersection of the joins of
//! the opposite two sides of every triangle it participates in, and then runs
//! an *edge burnback* pass that removes answer edges unsupported by their
//! triangles, cascading with node burnback until a fixpoint.
//!
//! The paper leaves edge burnback as work in progress and runs its experiments
//! without it; here it is implemented behind
//! [`EvalOptions::edge_burnback`](crate::config::EvalOptions::edge_burnback)
//! so that both configurations can be compared. For queries whose cycles are
//! simple and vertex-disjoint (the diamond workload), the pass yields the
//! ideal answer graph; for arbitrary overlapping cycles it still only removes
//! provably spurious edges (it never removes a supported edge), so it is
//! always sound.

use std::collections::{HashMap, HashSet};

use wireframe_graph::NodeId;
use wireframe_query::{ConjunctiveQuery, QueryGraph, Var};

use crate::answer_graph::AnswerGraph;
use crate::generate::burn_nodes;

/// One side of a triangle: either an actual query edge or an added chord.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SideRef {
    /// A query edge (pattern index).
    Pattern(usize),
    /// A chord added by the Triangulator (index into [`Chordification::chords`]).
    Chord(usize),
}

/// A triangle of the chordified query graph. Each side connects two of the
/// triangle's three variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Triangle {
    /// The three corner variables.
    pub corners: [Var; 3],
    /// The three sides; `sides[i]` connects `corners[i]` and `corners[(i + 1) % 3]`.
    pub sides: [SideRef; 3],
}

/// A chord: an auxiliary connection between two query variables, maintained as
/// a materialized set of node pairs during edge burnback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chord {
    /// First endpoint variable.
    pub a: Var,
    /// Second endpoint variable.
    pub b: Var,
}

/// The output of the Triangulator: chords added and triangles to maintain.
#[derive(Debug, Clone, Default)]
pub struct Chordification {
    /// The chords added to triangulate cycles longer than three.
    pub chords: Vec<Chord>,
    /// All triangles (over query edges and chords) to keep consistent.
    pub triangles: Vec<Triangle>,
}

impl Chordification {
    /// Whether the query needed any triangles at all (i.e. is cyclic).
    pub fn is_empty(&self) -> bool {
        self.triangles.is_empty()
    }
}

/// Triangulates every fundamental cycle of the query graph by fanning chords
/// out of one apex vertex per cycle (cycles of length three become triangles
/// directly, with no chord).
pub fn triangulate(query: &ConjunctiveQuery) -> Chordification {
    let qg = QueryGraph::new(query);
    let mut out = Chordification::default();
    for cycle in qg.fundamental_cycles() {
        let Some(walk) = cycle_walk(query, &cycle) else {
            continue;
        };
        let k = walk.len();
        if k < 3 {
            // Length-2 cycles (parallel patterns) and self-loops need no
            // triangles: node burnback together with the pairwise edge checks
            // of defactorization already constrain them.
            continue;
        }
        // walk[i] = (variable v_i, pattern index of edge v_i -- v_{i+1 mod k}).
        let apex = walk[0].0;
        // conn[i] connects the apex with v_i (valid for i = 1..k-1): the two
        // cycle edges incident to the apex are reused; interior vertices get
        // chords fanned out of the apex.
        let mut conn: Vec<Option<SideRef>> = vec![None; k];
        conn[1] = Some(SideRef::Pattern(walk[0].1));
        conn[k - 1] = Some(SideRef::Pattern(walk[k - 1].1));
        for (i, conn_i) in conn.iter_mut().enumerate().take(k - 1).skip(2) {
            let chord_idx = out.chords.len();
            out.chords.push(Chord {
                a: apex,
                b: walk[i].0,
            });
            *conn_i = Some(SideRef::Chord(chord_idx));
        }
        // Triangles (apex, v_i, v_{i+1}) for i = 1..k-2, using the pattern
        // edge e_i between v_i and v_{i+1} as the far side.
        for i in 1..k - 1 {
            let v_i = walk[i].0;
            let v_next = walk[i + 1].0;
            out.triangles.push(Triangle {
                corners: [apex, v_i, v_next],
                sides: [
                    conn[i].expect("connection to v_i exists"),
                    SideRef::Pattern(walk[i].1),
                    conn[i + 1].expect("connection to v_{i+1} exists"),
                ],
            });
        }
    }
    out
}

/// Orders a fundamental cycle's pattern edges into a closed vertex walk
/// `v_0 -e_0- v_1 -e_1- … -e_{k-1}- v_0`. Returns `None` for degenerate
/// cycles (self-loops).
fn cycle_walk(query: &ConjunctiveQuery, cycle_edges: &[usize]) -> Option<Vec<(Var, usize)>> {
    if cycle_edges.len() < 2 {
        return None;
    }
    // Build adjacency restricted to the cycle's edges.
    let mut adj: HashMap<Var, Vec<(Var, usize)>> = HashMap::new();
    for &e in cycle_edges {
        let p = query.patterns()[e];
        let (Some(a), Some(b)) = (p.subject.as_var(), p.object.as_var()) else {
            return None;
        };
        adj.entry(a).or_default().push((b, e));
        adj.entry(b).or_default().push((a, e));
    }
    let start = *adj.keys().min()?;
    let mut walk = Vec::with_capacity(cycle_edges.len());
    let mut current = start;
    let mut used: HashSet<usize> = HashSet::new();
    loop {
        let next = adj
            .get(&current)?
            .iter()
            .find(|(_, e)| !used.contains(e))
            .copied();
        match next {
            Some((nbr, e)) => {
                used.insert(e);
                walk.push((current, e));
                current = nbr;
                if current == start {
                    break;
                }
            }
            None => return None,
        }
    }
    if used.len() == cycle_edges.len() {
        Some(walk)
    } else {
        None
    }
}

/// The subrange of a `(key, value)` slice sorted by key whose entries carry
/// `key` (binary-searched equal range).
fn equal_range(slice: &[(NodeId, NodeId)], key: NodeId) -> &[(NodeId, NodeId)] {
    let lo = slice.partition_point(|&(k, _)| k < key);
    let hi = lo + slice[lo..].partition_point(|&(k, _)| k == key);
    &slice[lo..hi]
}

/// Oriented materialization of one triangle side: pairs keyed `(left, right)`
/// where `left` binds the first corner and `right` the second. Both
/// orientations are kept as sorted, deduplicated pair lists, so candidate
/// generation is an equal-range binary search and the triangle support probe
/// is a binary search — no hashing on the edge-burnback hot path.
#[derive(Debug, Clone, Default)]
struct SideMaterial {
    /// `(left, right)`, sorted.
    by_left: Vec<(NodeId, NodeId)>,
    /// `(right, left)`, sorted.
    by_right: Vec<(NodeId, NodeId)>,
}

impl SideMaterial {
    fn from_pairs(pairs: impl Iterator<Item = (NodeId, NodeId)>) -> Self {
        let mut by_left: Vec<(NodeId, NodeId)> = pairs.collect();
        by_left.sort_unstable();
        by_left.dedup();
        let mut by_right: Vec<(NodeId, NodeId)> = by_left.iter().map(|&(l, r)| (r, l)).collect();
        by_right.sort_unstable();
        SideMaterial { by_left, by_right }
    }

    /// The reverse orientation — a swap of the two presorted lists, no re-sort.
    fn flipped(&self) -> SideMaterial {
        SideMaterial {
            by_left: self.by_right.clone(),
            by_right: self.by_left.clone(),
        }
    }

    /// The `(l, r)` entries for this `l` (rights ascending).
    fn rights_of(&self, l: NodeId) -> &[(NodeId, NodeId)] {
        equal_range(&self.by_left, l)
    }

    fn contains(&self, l: NodeId, r: NodeId) -> bool {
        self.by_left.binary_search(&(l, r)).is_ok()
    }

    fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.by_left.iter().copied()
    }
}

/// Statistics of an edge-burnback pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeBurnbackStats {
    /// Answer edges removed because no triangle supported them.
    pub edges_removed: usize,
    /// Nodes removed by the node-burnback cascades those removals triggered.
    pub nodes_removed: usize,
    /// Fixpoint iterations performed.
    pub iterations: usize,
}

/// Runs edge burnback over `ag` using the chordification of `query`.
///
/// Chord materializations are (re)computed each iteration as the intersection,
/// over the triangles containing the chord, of the join of the triangle's
/// other two sides. Then every answer edge that is a triangle side must be
/// witnessed by some third-corner node; unwitnessed edges are removed and node
/// burnback cascades. The pass iterates until no edge is removed.
pub fn edge_burnback(
    query: &ConjunctiveQuery,
    ag: &mut AnswerGraph,
    chordification: &Chordification,
) -> EdgeBurnbackStats {
    let mut stats = EdgeBurnbackStats::default();
    if chordification.is_empty() {
        return stats;
    }

    loop {
        stats.iterations += 1;
        let chords = materialize_chords(query, ag, chordification);
        let mut removed_this_round = 0usize;

        for tri in &chordification.triangles {
            for side_idx in 0..3 {
                let SideRef::Pattern(pattern_idx) = tri.sides[side_idx] else {
                    continue;
                };
                let left_corner = tri.corners[side_idx];
                let right_corner = tri.corners[(side_idx + 1) % 3];
                let third_corner = tri.corners[(side_idx + 2) % 3];
                // Materialize the two other sides oriented from their shared
                // corners towards the third corner.
                let left_to_third = side_material(
                    query,
                    ag,
                    &chordification.chords,
                    &chords,
                    tri,
                    (side_idx + 2) % 3,
                    left_corner,
                    third_corner,
                );
                let right_to_third = side_material(
                    query,
                    ag,
                    &chordification.chords,
                    &chords,
                    tri,
                    (side_idx + 1) % 3,
                    right_corner,
                    third_corner,
                );

                // Collect the pattern's answer edges oriented (left_corner, right_corner).
                let oriented: Vec<(NodeId, NodeId)> =
                    oriented_pattern_pairs(query, ag, pattern_idx, left_corner, right_corner)
                        .collect();
                for (a, b) in oriented {
                    let supported = left_to_third
                        .rights_of(a)
                        .iter()
                        .any(|&(_, c)| right_to_third.contains(b, c));
                    if supported {
                        continue;
                    }
                    // Remove the edge in its stored (subject, object) orientation.
                    let p = query.patterns()[pattern_idx];
                    let (s, o) = if p.subject.as_var() == Some(left_corner) {
                        (a, b)
                    } else {
                        (b, a)
                    };
                    if ag.pattern_mut(pattern_idx).remove(s, o) {
                        removed_this_round += 1;
                        // Nodes that lost their last supporting edge in this
                        // pattern must be burned, cascading normally.
                        let mut worklist = Vec::new();
                        if let Some(v) = p.subject.as_var() {
                            if !ag.pattern(pattern_idx).has_subject(s)
                                && ag.node_set(v).contains(&s)
                            {
                                worklist.push((v, s));
                            }
                        }
                        if let Some(v) = p.object.as_var() {
                            if !ag.pattern(pattern_idx).has_object(o) && ag.node_set(v).contains(&o)
                            {
                                worklist.push((v, o));
                            }
                        }
                        let mut edges_burned = 0usize;
                        let mut nodes_burned = 0usize;
                        burn_nodes(query, ag, worklist, &mut edges_burned, &mut nodes_burned);
                        removed_this_round += edges_burned;
                        stats.nodes_removed += nodes_burned;
                    }
                }
            }
        }

        stats.edges_removed += removed_this_round;
        if removed_this_round == 0 {
            break;
        }
    }
    stats
}

/// Computes every chord's materialization: the intersection over its triangles
/// of the join of the other two sides (projected onto the chord's endpoints).
fn materialize_chords(
    query: &ConjunctiveQuery,
    ag: &AnswerGraph,
    chordification: &Chordification,
) -> Vec<SideMaterial> {
    let mut chords: Vec<Option<SideMaterial>> = vec![None; chordification.chords.len()];
    // Chords fan out of an apex, and chord i+1's triangle uses chord i, so a
    // few passes are needed for the joins to propagate; iterate until stable
    // (bounded by the number of chords).
    for _ in 0..=chordification.chords.len() {
        for tri in &chordification.triangles {
            for side_idx in 0..3 {
                let SideRef::Chord(chord_idx) = tri.sides[side_idx] else {
                    continue;
                };
                let chord = chordification.chords[chord_idx];
                let left_corner = tri.corners[side_idx];
                let right_corner = tri.corners[(side_idx + 1) % 3];
                let third_corner = tri.corners[(side_idx + 2) % 3];
                let left_to_third = side_material_opt(
                    query,
                    ag,
                    &chordification.chords,
                    &chords,
                    tri,
                    (side_idx + 2) % 3,
                    left_corner,
                    third_corner,
                );
                let right_to_third = side_material_opt(
                    query,
                    ag,
                    &chordification.chords,
                    &chords,
                    tri,
                    (side_idx + 1) % 3,
                    right_corner,
                    third_corner,
                );
                let (Some(lt), Some(rt)) = (left_to_third, right_to_third) else {
                    continue;
                };
                // Join: (a, b) such that ∃ c with (a, c) ∈ lt and (b, c) ∈ rt,
                // oriented so that `a` binds chord.a and `b` binds chord.b.
                // Both `by_right` lists are sorted by the shared corner `c`,
                // so this is a sort-merge join over contiguous equal ranges.
                let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
                let (la, lb) = (&lt.by_right, &rt.by_right);
                let mut i = 0;
                while i < la.len() {
                    let c = la[i].0;
                    let left_run = equal_range(&la[i..], c);
                    for &(_, b) in equal_range(lb, c) {
                        for &(_, a) in left_run {
                            let (ca, cb) = if left_corner == chord.a {
                                (a, b)
                            } else {
                                (b, a)
                            };
                            pairs.push((ca, cb));
                        }
                    }
                    i += left_run.len();
                }
                pairs.sort_unstable();
                pairs.dedup();
                let joined = SideMaterial::from_pairs(pairs.into_iter());
                chords[chord_idx] = Some(match chords[chord_idx].take() {
                    None => joined,
                    Some(existing) => {
                        // Intersection with the previously computed join.
                        SideMaterial::from_pairs(
                            existing.pairs().filter(|&(a, b)| joined.contains(a, b)),
                        )
                    }
                });
            }
        }
    }
    chords.into_iter().map(|c| c.unwrap_or_default()).collect()
}

/// Materialization of a triangle side oriented `(from, to)`.
#[allow(clippy::too_many_arguments)] // mirrors side_material_opt; all args are views into one pass
fn side_material(
    query: &ConjunctiveQuery,
    ag: &AnswerGraph,
    chord_specs: &[Chord],
    chords: &[SideMaterial],
    tri: &Triangle,
    side_idx: usize,
    from: Var,
    to: Var,
) -> SideMaterial {
    match tri.sides[side_idx] {
        SideRef::Pattern(p) => {
            SideMaterial::from_pairs(oriented_pattern_pairs(query, ag, p, from, to))
        }
        SideRef::Chord(c) => {
            // Chord materials are stored oriented (chord.a, chord.b); flip if
            // needed — both orientations are presorted, so no re-sort either way.
            let material = &chords[c];
            if chord_specs[c].a == from {
                material.clone()
            } else {
                material.flipped()
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn side_material_opt(
    query: &ConjunctiveQuery,
    ag: &AnswerGraph,
    chord_specs: &[Chord],
    chords: &[Option<SideMaterial>],
    tri: &Triangle,
    side_idx: usize,
    from: Var,
    to: Var,
) -> Option<SideMaterial> {
    match tri.sides[side_idx] {
        SideRef::Pattern(p) => Some(SideMaterial::from_pairs(oriented_pattern_pairs(
            query, ag, p, from, to,
        ))),
        SideRef::Chord(c) => {
            let material = chords[c].as_ref()?;
            Some(if chord_specs[c].a == from {
                material.clone()
            } else {
                material.flipped()
            })
        }
    }
}

/// The answer edges of `pattern_idx` oriented so the first component binds
/// `from` and the second binds `to`.
fn oriented_pattern_pairs<'a>(
    query: &ConjunctiveQuery,
    ag: &'a AnswerGraph,
    pattern_idx: usize,
    from: Var,
    _to: Var,
) -> Box<dyn Iterator<Item = (NodeId, NodeId)> + 'a> {
    let p = query.patterns()[pattern_idx];
    if p.subject.as_var() == Some(from) {
        Box::new(ag.pattern(pattern_idx).iter())
    } else {
        Box::new(ag.pattern(pattern_idx).iter().map(|(s, o)| (o, s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalOptions;
    use crate::defactorize::{defactorize, embedding_plan};
    use crate::generate::generate;
    use wireframe_graph::{Graph, GraphBuilder};
    use wireframe_query::CqBuilder;

    /// The Figure 4 scenario: two disjoint diamonds plus two spurious C-edges
    /// that survive node burnback but belong to no embedding.
    fn figure4_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add("3", "A", "4");
        b.add("3", "B", "2");
        b.add("4", "C", "1");
        b.add("2", "D", "1");
        b.add("7", "A", "8");
        b.add("7", "B", "6");
        b.add("8", "C", "5");
        b.add("6", "D", "5");
        b.add("4", "C", "5");
        b.add("8", "C", "1");
        b.build()
    }

    fn diamond_query(g: &Graph) -> ConjunctiveQuery {
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "A", "?e").unwrap();
        qb.pattern("?x", "B", "?z").unwrap();
        qb.pattern("?e", "C", "?y").unwrap();
        qb.pattern("?z", "D", "?y").unwrap();
        qb.build().unwrap()
    }

    #[test]
    fn acyclic_query_needs_no_triangles() {
        let g = figure4_graph();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "A", "?e").unwrap();
        qb.pattern("?e", "C", "?y").unwrap();
        let q = qb.build().unwrap();
        let c = triangulate(&q);
        assert!(c.is_empty());
        assert!(c.chords.is_empty());
    }

    #[test]
    fn diamond_gets_one_chord_and_two_triangles() {
        let g = figure4_graph();
        let q = diamond_query(&g);
        let c = triangulate(&q);
        assert_eq!(c.chords.len(), 1, "a 4-cycle needs one chord");
        assert_eq!(c.triangles.len(), 2);
        // Every triangle side is a pattern or the chord.
        for t in &c.triangles {
            for s in t.sides {
                match s {
                    SideRef::Pattern(i) => assert!(i < q.num_patterns()),
                    SideRef::Chord(i) => assert!(i < c.chords.len()),
                }
            }
        }
    }

    #[test]
    fn pentagon_gets_two_chords_and_three_triangles() {
        let mut b = GraphBuilder::new();
        for p in ["P1", "P2", "P3", "P4", "P5"] {
            b.add("x", p, "y");
        }
        let g = b.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?a", "P1", "?b").unwrap();
        qb.pattern("?b", "P2", "?c").unwrap();
        qb.pattern("?c", "P3", "?d").unwrap();
        qb.pattern("?d", "P4", "?e").unwrap();
        qb.pattern("?e", "P5", "?a").unwrap();
        let q = qb.build().unwrap();
        let c = triangulate(&q);
        assert_eq!(c.chords.len(), 2);
        assert_eq!(c.triangles.len(), 3);
    }

    #[test]
    fn triangle_query_needs_no_chord_but_one_triangle() {
        let mut b = GraphBuilder::new();
        for p in ["P1", "P2", "P3"] {
            b.add("x", p, "y");
        }
        let g = b.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?a", "P1", "?b").unwrap();
        qb.pattern("?b", "P2", "?c").unwrap();
        qb.pattern("?c", "P3", "?a").unwrap();
        let q = qb.build().unwrap();
        let c = triangulate(&q);
        assert!(c.chords.is_empty());
        assert_eq!(c.triangles.len(), 1);
    }

    #[test]
    fn edge_burnback_removes_figure4_spurious_edges() {
        let g = figure4_graph();
        let q = diamond_query(&g);
        let (mut ag, _) = generate(&g, &q, &[0, 1, 2, 3], &EvalOptions::default()).unwrap();
        assert_eq!(
            ag.total_edges(),
            10,
            "node burnback alone keeps the spurious edges"
        );

        let c = triangulate(&q);
        let stats = edge_burnback(&q, &mut ag, &c);
        assert_eq!(ag.total_edges(), 8, "the two spurious C-edges are culled");
        assert!(stats.edges_removed >= 2);
        assert!(stats.iterations >= 1);

        // The embeddings are unchanged: exactly the two diamonds.
        let order = embedding_plan(&q, &ag);
        let (emb, _) = defactorize(&q, &ag, &order).unwrap();
        assert_eq!(emb.len(), 2);
    }

    #[test]
    fn edge_burnback_preserves_embeddings() {
        let g = figure4_graph();
        let q = diamond_query(&g);
        let (ag_plain, _) = generate(&g, &q, &[0, 1, 2, 3], &EvalOptions::default()).unwrap();
        let (mut ag_burned, _) = generate(&g, &q, &[0, 1, 2, 3], &EvalOptions::default()).unwrap();
        edge_burnback(&q, &mut ag_burned, &triangulate(&q));

        let (a, _) = defactorize(&q, &ag_plain, &embedding_plan(&q, &ag_plain)).unwrap();
        let (b, _) = defactorize(&q, &ag_burned, &embedding_plan(&q, &ag_burned)).unwrap();
        assert!(
            a.same_answer(&b),
            "edge burnback must never change the answer"
        );
    }

    #[test]
    fn edge_burnback_is_a_fixpoint() {
        let g = figure4_graph();
        let q = diamond_query(&g);
        let (mut ag, _) = generate(&g, &q, &[0, 1, 2, 3], &EvalOptions::default()).unwrap();
        let c = triangulate(&q);
        edge_burnback(&q, &mut ag, &c);
        let again = edge_burnback(&q, &mut ag, &c);
        assert_eq!(
            again.edges_removed, 0,
            "running burnback twice removes nothing new"
        );
    }

    #[test]
    fn edge_burnback_on_acyclic_is_a_noop() {
        let g = figure4_graph();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "A", "?e").unwrap();
        qb.pattern("?e", "C", "?y").unwrap();
        let q = qb.build().unwrap();
        let (mut ag, _) = generate(&g, &q, &[0, 1], &EvalOptions::default()).unwrap();
        let before = ag.total_edges();
        let stats = edge_burnback(&q, &mut ag, &triangulate(&q));
        assert_eq!(stats.edges_removed, 0);
        assert_eq!(ag.total_edges(), before);
    }
}

//! Scatter-gather evaluation over subject-partitioned graph shards.
//!
//! The paper's bet — the factorized answer graph is orders of magnitude
//! smaller than the embeddings it encodes — is exactly what makes sharding
//! pay: each shard contributes only its **candidate** answer-graph edges
//! (a per-predicate scan filtered by the pattern's constant ends), the
//! merge unions those per-pattern edge lists, and one node-burnback cascade
//! plus one defactorization run on the small merged artifact. The expensive
//! phases never see per-shard duplication.
//!
//! Why candidate scans instead of full per-shard evaluation: node burnback
//! removes a node when it lacks support in *some* pattern, but under
//! subject partitioning a node's supporting edges can live on a different
//! shard than the edges that bound it. A per-shard burnback would therefore
//! remove nodes the global fixpoint keeps — union-of-answer-graphs is
//! provably lossy. Union-of-candidates followed by a single global burnback
//! computes the same greatest fixpoint as evaluating the unpartitioned
//! graph: the fixpoint is unique (plan-order independence is pinned by the
//! engine's tests), the candidate union over disjoint shards equals the
//! unpartitioned candidate set, and burnback from any superset of the
//! fixpoint converges to it.
//!
//! The merged path always runs **node burnback only** (the paper's default
//! configuration): edge burnback is an answer-graph compression, not a
//! correctness requirement, and defactorization is exact either way.

use wireframe_graph::{Graph, NodeId};
use wireframe_query::{ConjunctiveQuery, QueryGraph, Var};

use crate::answer_graph::AnswerGraph;
use crate::config::EvalOptions;
use crate::error::EngineError;
use crate::generate::{burn_nodes, GenerationStats};
use crate::maintain::{ends_match, MaterializedQuery};
use crate::planner;
use crate::triangulate::EdgeBurnbackStats;

/// The per-pattern candidate edges one shard contributes to a query: for
/// each pattern, every `(subject, object)` pair of the pattern's predicate
/// on this shard whose constant ends (and self-loop shape) admit it.
///
/// This is a pure index scan — no burnback, no cross-pattern filtering —
/// because global support cannot be decided shard-locally (see the module
/// docs). Shards partition triples by subject, so the scans of distinct
/// shards are disjoint and union cleanly.
pub fn scan_candidates(graph: &Graph, query: &ConjunctiveQuery) -> Vec<Vec<(NodeId, NodeId)>> {
    query
        .patterns()
        .iter()
        .map(|pat| {
            graph
                .pairs(pat.predicate)
                .iter()
                .copied()
                .filter(|&(s, o)| ends_match(pat, s, o))
                .collect()
        })
        .collect()
}

/// Merges per-shard candidate scans into one materialized view: union the
/// per-pattern edge lists, re-derive the variable node sets, run one global
/// node-burnback cascade to the greatest fixpoint, and assemble a
/// [`MaterializedQuery`] ready to defactorize (once, on the merged
/// artifact).
///
/// `plan_graph` supplies the statistics catalog for the phase-one plan
/// recorded in the view (any shard's graph works: the plan affects cost
/// accounting and maintenance metadata, not the fixpoint). `per_shard`
/// holds one [`scan_candidates`] result per shard; shards must partition
/// the data by subject so the scans are disjoint.
///
/// The resulting answer graph is **bit-identical** to phase one over the
/// unpartitioned graph under the paper's default options (node burnback
/// only) — the cross-shard equivalence suite pins this. `options.
/// edge_burnback` is ignored: the merged path never prunes below the
/// node-burnback fixpoint, so the view stays maintainable and the answers
/// stay exact.
pub fn merge_candidates(
    query: &ConjunctiveQuery,
    plan_graph: &Graph,
    per_shard: &[Vec<Vec<(NodeId, NodeId)>>],
    options: EvalOptions,
) -> Result<MaterializedQuery, EngineError> {
    // The merged path is node-burnback-only by construction; record options
    // that say so, keeping `MaterializedQuery::is_maintainable` truthful.
    let options = EvalOptions {
        edge_burnback: false,
        ..options
    };
    let plan = planner::plan(plan_graph, query, options.planner)?;
    let cyclic = QueryGraph::new(query).is_cyclic();
    let mut ag = AnswerGraph::new(query);
    let mut stats = GenerationStats::default();

    // Union the per-pattern candidate lists. Disjoint by subject ownership,
    // so the bulk load sees no duplicates.
    let mut empty_pattern = false;
    for q in 0..query.num_patterns() {
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for shard in per_shard {
            edges.extend_from_slice(&shard[q]);
        }
        stats.edge_walks += edges.len() as u64;
        stats.edges_added += edges.len() as u64;
        empty_pattern |= edges.is_empty();
        if !edges.is_empty() {
            ag.pattern_mut(q).bulk_load(edges);
        }
        ag.mark_materialized(q);
    }

    if empty_pattern {
        // A pattern that matched nothing anywhere empties the whole answer
        // (same shape the generator's clear path produces: every pattern
        // materialized-empty, every node set empty).
        return Ok(MaterializedQuery::from_phase_one(
            query.clone(),
            plan,
            cyclic,
            cleared_answer_graph(query),
            stats,
            EdgeBurnbackStats::default(),
            options,
        ));
    }

    let settled = settle_candidates(query, &mut ag);
    stats.edges_burned += settled.edges_burned as u64;
    stats.nodes_burned += settled.nodes_burned as u64;

    // Burnback can empty a pattern, which empties the whole answer.
    if ag.has_empty_pattern() {
        ag = cleared_answer_graph(query);
    }

    Ok(MaterializedQuery::from_phase_one(
        query.clone(),
        plan,
        cyclic,
        ag,
        stats,
        EdgeBurnbackStats::default(),
        options,
    ))
}

/// What [`settle_candidates`] burned on the way to the fixpoint.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SettleStats {
    /// Answer-graph edges removed by the cascade.
    pub edges_burned: usize,
    /// Node-set entries removed by the cascade.
    pub nodes_burned: usize,
    /// `(variable, node)` pairs that seeded the cascade.
    pub frontier: usize,
}

/// Settles a per-pattern candidate edge union into the node-burnback
/// fixpoint: re-derive each variable's node set as the union of its
/// endpoint values across incident patterns (a superset of the fixpoint),
/// seed the worklist with every unsupported `(variable, node)` pair, and
/// cascade. Shared by the sharded merge and the WCO engine's finalization —
/// both produce candidate supersets that one global burnback settles.
pub(crate) fn settle_candidates(query: &ConjunctiveQuery, ag: &mut AnswerGraph) -> SettleStats {
    for v in query.variables() {
        let mut nodes: Vec<NodeId> = Vec::new();
        for (q, pat) in query.patterns().iter().enumerate() {
            if pat.subject.as_var() == Some(v) {
                nodes.extend(ag.pattern(q).subjects());
            }
            if pat.object.as_var() == Some(v) {
                nodes.extend(ag.pattern(q).objects());
            }
        }
        nodes.sort_unstable();
        nodes.dedup();
        ag.node_set_mut(v).assign_sorted(nodes);
        ag.mark_bound(v);
    }

    let mut worklist: Vec<(Var, NodeId)> = Vec::new();
    for v in query.variables() {
        let nodes = ag.node_set(v).to_sorted_vec();
        'nodes: for n in nodes {
            for (q, pat) in query.patterns().iter().enumerate() {
                if pat.subject.as_var() == Some(v) && !ag.pattern(q).has_subject(n) {
                    worklist.push((v, n));
                    continue 'nodes;
                }
                if pat.object.as_var() == Some(v) && !ag.pattern(q).has_object(n) {
                    worklist.push((v, n));
                    continue 'nodes;
                }
            }
        }
    }
    let mut stats = SettleStats {
        frontier: worklist.len(),
        ..SettleStats::default()
    };
    burn_nodes(
        query,
        ag,
        worklist,
        &mut stats.edges_burned,
        &mut stats.nodes_burned,
    );
    stats
}

/// The canonical empty answer: every pattern materialized with no edges,
/// every variable bound to an empty node set — the same shape the
/// generator's clear path leaves behind when a pattern matches nothing.
pub(crate) fn cleared_answer_graph(query: &ConjunctiveQuery) -> AnswerGraph {
    let mut ag = AnswerGraph::new(query);
    for q in 0..query.num_patterns() {
        ag.mark_materialized(q);
    }
    for v in query.variables() {
        ag.node_set_mut(v).assign_sorted(Vec::new());
        ag.mark_bound(v);
    }
    ag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WireframeEngine;
    use wireframe_graph::{partition_graph, GraphBuilder};
    use wireframe_query::parse_query;

    fn chain_diamond_graph() -> Graph {
        let mut b = GraphBuilder::new();
        // Cross-shard chains: support for a node routinely lives on another
        // shard than the node's own edges.
        for (s, p, o) in [
            ("a", "knows", "b"),
            ("b", "knows", "c"),
            ("c", "knows", "d"),
            ("d", "knows", "e"),
            ("b", "likes", "x"),
            ("c", "likes", "x"),
            ("e", "likes", "y"),
            ("a", "likes", "y"),
            // A diamond for the cyclic case.
            ("3", "A", "4"),
            ("3", "B", "2"),
            ("4", "C", "1"),
            ("2", "D", "1"),
            ("7", "A", "8"),
            ("8", "C", "1"),
        ] {
            b.add(s, p, o);
        }
        b.build()
    }

    fn assert_merged_matches_unsharded(graph: &Graph, text: &str, shards: usize) {
        let query = parse_query(text, graph.dictionary()).unwrap();
        let engine = WireframeEngine::new(graph);
        let reference = engine.execute(&query).unwrap();

        let parts = partition_graph(graph, shards);
        let scans: Vec<_> = parts
            .iter()
            .map(|part| scan_candidates(part, &query))
            .collect();
        let merged = merge_candidates(&query, &parts[0], &scans, EvalOptions::default()).unwrap();

        // Answer-graph edges: bit-identical per pattern.
        for q in 0..query.num_patterns() {
            let mut expect: Vec<_> = reference.answer_graph().pattern(q).iter().collect();
            let mut got: Vec<_> = merged.answer_graph().pattern(q).iter().collect();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(expect, got, "pattern {q} edges ({shards} shards)");
        }
        // Node sets: bit-identical per variable.
        for v in query.variables() {
            assert_eq!(
                reference.answer_graph().node_set(v).to_sorted_vec(),
                merged.answer_graph().node_set(v).to_sorted_vec(),
                "node set of ?{} ({shards} shards)",
                v.index()
            );
        }
        // Embeddings: same answer after one defactorization of the merge.
        let (embeddings, _) = merged.defactorize().unwrap();
        assert!(embeddings.same_answer(reference.embeddings()));
        assert_eq!(embeddings.len(), reference.embedding_count());
    }

    #[test]
    fn merged_fixpoint_equals_unsharded_phase_one() {
        let graph = chain_diamond_graph();
        for shards in [1, 2, 3, 4] {
            assert_merged_matches_unsharded(
                &graph,
                "SELECT ?x ?z WHERE { ?x :knows ?y . ?y :knows ?z . ?z :likes ?w . }",
                shards,
            );
            assert_merged_matches_unsharded(
                &graph,
                "SELECT * WHERE { ?x :A ?e . ?x :B ?z . ?e :C ?y . ?z :D ?y . }",
                shards,
            );
            assert_merged_matches_unsharded(&graph, "SELECT ?x WHERE { ?x :likes y . }", shards);
        }
    }

    #[test]
    fn empty_patterns_empty_the_merged_answer() {
        let graph = chain_diamond_graph();
        let query = parse_query(
            // `likes` chains of length two do not exist: every merge must
            // come out empty.
            "SELECT * WHERE { ?x :likes ?y . ?y :likes ?z . }",
            graph.dictionary(),
        )
        .unwrap();
        for shards in [1, 2, 3] {
            let parts = partition_graph(&graph, shards);
            let scans: Vec<_> = parts
                .iter()
                .map(|part| scan_candidates(part, &query))
                .collect();
            let merged =
                merge_candidates(&query, &parts[0], &scans, EvalOptions::default()).unwrap();
            assert_eq!(merged.answer_graph().total_edges(), 0);
            let (embeddings, _) = merged.defactorize().unwrap();
            assert!(embeddings.is_empty());
        }
    }

    #[test]
    fn disconnected_queries_error_like_the_engine() {
        let graph = chain_diamond_graph();
        let query = parse_query(
            "SELECT * WHERE { ?x :knows ?y . ?a :likes ?b . }",
            graph.dictionary(),
        )
        .unwrap();
        let parts = partition_graph(&graph, 2);
        let scans: Vec<_> = parts
            .iter()
            .map(|part| scan_candidates(part, &query))
            .collect();
        assert!(matches!(
            merge_candidates(&query, &parts[0], &scans, EvalOptions::default()),
            Err(EngineError::DisconnectedQuery)
        ));
    }

    #[test]
    fn self_loop_patterns_admit_only_loops() {
        let mut b = GraphBuilder::new();
        b.add("n", "p", "n");
        b.add("n", "p", "m");
        b.add("m", "p", "n");
        let graph = b.build();
        let query = parse_query("SELECT ?x WHERE { ?x :p ?x . }", graph.dictionary()).unwrap();
        for shards in [1, 2] {
            let parts = partition_graph(&graph, shards);
            let scans: Vec<_> = parts
                .iter()
                .map(|part| scan_candidates(part, &query))
                .collect();
            let merged =
                merge_candidates(&query, &parts[0], &scans, EvalOptions::default()).unwrap();
            let (embeddings, _) = merged.defactorize().unwrap();
            assert_eq!(embeddings.len(), 1, "only the n→n loop");
        }
    }
}

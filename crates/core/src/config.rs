//! Evaluation options for the Wireframe engine.

/// Which planner chooses the edge order of phase one (answer-graph generation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerKind {
    /// The paper's Edgifier: bottom-up dynamic programming over connected
    /// sub-plans, minimizing estimated edge walks. Produces a left-deep order.
    #[default]
    DpLeftDeep,
    /// A greedy planner: repeatedly appends the cheapest connected extension.
    /// Used as a fallback for very large queries and as an ablation baseline.
    Greedy,
    /// Evaluate the query edges exactly in the order they were written.
    /// Corresponds to running without a cost-based planner (ablation).
    AsWritten,
}

/// Options controlling the two evaluation phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Planner for the phase-one edge order.
    pub planner: PlannerKind,
    /// For cyclic queries: triangulate cycles (add chords) and run *edge
    /// burnback* after node burnback, guaranteeing the ideal answer graph at
    /// extra cost. The paper describes this mechanism but runs its experiments
    /// without it, so the default is `false`.
    pub edge_burnback: bool,
    /// Record a per-extension-step trace (used by the Figure 2 example and by
    /// tests); adds a small overhead.
    pub collect_trace: bool,
    /// Render a plan/statistics explanation into `Evaluation::explain` when
    /// the engine is driven through the workspace-wide `Engine` trait.
    pub explain: bool,
    /// Worker threads for phase two (defactorization). `1` (the default, and
    /// the paper's prototype) evaluates sequentially; `0` auto-detects from
    /// the machine's available parallelism; `n > 1` uses `n` workers.
    /// Parallel defactorization partitions the seed edge set and never
    /// changes the answer, only wall-clock time.
    pub threads: usize,
    /// Row bound for answers, `0` (the default) meaning unlimited. A
    /// limited evaluation keeps the first `limit` rows under the canonical
    /// row order (lexicographic over the projection's columns), and
    /// materialized views use the bound as the retention capacity `k` of
    /// their maintained top-k prefix.
    pub limit: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            planner: PlannerKind::DpLeftDeep,
            edge_burnback: false,
            collect_trace: false,
            explain: false,
            threads: 1,
            limit: 0,
        }
    }
}

impl EvalOptions {
    /// The paper's experimental configuration: cost-based planning, node
    /// burnback only (no edge burnback).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Enables edge burnback (the paper's work-in-progress extension).
    pub fn with_edge_burnback(mut self) -> Self {
        self.edge_burnback = true;
        self
    }

    /// Selects a planner.
    pub fn with_planner(mut self, planner: PlannerKind) -> Self {
        self.planner = planner;
        self
    }

    /// Enables the per-step extension trace.
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    /// Enables the rendered explanation on `Engine`-trait evaluations.
    pub fn with_explain(mut self) -> Self {
        self.explain = true;
        self
    }

    /// Sets the phase-two worker-thread count (`0` = auto, `1` = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Bounds answers to the canonical first `limit` rows (`0` = unlimited).
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = EvalOptions::paper();
        assert_eq!(o.planner, PlannerKind::DpLeftDeep);
        assert!(!o.edge_burnback);
        assert!(!o.collect_trace);
        assert_eq!(o.threads, 1, "the paper's prototype is single-threaded");
        assert_eq!(o.limit, 0, "unlimited answers by default");
    }

    #[test]
    fn builders_compose() {
        let o = EvalOptions::default()
            .with_edge_burnback()
            .with_planner(PlannerKind::Greedy)
            .with_trace()
            .with_threads(4)
            .with_limit(10);
        assert!(o.edge_burnback);
        assert!(o.collect_trace);
        assert_eq!(o.planner, PlannerKind::Greedy);
        assert_eq!(o.threads, 4);
        assert_eq!(o.limit, 10);
    }
}

//! Phase one: answer-graph generation.
//!
//! For each query edge of the plan, in turn, an *edge-extension* step pulls
//! from the data graph the edges with the right predicate that meet the join
//! constraints imposed by the current state of the answer graph (the node sets
//! of already-bound variables). Nodes that fail to extend are then removed and
//! the removal cascades through the already-materialized query edges — the
//! *node burnback* of the paper (Figure 2).

use wireframe_graph::slices::{contains_sorted, intersect_sorted};
use wireframe_graph::{Graph, NodeId};
use wireframe_query::{ConjunctiveQuery, Term, Var};

use crate::answer_graph::AnswerGraph;
use crate::config::EvalOptions;
use crate::error::EngineError;

/// Statistics of one edge-extension step, recorded when
/// [`EvalOptions::collect_trace`] is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtensionStep {
    /// Index of the query edge (pattern) materialized by this step.
    pub pattern: usize,
    /// Edge walks performed by this step (data edges retrieved).
    pub edge_walks: u64,
    /// Answer-graph edges added by this step.
    pub edges_added: usize,
    /// Answer-graph edges removed by the burnback cascade this step triggered.
    pub edges_burned: usize,
    /// Nodes removed from variable node sets by the cascade.
    pub nodes_burned: usize,
    /// Total answer-graph size after the step.
    pub ag_edges_after: usize,
}

/// Aggregate statistics of answer-graph generation.
#[derive(Debug, Clone, Default)]
pub struct GenerationStats {
    /// Total data edges retrieved (the paper's cost unit).
    pub edge_walks: u64,
    /// Total answer-graph edges added across all steps.
    pub edges_added: u64,
    /// Total answer-graph edges removed by node burnback.
    pub edges_burned: u64,
    /// Total nodes removed from variable node sets by node burnback.
    pub nodes_burned: u64,
    /// Per-step trace (empty unless tracing was requested).
    pub steps: Vec<ExtensionStep>,
}

/// How one end of the pattern constrains candidate data edges.
#[derive(Debug, Clone)]
enum EndConstraint {
    /// The end is a constant node.
    Const(NodeId),
    /// The end is a variable already bound by earlier steps; only these nodes
    /// qualify. The list is **ascending-sorted**: it drives iteration, and
    /// — because the store's neighbor slices are sorted too — membership
    /// probes and candidate filtering run as binary-search/galloping
    /// intersections instead of hash lookups.
    Bound(Vec<NodeId>),
    /// The end is a variable not yet bound; any node qualifies.
    Free,
}

/// Runs answer-graph generation over `graph` for `query`, materializing the
/// query edges in the order given by `order` (a permutation of the pattern
/// indexes, typically produced by the Edgifier planner).
pub fn generate(
    graph: &Graph,
    query: &ConjunctiveQuery,
    order: &[usize],
    options: &EvalOptions,
) -> Result<(AnswerGraph, GenerationStats), EngineError> {
    if order.len() != query.num_patterns() {
        return Err(EngineError::Internal(format!(
            "plan covers {} of {} query edges",
            order.len(),
            query.num_patterns()
        )));
    }
    let mut covered = vec![false; query.num_patterns()];
    for &i in order {
        if i >= query.num_patterns() || covered[i] {
            return Err(EngineError::Internal(format!(
                "plan is not a permutation of the query edges (offending index {i})"
            )));
        }
        covered[i] = true;
    }

    let mut ag = AnswerGraph::new(query);
    let mut stats = GenerationStats::default();

    for &pattern_idx in order {
        let step = extend(graph, query, &mut ag, pattern_idx, options);
        stats.edge_walks += step.edge_walks;
        stats.edges_added += step.edges_added as u64;
        stats.edges_burned += step.edges_burned as u64;
        stats.nodes_burned += step.nodes_burned as u64;
        if options.collect_trace {
            stats.steps.push(step);
        }
        // An empty materialized pattern means the whole answer is empty;
        // clear everything and stop early.
        if ag.edge_count(pattern_idx) == 0 {
            clear(&mut ag, query);
            break;
        }
    }
    Ok((ag, stats))
}

/// One edge-extension step followed by its cascading node burnback.
fn extend(
    graph: &Graph,
    query: &ConjunctiveQuery,
    ag: &mut AnswerGraph,
    pattern_idx: usize,
    _options: &EvalOptions,
) -> ExtensionStep {
    let pattern = query.patterns()[pattern_idx];
    let p = pattern.predicate;
    let self_loop = match (pattern.subject, pattern.object) {
        (Term::Var(a), Term::Var(b)) => a == b,
        _ => false,
    };

    let subject_constraint = end_constraint(ag, pattern.subject);
    let object_constraint = end_constraint(ag, pattern.object);

    let mut edge_walks = 0u64;
    let mut seen_subjects: Vec<NodeId> = Vec::new();
    let mut seen_objects: Vec<NodeId> = Vec::new();

    // Decide which side drives the retrieval: prefer the side with the fewer
    // known candidates; fall back to a full predicate scan when neither end is
    // constrained.
    let drive_subject = match (&subject_constraint, &object_constraint) {
        (EndConstraint::Free, EndConstraint::Free) => None,
        (EndConstraint::Free, _) => Some(false),
        (_, EndConstraint::Free) => Some(true),
        (s, o) => {
            let s_len = match s {
                EndConstraint::Const(_) => 1,
                EndConstraint::Bound(v) => v.len(),
                EndConstraint::Free => usize::MAX,
            };
            let o_len = match o {
                EndConstraint::Const(_) => 1,
                EndConstraint::Bound(v) => v.len(),
                EndConstraint::Free => usize::MAX,
            };
            Some(s_len <= o_len)
        }
    };

    // The extension stream below emits every `(s, o)` at most once (driving
    // nodes are distinct, stores hand out each neighbor exactly once), so
    // the matched edges are collected into one flat vector and bulk-loaded
    // into the answer graph afterwards — no per-edge hash operations.
    let mut new_edges: Vec<(NodeId, NodeId)> = Vec::new();

    // Whether the store's neighbor slices are sorted. Sorted adjacency (the
    // CSR backend) turns the constrained cases below into binary-search
    // probes and galloping intersections; unsorted adjacency (the edge-map
    // backend) falls back to walking whole neighbor lists.
    let sorted = graph.neighbors_sorted();
    // Scratch buffer for intersections, reused across candidates.
    let mut buf: Vec<NodeId> = Vec::new();
    match drive_subject {
        Some(true) => {
            let single;
            let subjects: &[NodeId] = match &subject_constraint {
                EndConstraint::Const(c) => {
                    single = [*c];
                    &single
                }
                EndConstraint::Bound(v) => v,
                EndConstraint::Free => unreachable!("driving side is constrained"),
            };
            for &s in subjects {
                let objects = graph.objects_of(p, s);
                match &object_constraint {
                    EndConstraint::Free => {
                        edge_walks += objects.len() as u64;
                        new_edges.extend(objects.iter().map(|&o| (s, o)));
                    }
                    EndConstraint::Const(c) => {
                        // Sorted: one binary-search probe. Unsorted: a scan.
                        let hit = if sorted {
                            edge_walks += 1;
                            contains_sorted(objects, *c)
                        } else {
                            edge_walks += objects.len() as u64;
                            objects.contains(c)
                        };
                        if hit {
                            new_edges.push((s, *c));
                        }
                    }
                    EndConstraint::Bound(bound) => {
                        if sorted {
                            // Both sides sorted: galloping intersection skips
                            // the non-joining stretches of the longer side.
                            intersect_sorted(objects, bound, &mut buf);
                            edge_walks += (buf.len() as u64).max(1);
                        } else {
                            edge_walks += objects.len() as u64;
                            buf.clear();
                            buf.extend(objects.iter().filter(|o| contains_sorted(bound, **o)));
                        }
                        if self_loop {
                            // Same variable on both ends: only the loop edge.
                            if buf.contains(&s) {
                                new_edges.push((s, s));
                            }
                        } else {
                            new_edges.extend(buf.iter().map(|&o| (s, o)));
                        }
                    }
                }
            }
        }
        Some(false) => {
            let single;
            let objects: &[NodeId] = match &object_constraint {
                EndConstraint::Const(c) => {
                    single = [*c];
                    &single
                }
                EndConstraint::Bound(v) => v,
                EndConstraint::Free => unreachable!("driving side is constrained"),
            };
            for &o in objects {
                let subjects = graph.subjects_of(p, o);
                match &subject_constraint {
                    EndConstraint::Free => {
                        edge_walks += subjects.len() as u64;
                        new_edges.extend(subjects.iter().map(|&s| (s, o)));
                    }
                    EndConstraint::Const(c) => {
                        let hit = if sorted {
                            edge_walks += 1;
                            contains_sorted(subjects, *c)
                        } else {
                            edge_walks += subjects.len() as u64;
                            subjects.contains(c)
                        };
                        if hit {
                            new_edges.push((*c, o));
                        }
                    }
                    EndConstraint::Bound(bound) => {
                        if sorted {
                            intersect_sorted(subjects, bound, &mut buf);
                            edge_walks += (buf.len() as u64).max(1);
                        } else {
                            edge_walks += subjects.len() as u64;
                            buf.clear();
                            buf.extend(subjects.iter().filter(|s| contains_sorted(bound, **s)));
                        }
                        if self_loop {
                            if buf.contains(&o) {
                                new_edges.push((o, o));
                            }
                        } else {
                            new_edges.extend(buf.iter().map(|&s| (s, o)));
                        }
                    }
                }
            }
        }
        None => {
            // Full scan of the predicate.
            let pairs = graph.pairs(p);
            edge_walks += pairs.len() as u64;
            if self_loop {
                new_edges.extend(pairs.iter().filter(|&&(s, o)| s == o));
            } else {
                new_edges.extend_from_slice(&pairs);
            }
        }
    }

    let edges_added = new_edges.len();
    seen_subjects.extend(new_edges.iter().map(|&(s, _)| s));
    seen_objects.extend(new_edges.iter().map(|&(_, o)| o));
    ag.pattern_mut(pattern_idx).bulk_load(new_edges);
    ag.mark_materialized(pattern_idx);

    // Update node sets and start the burnback cascade from nodes that failed
    // to extend.
    let mut edges_burned = 0usize;
    let mut nodes_burned = 0usize;
    let mut to_burn: Vec<(Var, NodeId)> = Vec::new();

    seen_subjects.sort_unstable();
    seen_subjects.dedup();
    seen_objects.sort_unstable();
    seen_objects.dedup();

    for (term, seen) in [
        (pattern.subject, &seen_subjects),
        (pattern.object, &seen_objects),
    ] {
        let Some(v) = term.as_var() else { continue };
        if ag.is_bound(v) {
            let failed: Vec<NodeId> = ag
                .node_set(v)
                .iter()
                .copied()
                .filter(|n| seen.binary_search(n).is_err())
                .collect();
            to_burn.extend(failed.into_iter().map(|n| (v, n)));
        } else {
            ag.node_set_mut(v).assign_sorted(seen.clone());
            ag.mark_bound(v);
        }
    }

    burn_nodes(query, ag, to_burn, &mut edges_burned, &mut nodes_burned);

    ExtensionStep {
        pattern: pattern_idx,
        edge_walks,
        edges_added,
        edges_burned,
        nodes_burned,
        ag_edges_after: ag.total_edges(),
    }
}

fn end_constraint(ag: &AnswerGraph, term: Term) -> EndConstraint {
    match term {
        Term::Const(c) => EndConstraint::Const(c),
        Term::Var(v) => {
            if ag.is_bound(v) {
                EndConstraint::Bound(ag.node_set(v).to_sorted_vec())
            } else {
                EndConstraint::Free
            }
        }
    }
}

/// Removes the given `(variable, node)` pairs from the answer graph and
/// cascades: removing a node removes its incident answer edges in every
/// materialized query edge, and any opposite node left with no support in one
/// of those query edges is removed in turn.
pub(crate) fn burn_nodes(
    query: &ConjunctiveQuery,
    ag: &mut AnswerGraph,
    mut worklist: Vec<(Var, NodeId)>,
    edges_burned: &mut usize,
    nodes_burned: &mut usize,
) {
    while let Some((v, n)) = worklist.pop() {
        if !ag.node_set_mut(v).remove(&n) {
            continue;
        }
        *nodes_burned += 1;
        for (q, pat) in query.patterns().iter().enumerate() {
            if !ag.is_materialized(q) {
                continue;
            }
            if pat.subject.as_var() == Some(v) {
                let objects = ag.pattern_mut(q).remove_subject(n);
                *edges_burned += objects.len();
                if let Some(w) = pat.object.as_var() {
                    for o in objects {
                        if !ag.pattern(q).has_object(o) && ag.node_set(w).contains(&o) {
                            worklist.push((w, o));
                        }
                    }
                }
            }
            if pat.object.as_var() == Some(v) {
                let subjects = ag.pattern_mut(q).remove_object(n);
                *edges_burned += subjects.len();
                if let Some(w) = pat.subject.as_var() {
                    for s in subjects {
                        if !ag.pattern(q).has_subject(s) && ag.node_set(w).contains(&s) {
                            worklist.push((w, s));
                        }
                    }
                }
            }
        }
    }
}

/// Empties the answer graph (used when some query edge matched nothing, which
/// makes the whole answer empty).
fn clear(ag: &mut AnswerGraph, query: &ConjunctiveQuery) {
    for v in query.variables() {
        ag.node_set_mut(v).clear();
    }
    for q in 0..query.num_patterns() {
        let subjects: Vec<NodeId> = ag.pattern(q).subjects().collect();
        for s in subjects {
            ag.pattern_mut(q).remove_subject(s);
        }
        ag.mark_materialized(q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireframe_graph::GraphBuilder;
    use wireframe_query::CqBuilder;

    /// The data graph of the paper's Figure 1/2: a chain query A/B/C where
    /// A-edges fan in to node 5 and C-edges fan out of node 9, and several
    /// nodes (4, 6, 7, 8, 10, 11) fail to survive burnback.
    fn figure1_graph() -> Graph {
        let mut b = GraphBuilder::new();
        // A-edges into 5 (plus one that dies: 4 -> 6, and 7 -> 8 dead-end)
        b.add("1", "A", "5");
        b.add("2", "A", "5");
        b.add("3", "A", "5");
        b.add("4", "A", "6");
        // B-edges
        b.add("5", "B", "9");
        b.add("7", "B", "10");
        // C-edges out of 9
        b.add("9", "C", "12");
        b.add("9", "C", "13");
        b.add("9", "C", "14");
        b.add("9", "C", "15");
        // an extra C edge from a node that no B edge reaches
        b.add("11", "C", "15");
        b.build()
    }

    fn figure1_query(g: &Graph) -> ConjunctiveQuery {
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?w", "A", "?x").unwrap();
        qb.pattern("?x", "B", "?y").unwrap();
        qb.pattern("?y", "C", "?z").unwrap();
        qb.build().unwrap()
    }

    fn node(g: &Graph, label: &str) -> NodeId {
        g.dictionary().node_id(label).unwrap()
    }

    #[test]
    fn figure1_chain_produces_ideal_answer_graph() {
        let g = figure1_graph();
        let q = figure1_query(&g);
        let opts = EvalOptions::default().with_trace();
        let (ag, stats) = generate(&g, &q, &[0, 1, 2], &opts).unwrap();

        // The ideal AG of Figure 1: A-edges {1,2,3}->5, B-edge 5->9, C-edges 9->{12,13,14,15}.
        assert_eq!(ag.edge_count(0), 3);
        assert_eq!(ag.edge_count(1), 1);
        assert_eq!(ag.edge_count(2), 4);
        assert_eq!(
            ag.total_edges(),
            8,
            "the paper counts eight labeled node pairs"
        );

        // Node sets match the figure's final answer graph.
        let x = q.var_by_name("x").unwrap();
        let y = q.var_by_name("y").unwrap();
        assert_eq!(ag.node_set(x).len(), 1);
        assert!(ag.node_set(x).contains(&node(&g, "5")));
        assert!(ag.node_set(y).contains(&node(&g, "9")));

        // Burnback removed the A-edge 4->6 and nothing else from pattern 0.
        assert!(stats.edges_burned >= 1);
        assert_eq!(stats.steps.len(), 3);
        assert!(stats.edge_walks > 0);
    }

    #[test]
    fn reverse_order_gives_same_answer_graph() {
        let g = figure1_graph();
        let q = figure1_query(&g);
        let (fwd, _) = generate(&g, &q, &[0, 1, 2], &EvalOptions::default()).unwrap();
        let (rev, _) = generate(&g, &q, &[2, 1, 0], &EvalOptions::default()).unwrap();
        for i in 0..3 {
            let mut a: Vec<_> = fwd.pattern(i).iter().collect();
            let mut b: Vec<_> = rev.pattern(i).iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "pattern {i} differs between plans");
        }
    }

    #[test]
    fn empty_predicate_clears_everything() {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "2");
        b.intern_predicate("B");
        let g = b.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "A", "?y").unwrap();
        qb.pattern("?y", "B", "?z").unwrap();
        let q = qb.build().unwrap();
        let (ag, _) = generate(&g, &q, &[0, 1], &EvalOptions::default()).unwrap();
        assert_eq!(ag.total_edges(), 0);
        assert_eq!(ag.total_nodes(), 0);
        assert!(ag.has_empty_pattern());
    }

    #[test]
    fn constants_restrict_extension() {
        let g = figure1_graph();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?w", "A", "5").unwrap();
        let q = qb.build().unwrap();
        let (ag, _) = generate(&g, &q, &[0], &EvalOptions::default()).unwrap();
        assert_eq!(ag.edge_count(0), 3, "only the A-edges into node 5 match");
    }

    #[test]
    fn self_loop_matches_only_loops() {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "1");
        b.add("1", "A", "2");
        b.add("3", "A", "3");
        let g = b.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "A", "?x").unwrap();
        let q = qb.build().unwrap();
        let (ag, _) = generate(&g, &q, &[0], &EvalOptions::default()).unwrap();
        assert_eq!(ag.edge_count(0), 2);
        let x = q.var_by_name("x").unwrap();
        assert_eq!(ag.node_set(x).len(), 2);
    }

    #[test]
    fn bad_plans_are_rejected() {
        let g = figure1_graph();
        let q = figure1_query(&g);
        assert!(generate(&g, &q, &[0, 1], &EvalOptions::default()).is_err());
        assert!(generate(&g, &q, &[0, 1, 1], &EvalOptions::default()).is_err());
        assert!(generate(&g, &q, &[0, 1, 7], &EvalOptions::default()).is_err());
    }

    #[test]
    fn trace_is_only_collected_when_requested() {
        let g = figure1_graph();
        let q = figure1_query(&g);
        let (_, without) = generate(&g, &q, &[0, 1, 2], &EvalOptions::default()).unwrap();
        assert!(without.steps.is_empty());
        let (_, with) = generate(&g, &q, &[0, 1, 2], &EvalOptions::default().with_trace()).unwrap();
        assert_eq!(with.steps.len(), 3);
        assert_eq!(with.steps[0].pattern, 0);
    }

    #[test]
    fn diamond_with_node_burnback_keeps_spurious_edges() {
        // Figure 4: two disjoint diamonds share no nodes, but the A-edges
        // 1->6' analog: build a graph where node burnback alone cannot detect
        // that an edge participates in no embedding.
        let mut b = GraphBuilder::new();
        // Diamond 1: 3 -A-> 4, 3 -B-> 2, 4 -C-> 1, 2 -D-> 1
        b.add("3", "A", "4");
        b.add("3", "B", "2");
        b.add("4", "C", "1");
        b.add("2", "D", "1");
        // Diamond 2: 7 -A-> 8, 7 -B-> 6, 8 -C-> 5, 6 -D-> 5
        b.add("7", "A", "8");
        b.add("7", "B", "6");
        b.add("8", "C", "5");
        b.add("6", "D", "5");
        // Spurious cross edges: 4 -C-> 5 and 8 -C-> 1 connect the two diamonds
        // only through the C side, so they survive node burnback but belong to
        // no embedding.
        b.add("4", "C", "5");
        b.add("8", "C", "1");
        let g = b.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "A", "?e").unwrap();
        qb.pattern("?x", "B", "?z").unwrap();
        qb.pattern("?e", "C", "?y").unwrap();
        qb.pattern("?z", "D", "?y").unwrap();
        let q = qb.build().unwrap();
        let (ag, _) = generate(&g, &q, &[0, 1, 2, 3], &EvalOptions::default()).unwrap();
        // Node burnback keeps all ten edges: the two cross C-edges are spurious
        // but every node still has support in every pattern.
        assert_eq!(ag.total_edges(), 10);
        assert_eq!(
            ag.edge_count(2),
            4,
            "C pattern keeps the two spurious edges"
        );
    }
}

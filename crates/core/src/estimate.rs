//! Cardinality estimation for the cost-based planners.
//!
//! The planners charge a candidate plan by the number of *edge walks* it is
//! expected to perform — the paper's cost unit, "the retrieval of a matching
//! edge from G". Estimating edge walks requires estimating, after each
//! edge-extension step, how many nodes each variable's node set holds and how
//! many answer edges each query edge contributes. The estimates are driven by
//! the catalog's 1-gram statistics (per-predicate cardinalities and distinct
//! counts) and 2-gram statistics (exact pairwise join cardinalities), in the
//! spirit of the selectivity literature the paper cites.

use wireframe_graph::{End, Graph, PredId};
use wireframe_query::{ConjunctiveQuery, Term, TriplePattern, Var};

/// Estimated effect of materializing one more query edge on top of a partial
/// plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepEstimate {
    /// Expected number of edge walks performed by the extension step.
    pub edge_walks: f64,
    /// Guaranteed upper bound on the step's edge walks, from the degree
    /// statistics the store build computes: a step driven from `n` candidate
    /// nodes retrieves at most `n × max-degree` edges (and never more than
    /// the predicate's cardinality). Averages hide skew; this bound does not,
    /// so the planners use it to break cost ties away from hub-heavy
    /// predicates.
    pub worst_case_walks: f64,
    /// Expected number of answer-graph edges the step leaves materialized.
    pub result_edges: f64,
    /// Expected node-set size of the pattern's subject variable afterwards
    /// (unchanged/irrelevant for constant ends).
    pub subject_card: f64,
    /// Expected node-set size of the pattern's object variable afterwards.
    pub object_card: f64,
}

/// Estimator over one graph's catalog for one query.
#[derive(Debug, Clone, Copy)]
pub struct Estimator<'g, 'q> {
    graph: &'g Graph,
    query: &'q ConjunctiveQuery,
}

impl<'g, 'q> Estimator<'g, 'q> {
    /// Creates an estimator for `query` over `graph`.
    pub fn new(graph: &'g Graph, query: &'q ConjunctiveQuery) -> Self {
        Estimator { graph, query }
    }

    /// The query being estimated.
    pub fn query(&self) -> &'q ConjunctiveQuery {
        self.query
    }

    /// Estimated number of distinct nodes a *fresh* binding of variable `v`
    /// through pattern `q` would produce, ignoring other patterns.
    fn fresh_distinct(&self, pattern: &TriplePattern, end: End) -> f64 {
        let u = self.graph.catalog().unigram(pattern.predicate);
        u.distinct(end).max(1) as f64
    }

    /// Estimates the effect of materializing pattern `pattern_idx` when the
    /// current (estimated) node-set sizes are `var_card` (`None` = unbound).
    ///
    /// The model follows the evaluation strategy of
    /// [`generate`](crate::generate::generate):
    ///
    /// * neither end bound → a full predicate scan: walks = |p|;
    /// * one end bound with `n` candidate nodes → each candidate is probed;
    ///   the expected number of candidates that have any `p`-edge is scaled by
    ///   a containment factor derived from the 2-gram statistics against the
    ///   predicates that bound the variable; walks = matching candidates ×
    ///   average degree of `p` on that end — except for a **constant** end,
    ///   where the store answers the node's exact degree and no averaging is
    ///   needed at all;
    /// * both ends bound → the retrieval is driven from the smaller side and
    ///   the result is additionally filtered by the other side's selectivity.
    ///
    /// Alongside the expectation, every step carries a guaranteed
    /// [`worst_case_walks`](StepEstimate::worst_case_walks) bound derived
    /// from the catalog's max-degree statistics.
    pub fn estimate_step(&self, var_card: &[Option<f64>], pattern_idx: usize) -> StepEstimate {
        let pattern = &self.query.patterns()[pattern_idx];
        let p = pattern.predicate;
        let u = self.graph.catalog().unigram(p);
        let card = u.cardinality.max(1) as f64;

        let s_bound = self.end_binding(pattern.subject, var_card);
        let o_bound = self.end_binding(pattern.object, var_card);

        // Exact degrees for constant ends: the store's adjacency answers the
        // real fan-out/fan-in of the named node, so the planner works with
        // true cardinalities instead of predicate-wide averages.
        let s_exact = match pattern.subject {
            Term::Const(c) => Some(self.graph.out_degree(p, c) as f64),
            Term::Var(_) => None,
        };
        let o_exact = match pattern.object {
            Term::Const(c) => Some(self.graph.in_degree(p, c) as f64),
            Term::Var(_) => None,
        };

        // Containment: what fraction of the bound variable's nodes can have a
        // `p`-edge on this end at all.
        let s_containment =
            self.containment(pattern_idx, pattern.subject, p, End::Subject, var_card);
        let o_containment = self.containment(pattern_idx, pattern.object, p, End::Object, var_card);

        let (edge_walks, worst_case_walks, result_edges) = match (s_bound, o_bound) {
            (None, None) => (card, card, card),
            (Some(ns), None) => {
                let walks = match s_exact {
                    Some(d) => d,
                    None => {
                        let matching = (ns * s_containment).min(u.distinct_subjects.max(1) as f64);
                        matching * u.avg_fanout().max(1e-9)
                    }
                };
                let worst = (ns * u.max_out_degree as f64).min(card).max(1.0);
                (walks.max(ns).max(1.0), worst, walks.clamp(0.0, card))
            }
            (None, Some(no)) => {
                let walks = match o_exact {
                    Some(d) => d,
                    None => {
                        let matching = (no * o_containment).min(u.distinct_objects.max(1) as f64);
                        matching * u.avg_fanin().max(1e-9)
                    }
                };
                let worst = (no * u.max_in_degree as f64).min(card).max(1.0);
                (walks.max(no).max(1.0), worst, walks.clamp(0.0, card))
            }
            (Some(ns), Some(no)) => {
                // Drive from the smaller side, filter by the other.
                let (drive, drive_containment, degree, max_degree, exact, other, other_distinct) =
                    if ns <= no {
                        (
                            ns,
                            s_containment,
                            u.avg_fanout(),
                            u.max_out_degree,
                            s_exact,
                            no,
                            u.distinct_objects.max(1) as f64,
                        )
                    } else {
                        (
                            no,
                            o_containment,
                            u.avg_fanin(),
                            u.max_in_degree,
                            o_exact,
                            ns,
                            u.distinct_subjects.max(1) as f64,
                        )
                    };
                let walks = match exact {
                    Some(d) => d.max(1.0),
                    None => {
                        let matching = drive * drive_containment;
                        (matching * degree.max(1e-9)).max(drive).max(1.0)
                    }
                };
                let worst = (drive * max_degree as f64).min(card).max(1.0);
                let filter_sel = (other / other_distinct).min(1.0);
                (walks, worst, (walks * filter_sel).min(card))
            }
        };

        let result_edges = result_edges.max(0.0);
        // New node-set sizes: bounded by the result edge count and by the
        // number of distinct nodes the predicate has on that end; an already
        // bound variable can only shrink.
        let subject_card =
            self.new_card(pattern.subject, s_bound, result_edges, u.distinct_subjects);
        let object_card = self.new_card(pattern.object, o_bound, result_edges, u.distinct_objects);

        StepEstimate {
            edge_walks,
            worst_case_walks,
            result_edges,
            subject_card,
            object_card,
        }
    }

    fn end_binding(&self, term: Term, var_card: &[Option<f64>]) -> Option<f64> {
        match term {
            Term::Const(_) => Some(1.0),
            Term::Var(v) => var_card[v.index()],
        }
    }

    fn new_card(&self, term: Term, bound: Option<f64>, result_edges: f64, distinct: usize) -> f64 {
        match term {
            Term::Const(_) => 1.0,
            Term::Var(_) => {
                let cap = distinct.max(1) as f64;
                match bound {
                    Some(n) => n.min(result_edges.max(1.0)).min(cap),
                    None => result_edges.min(cap).max(0.0),
                }
            }
        }
    }

    /// Containment factor for a bound variable joining into predicate `p` on
    /// `end`: the fraction of that variable's candidate nodes expected to have
    /// at least one `p`-edge, estimated from the 2-gram joining-value counts
    /// against the other patterns that mention the variable. Unbound or
    /// constant ends get factor 1.
    fn containment(
        &self,
        pattern_idx: usize,
        term: Term,
        p: PredId,
        end: End,
        var_card: &[Option<f64>],
    ) -> f64 {
        let Term::Var(v) = term else { return 1.0 };
        if var_card[v.index()].is_none() {
            return 1.0;
        }
        let mut best: f64 = 1.0;
        for (other_idx, other) in self.query.patterns().iter().enumerate() {
            if other_idx == pattern_idx {
                continue;
            }
            for (other_term, other_end) in
                [(other.subject, End::Subject), (other.object, End::Object)]
            {
                if other_term.as_var() != Some(v) {
                    continue;
                }
                let bigram = self
                    .graph
                    .catalog()
                    .bigram(p, end, other.predicate, other_end);
                let other_distinct = self
                    .graph
                    .catalog()
                    .unigram(other.predicate)
                    .distinct(other_end)
                    .max(1) as f64;
                let frac = (bigram.joining_values as f64 / other_distinct).clamp(0.0, 1.0);
                best = best.min(frac);
            }
        }
        best
    }

    /// Estimates a variable's node-set size when it has just been bound by
    /// `pattern` alone (used to seed greedy planning).
    pub fn initial_card(&self, pattern: &TriplePattern, v: Var) -> f64 {
        if pattern.subject.as_var() == Some(v) {
            self.fresh_distinct(pattern, End::Subject)
        } else {
            self.fresh_distinct(pattern, End::Object)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireframe_graph::GraphBuilder;
    use wireframe_query::CqBuilder;

    /// A: 100 edges with heavy fan-in to few hubs; B: 10 selective edges;
    /// C: 1000 edges.
    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..100 {
            b.add(&format!("a{i}"), "A", &format!("hub{}", i % 5));
        }
        for i in 0..10 {
            b.add(&format!("hub{i}"), "B", &format!("m{i}"));
        }
        for i in 0..1000 {
            b.add(&format!("m{}", i % 10), "C", &format!("c{i}"));
        }
        b.build()
    }

    fn query(g: &Graph) -> ConjunctiveQuery {
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?w", "A", "?x").unwrap();
        qb.pattern("?x", "B", "?y").unwrap();
        qb.pattern("?y", "C", "?z").unwrap();
        qb.build().unwrap()
    }

    #[test]
    fn unbound_step_costs_a_scan() {
        let g = graph();
        let q = query(&g);
        let est = Estimator::new(&g, &q);
        let none = vec![None; q.num_vars()];
        let s = est.estimate_step(&none, 0);
        assert_eq!(s.edge_walks, 100.0);
        assert_eq!(s.result_edges, 100.0);
        assert!(s.subject_card > 0.0 && s.object_card > 0.0);
    }

    #[test]
    fn bound_variable_reduces_cost() {
        let g = graph();
        let q = query(&g);
        let est = Estimator::new(&g, &q);
        // After materializing B, ?y holds ~10 nodes; extending C from there
        // should be estimated far below a full C scan.
        let mut cards = vec![None; q.num_vars()];
        let y = q.var_by_name("y").unwrap();
        cards[y.index()] = Some(10.0);
        let bound = est.estimate_step(&cards, 2);
        let unbound = est.estimate_step(&vec![None; q.num_vars()], 2);
        assert!(bound.edge_walks <= unbound.edge_walks);
        assert!(bound.result_edges <= unbound.result_edges);
    }

    #[test]
    fn both_ends_bound_filters_result() {
        let g = graph();
        let q = query(&g);
        let est = Estimator::new(&g, &q);
        let mut cards = vec![None; q.num_vars()];
        let x = q.var_by_name("x").unwrap();
        let y = q.var_by_name("y").unwrap();
        cards[x.index()] = Some(5.0);
        cards[y.index()] = Some(2.0);
        let s = est.estimate_step(&cards, 1);
        assert!(s.result_edges <= s.edge_walks);
        assert!(s.subject_card <= 5.0);
        assert!(s.object_card <= 2.0);
    }

    #[test]
    fn containment_uses_bigram_statistics() {
        let g = graph();
        let q = query(&g);
        let est = Estimator::new(&g, &q);
        // ?x is bound through A's objects; only 5 hubs exist but just hub0..hub9
        // have B edges, so containment of x into B should be < 1 but > 0.
        let mut cards = vec![None; q.num_vars()];
        let x = q.var_by_name("x").unwrap();
        cards[x.index()] = Some(5.0);
        let s = est.estimate_step(&cards, 1);
        assert!(s.edge_walks >= 1.0);
        assert!(s.result_edges <= 10.0, "B only has 10 edges");
    }

    #[test]
    fn constants_count_as_single_candidates() {
        let g = graph();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?w", "A", "hub0").unwrap();
        let q = qb.build().unwrap();
        let est = Estimator::new(&g, &q);
        let s = est.estimate_step(&vec![None; q.num_vars()], 0);
        assert!(s.edge_walks < 100.0, "constant object restricts the scan");
        // The store answers the named node's real fan-in: hub0 receives
        // exactly 100 / 5 = 20 A-edges, so the estimate is exact, not the
        // predicate-wide average.
        assert_eq!(s.edge_walks, 20.0);
        assert_eq!(s.result_edges, 20.0);
    }

    #[test]
    fn worst_case_bound_dominates_the_expectation() {
        let g = graph();
        let q = query(&g);
        let est = Estimator::new(&g, &q);
        let mut cards = vec![None; q.num_vars()];
        let y = q.var_by_name("y").unwrap();
        cards[y.index()] = Some(3.0);
        let s = est.estimate_step(&cards, 2);
        // C fans out 100 per subject uniformly (1000 edges / 10 subjects);
        // the worst case from 3 candidates is 3 × max-degree = 300.
        assert_eq!(s.worst_case_walks, 300.0);
        assert!(s.worst_case_walks >= s.edge_walks - 1e-9);
        // A full scan's worst case is the scan itself.
        let scan = est.estimate_step(&vec![None; q.num_vars()], 2);
        assert_eq!(scan.worst_case_walks, scan.edge_walks);
    }

    #[test]
    fn result_edges_never_exceed_the_predicate_cardinality() {
        let g = graph();
        let q = query(&g);
        let est = Estimator::new(&g, &q);
        let mut cards = vec![None; q.num_vars()];
        let y = q.var_by_name("y").unwrap();
        cards[y.index()] = Some(1e9); // absurdly over-estimated binding
        let s = est.estimate_step(&cards, 2);
        assert!(s.result_edges <= 1000.0, "C only has 1000 edges");
    }

    #[test]
    fn estimates_are_finite_and_nonnegative() {
        let g = graph();
        let q = query(&g);
        let est = Estimator::new(&g, &q);
        for i in 0..q.num_patterns() {
            for bound in [None, Some(1.0), Some(1e6)] {
                let mut cards = vec![bound; q.num_vars()];
                cards[0] = Some(3.0);
                let s = est.estimate_step(&cards, i);
                assert!(s.edge_walks.is_finite() && s.edge_walks >= 0.0);
                assert!(s.result_edges.is_finite() && s.result_edges >= 0.0);
                assert!(s.subject_card.is_finite() && s.object_card.is_finite());
            }
        }
    }
}

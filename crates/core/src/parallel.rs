//! Parallel defactorization: generate embeddings from the answer graph using
//! multiple threads.
//!
//! Defactorization is embarrassingly parallel in the answer edges of the first
//! query edge of the join order: each such edge seeds an independent set of
//! embeddings, so the edge set can be partitioned across worker threads, each
//! worker joining its partition against the (shared, read-only) rest of the
//! answer graph. This is an engineering extension beyond the paper's
//! single-threaded prototype; it changes no results (verified by tests), only
//! wall-clock time for large embedding sets.

use std::num::NonZeroUsize;

use wireframe_query::{ConjunctiveQuery, EmbeddingSet, Var};

use crate::answer_graph::AnswerGraph;
use crate::defactorize::{
    defactorize, defactorize_indexed, embedding_plan, DefactorizationStats, JoinIndex,
};
use crate::error::EngineError;

/// Options for parallel defactorization.
#[derive(Debug, Clone, Copy)]
pub struct ParallelOptions {
    /// Number of worker threads. Defaults to the machine's available
    /// parallelism, capped at 8 (defactorization is memory-bound).
    pub threads: usize,
    /// Minimum number of seed edges per worker; below this the sequential
    /// path is used (thread startup would dominate).
    pub min_seeds_per_thread: usize,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            threads: auto_threads(),
            min_seeds_per_thread: 64,
        }
    }
}

/// The machine's available parallelism, capped at 8 (defactorization is
/// memory-bound).
pub fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

impl ParallelOptions {
    /// Options for an explicit thread count, following the workspace-wide
    /// convention of the `threads` knobs: `0` auto-detects, any other value
    /// is used as given.
    pub fn for_threads(threads: usize) -> Self {
        ParallelOptions {
            threads: if threads == 0 {
                auto_threads()
            } else {
                threads
            },
            ..ParallelOptions::default()
        }
    }
}

/// Generates the embeddings of `query` from `ag` in parallel, returning the
/// full (unprojected) embedding set and merged phase-two statistics
/// (`peak_intermediate` is the maximum over the workers, which each hold
/// their intermediates concurrently at worst). Falls back to the sequential
/// defactorizer for small inputs.
pub fn defactorize_parallel(
    query: &ConjunctiveQuery,
    ag: &AnswerGraph,
    options: &ParallelOptions,
) -> Result<(EmbeddingSet, DefactorizationStats), EngineError> {
    let order = embedding_plan(query, ag);
    let Some(&seed_pattern) = order.first() else {
        return Err(EngineError::Internal("query has no patterns".into()));
    };
    let seeds: Vec<_> = ag.pattern(seed_pattern).iter().collect();
    let threads = options.threads.max(1);
    if threads == 1 || seeds.len() < options.min_seeds_per_thread * 2 {
        return defactorize(query, ag, &order);
    }

    let chunk_size = seeds.len().div_ceil(threads);
    let chunks: Vec<&[_]> = seeds.chunks(chunk_size).collect();

    // The non-seed join indexes are identical for every worker: build them
    // once and share them read-only. Each worker only builds the (small)
    // index over its own slice of the seed pattern's edges.
    let shared: Vec<JoinIndex> = (0..query.num_patterns())
        .map(|q| {
            if q == seed_pattern {
                JoinIndex::default()
            } else {
                JoinIndex::build(ag.pattern(q))
            }
        })
        .collect();

    type WorkerResult = Result<(EmbeddingSet, DefactorizationStats), EngineError>;
    let results: Result<Vec<(EmbeddingSet, DefactorizationStats)>, EngineError> =
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(chunks.len());
            for chunk in &chunks {
                let order = order.clone();
                let shared = &shared;
                handles.push(scope.spawn(move || -> WorkerResult {
                    let busy = std::time::Instant::now();
                    let seed_index = JoinIndex::from_pairs(chunk.to_vec());
                    let indexes: Vec<&JoinIndex> = (0..query.num_patterns())
                        .map(|q| {
                            if q == seed_pattern {
                                &seed_index
                            } else {
                                &shared[q]
                            }
                        })
                        .collect();
                    let (set, mut stats) = defactorize_indexed(query, &indexes, &order)?;
                    stats.cpu = busy.elapsed();
                    Ok((set, stats))
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|_| EngineError::Internal("worker thread panicked".into()))?
                })
                .collect()
        });
    let results = results?;

    // Concatenate the partitions; they are disjoint because each embedding
    // uses exactly one seed edge. Partition order follows seed-chunk order,
    // so the result is deterministic for a given thread count (and the *set*
    // is identical across thread counts).
    let schema: Vec<Var> = query.variables().collect();
    let mut stats = DefactorizationStats {
        join_order: order,
        ..DefactorizationStats::default()
    };
    let mut merged = EmbeddingSet::empty(schema);
    for (part, part_stats) in results {
        stats.peak_intermediate = stats.peak_intermediate.max(part_stats.peak_intermediate);
        stats.embeddings += part_stats.embeddings;
        // Busy time sums across workers (the wall-clock the caller measures
        // stays ≤ this once more than one worker overlaps).
        stats.cpu += part_stats.cpu;
        // Flat row-major concatenation: one memcpy per partition.
        merged.append(&part);
    }
    Ok((merged, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalOptions;
    use crate::generate::generate;
    use wireframe_graph::{Graph, GraphBuilder};
    use wireframe_query::CqBuilder;

    /// A graph producing a few thousand embeddings so the parallel path kicks in.
    fn fanout_graph(fan: usize) -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..fan {
            b.add(&format!("a{i}"), "A", "hub");
            b.add("mid", "C", &format!("c{i}"));
        }
        b.add("hub", "B", "mid");
        b.build()
    }

    fn chain_query(g: &Graph) -> ConjunctiveQuery {
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?w", "A", "?x").unwrap();
        qb.pattern("?x", "B", "?y").unwrap();
        qb.pattern("?y", "C", "?z").unwrap();
        qb.build().unwrap()
    }

    fn ag_for(g: &Graph, q: &ConjunctiveQuery) -> AnswerGraph {
        let order: Vec<usize> = (0..q.num_patterns()).collect();
        generate(g, q, &order, &EvalOptions::default()).unwrap().0
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = fanout_graph(200);
        let q = chain_query(&g);
        let ag = ag_for(&g, &q);
        let order = embedding_plan(&q, &ag);
        let (sequential, seq_stats) = defactorize(&q, &ag, &order).unwrap();
        let (parallel, par_stats) = defactorize_parallel(
            &q,
            &ag,
            &ParallelOptions {
                threads: 4,
                min_seeds_per_thread: 1,
            },
        )
        .unwrap();
        assert!(parallel.same_answer(&sequential));
        assert_eq!(parallel.len(), 200 * 200);
        assert_eq!(par_stats.embeddings, seq_stats.embeddings);
        assert!(
            par_stats.peak_intermediate <= seq_stats.peak_intermediate,
            "each worker holds a fraction of the intermediates"
        );
        // Busy time is recorded on both paths: the sequential run's equals
        // its wall-clock, the parallel run's sums over the 4 workers.
        assert!(seq_stats.cpu > std::time::Duration::ZERO);
        assert!(par_stats.cpu > std::time::Duration::ZERO);
    }

    #[test]
    fn small_inputs_take_the_sequential_path() {
        let g = fanout_graph(3);
        let q = chain_query(&g);
        let ag = ag_for(&g, &q);
        let (out, _) = defactorize_parallel(&q, &ag, &ParallelOptions::default()).unwrap();
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn single_thread_option_is_sequential() {
        let g = fanout_graph(50);
        let q = chain_query(&g);
        let ag = ag_for(&g, &q);
        let (out, _) = defactorize_parallel(
            &q,
            &ag,
            &ParallelOptions {
                threads: 1,
                min_seeds_per_thread: 1,
            },
        )
        .unwrap();
        assert_eq!(out.len(), 2500);
    }

    #[test]
    fn default_options_are_sane() {
        let o = ParallelOptions::default();
        assert!(o.threads >= 1 && o.threads <= 8);
        assert!(o.min_seeds_per_thread > 0);
        assert_eq!(ParallelOptions::for_threads(0).threads, auto_threads());
        assert_eq!(ParallelOptions::for_threads(3).threads, 3);
    }

    #[test]
    fn empty_answer_graph_parallel() {
        let g = fanout_graph(4);
        let q = chain_query(&g);
        let ag = AnswerGraph::new(&q);
        let (out, _) = defactorize_parallel(&q, &ag, &ParallelOptions::default()).unwrap();
        assert!(out.is_empty());
    }
}

//! The Edgifier: cost-based planning of the edge-extension order.
//!
//! A phase-one plan is simply an order over the CQ's query edges in which to
//! materialize them into the answer graph. The Edgifier chooses the order with
//! a bottom-up dynamic program over connected sub-plans, charging each
//! candidate extension with the estimated number of edge walks it performs
//! (the paper's cost unit). A greedy planner and an "as written" pass-through
//! are provided for large queries and for ablation experiments.

use std::collections::HashMap;

use wireframe_graph::Graph;
use wireframe_query::{ConjunctiveQuery, QueryGraph};

use crate::config::PlannerKind;
use crate::error::EngineError;
use crate::estimate::Estimator;

/// A phase-one plan: the order in which query edges are materialized.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Pattern indexes in materialization order (a permutation of `0..n`).
    pub order: Vec<usize>,
    /// Estimated total edge walks of phase one under this order.
    pub estimated_cost: f64,
    /// Estimated answer-graph size (total matched edges) after phase one.
    pub estimated_ag_edges: f64,
    /// Which planner produced the plan.
    pub planner: PlannerKind,
}

/// Plans the edge order for `query` over `graph` using the requested planner.
pub fn plan(
    graph: &Graph,
    query: &ConjunctiveQuery,
    kind: PlannerKind,
) -> Result<Plan, EngineError> {
    let qg = QueryGraph::new(query);
    if !qg.is_connected() {
        return Err(EngineError::DisconnectedQuery);
    }
    let estimator = Estimator::new(graph, query);
    match kind {
        PlannerKind::AsWritten => Ok(as_written(graph, query)),
        PlannerKind::Greedy => Ok(greedy(&estimator, query, &qg)),
        PlannerKind::DpLeftDeep => {
            // The subset DP is exponential in the number of query edges; fall
            // back to greedy beyond a practical limit.
            if query.num_patterns() <= 20 {
                Ok(dp_left_deep(&estimator, query, &qg))
            } else {
                Ok(greedy(&estimator, query, &qg))
            }
        }
    }
}

/// Costs an explicitly given order with the same model the planners use
/// (exposed for ablation benches and tests).
pub fn cost_of_order(graph: &Graph, query: &ConjunctiveQuery, order: &[usize]) -> f64 {
    let estimator = Estimator::new(graph, query);
    let mut cards = vec![None; query.num_vars()];
    let mut total = 0.0;
    for &i in order {
        let step = estimator.estimate_step(&cards, i);
        total += step.edge_walks;
        apply_step(query, &mut cards, i, step.subject_card, step.object_card);
    }
    total
}

fn as_written(graph: &Graph, query: &ConjunctiveQuery) -> Plan {
    let order: Vec<usize> = (0..query.num_patterns()).collect();
    let estimated_cost = cost_of_order(graph, query, &order);
    Plan {
        estimated_ag_edges: estimate_ag_edges(graph, query, &order),
        order,
        estimated_cost,
        planner: PlannerKind::AsWritten,
    }
}

fn estimate_ag_edges(graph: &Graph, query: &ConjunctiveQuery, order: &[usize]) -> f64 {
    let estimator = Estimator::new(graph, query);
    let mut cards = vec![None; query.num_vars()];
    let mut total = 0.0;
    for &i in order {
        let step = estimator.estimate_step(&cards, i);
        total += step.result_edges;
        apply_step(query, &mut cards, i, step.subject_card, step.object_card);
    }
    total
}

fn apply_step(
    query: &ConjunctiveQuery,
    cards: &mut [Option<f64>],
    pattern_idx: usize,
    subject_card: f64,
    object_card: f64,
) {
    let p = &query.patterns()[pattern_idx];
    if let Some(v) = p.subject.as_var() {
        cards[v.index()] = Some(subject_card);
    }
    if let Some(v) = p.object.as_var() {
        cards[v.index()] = Some(object_card);
    }
}

/// Whether pattern `i` is connected to the set of already-planned patterns
/// (shares a variable), or the set is still empty.
fn connected_to(query: &ConjunctiveQuery, chosen_mask: u64, i: usize) -> bool {
    if chosen_mask == 0 {
        return true;
    }
    let pi = &query.patterns()[i];
    for (j, pj) in query.patterns().iter().enumerate() {
        if chosen_mask & (1 << j) == 0 {
            continue;
        }
        if pi.variables().any(|v| pj.mentions(v)) {
            return true;
        }
    }
    false
}

fn greedy(estimator: &Estimator<'_, '_>, query: &ConjunctiveQuery, _qg: &QueryGraph) -> Plan {
    let n = query.num_patterns();
    let mut order = Vec::with_capacity(n);
    let mut cards = vec![None; query.num_vars()];
    let mut chosen_mask: u64 = 0;
    let mut total_cost = 0.0;
    let mut total_edges = 0.0;
    for _ in 0..n {
        let mut best: Option<(usize, f64, f64, f64, f64, f64)> = None;
        for i in 0..n {
            if chosen_mask & (1 << i) != 0 || !connected_to(query, chosen_mask, i) {
                continue;
            }
            let step = estimator.estimate_step(&cards, i);
            // Expected walks decide; on a dead tie the degree-statistics
            // worst-case bound prefers the less skew-exposed candidate.
            let better = match best {
                None => true,
                Some((_, cost, worst, ..)) => {
                    step.edge_walks < cost
                        || (step.edge_walks == cost && step.worst_case_walks < worst)
                }
            };
            if better {
                best = Some((
                    i,
                    step.edge_walks,
                    step.worst_case_walks,
                    step.result_edges,
                    step.subject_card,
                    step.object_card,
                ));
            }
        }
        let (i, cost, _, edges, sc, oc) =
            best.expect("a connected query always has a next connected pattern");
        chosen_mask |= 1 << i;
        order.push(i);
        total_cost += cost;
        total_edges += edges;
        apply_step(query, &mut cards, i, sc, oc);
    }
    Plan {
        order,
        estimated_cost: total_cost,
        estimated_ag_edges: total_edges,
        planner: PlannerKind::Greedy,
    }
}

#[derive(Debug, Clone)]
struct DpEntry {
    cost: f64,
    /// Accumulated worst-case walks (degree-statistics bound): the tie-break
    /// between equal-cost sub-plans, steering away from skewed predicates.
    worst: f64,
    ag_edges: f64,
    order: Vec<usize>,
    cards: Vec<Option<f64>>,
}

fn dp_left_deep(estimator: &Estimator<'_, '_>, query: &ConjunctiveQuery, _qg: &QueryGraph) -> Plan {
    let n = query.num_patterns();
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut table: HashMap<u64, DpEntry> = HashMap::new();
    table.insert(
        0,
        DpEntry {
            cost: 0.0,
            worst: 0.0,
            ag_edges: 0.0,
            order: Vec::new(),
            cards: vec![None; query.num_vars()],
        },
    );

    // Process subsets in order of increasing population count so every
    // predecessor is finalized before it is extended.
    let mut by_count: Vec<Vec<u64>> = vec![Vec::new(); n + 1];
    by_count[0].push(0);
    // Enumerate reachable subsets lazily: extend level by level.
    for level in 0..n {
        let current = std::mem::take(&mut by_count[level]);
        for mask in current {
            let entry = table
                .get(&mask)
                .expect("entry exists for enumerated mask")
                .clone();
            for i in 0..n {
                if mask & (1 << i) != 0 || !connected_to(query, mask, i) {
                    continue;
                }
                let step = estimator.estimate_step(&entry.cards, i);
                let mut cards = entry.cards.clone();
                apply_step(query, &mut cards, i, step.subject_card, step.object_card);
                let next_mask = mask | (1 << i);
                let cand = DpEntry {
                    cost: entry.cost + step.edge_walks,
                    worst: entry.worst + step.worst_case_walks,
                    ag_edges: entry.ag_edges + step.result_edges,
                    order: {
                        let mut o = entry.order.clone();
                        o.push(i);
                        o
                    },
                    cards,
                };
                match table.get(&next_mask) {
                    // Keep the cheaper sub-plan; on a dead cost tie, keep the
                    // one with the lower worst-case (skew-robust) bound.
                    Some(existing)
                        if existing.cost < cand.cost
                            || (existing.cost == cand.cost && existing.worst <= cand.worst) => {}
                    _ => {
                        if !table.contains_key(&next_mask) {
                            by_count[level + 1].push(next_mask);
                        }
                        table.insert(next_mask, cand);
                    }
                }
            }
        }
    }

    let best = table
        .remove(&full)
        .expect("connected query reaches the full subset");
    Plan {
        order: best.order,
        estimated_cost: best.cost,
        estimated_ag_edges: best.ag_edges,
        planner: PlannerKind::DpLeftDeep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireframe_graph::GraphBuilder;
    use wireframe_query::CqBuilder;

    /// A graph where predicate `Rare` has 2 edges, `Mid` has 20, `Huge` has 500
    /// — and only a handful of Huge edges reach Mid subjects, so a plan that
    /// scans Huge first wastes hundreds of edge walks compared with one that
    /// starts at the selective end and probes Huge through bound nodes.
    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..480 {
            b.add(&format!("h{i}"), "Huge", &format!("u{i}"));
        }
        for i in 0..20 {
            b.add(&format!("hh{i}"), "Huge", &format!("m{i}"));
        }
        for i in 0..20 {
            b.add(&format!("m{i}"), "Mid", &format!("r{}", i % 2));
        }
        for i in 0..2 {
            b.add(&format!("r{i}"), "Rare", &format!("t{i}"));
        }
        b.build()
    }

    fn chain_query(g: &Graph) -> ConjunctiveQuery {
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?a", "Huge", "?b").unwrap();
        qb.pattern("?b", "Mid", "?c").unwrap();
        qb.pattern("?c", "Rare", "?d").unwrap();
        qb.build().unwrap()
    }

    #[test]
    fn plans_are_permutations() {
        let g = graph();
        let q = chain_query(&g);
        for kind in [
            PlannerKind::DpLeftDeep,
            PlannerKind::Greedy,
            PlannerKind::AsWritten,
        ] {
            let p = plan(&g, &q, kind).unwrap();
            let mut order = p.order.clone();
            order.sort_unstable();
            assert_eq!(order, vec![0, 1, 2], "{kind:?} must cover every edge once");
            assert!(p.estimated_cost.is_finite());
            assert_eq!(p.planner, kind);
        }
    }

    #[test]
    fn dp_avoids_scanning_the_huge_predicate_first() {
        let g = graph();
        let q = chain_query(&g);
        let p = plan(&g, &q, PlannerKind::DpLeftDeep).unwrap();
        assert_ne!(
            p.order[0], 0,
            "scanning all 500 Huge edges first is the worst start"
        );
        // The DP order must be at least as cheap (under the cost model) as
        // every other connected order of this 3-edge chain.
        let orders: [[usize; 3]; 6] = [
            [0, 1, 2],
            [1, 0, 2],
            [1, 2, 0],
            [2, 1, 0],
            [0, 2, 1], // disconnected middle steps are allowed by cost_of_order
            [2, 0, 1],
        ];
        for o in orders {
            assert!(
                p.estimated_cost <= cost_of_order(&g, &q, &o) + 1e-6,
                "DP cost {} beaten by {:?} = {}",
                p.estimated_cost,
                o,
                cost_of_order(&g, &q, &o)
            );
        }
    }

    #[test]
    fn dp_is_no_worse_than_as_written() {
        let g = graph();
        let q = chain_query(&g);
        let dp = plan(&g, &q, PlannerKind::DpLeftDeep).unwrap();
        let written = plan(&g, &q, PlannerKind::AsWritten).unwrap();
        assert!(dp.estimated_cost <= written.estimated_cost + 1e-9);
    }

    #[test]
    fn greedy_orders_are_connected() {
        let g = graph();
        let q = chain_query(&g);
        let p = plan(&g, &q, PlannerKind::Greedy).unwrap();
        // Every prefix of the order must be connected.
        for k in 1..p.order.len() {
            let mask: u64 = p.order[..k].iter().map(|&i| 1u64 << i).sum();
            assert!(connected_to(&q, mask, p.order[k]));
        }
    }

    #[test]
    fn disconnected_query_is_rejected() {
        let g = graph();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?a", "Huge", "?b").unwrap();
        qb.pattern("?c", "Rare", "?d").unwrap();
        let q = qb.build().unwrap();
        assert_eq!(
            plan(&g, &q, PlannerKind::DpLeftDeep).unwrap_err(),
            EngineError::DisconnectedQuery
        );
    }

    #[test]
    fn cost_of_order_matches_planner_estimate() {
        let g = graph();
        let q = chain_query(&g);
        let p = plan(&g, &q, PlannerKind::DpLeftDeep).unwrap();
        let recomputed = cost_of_order(&g, &q, &p.order);
        assert!((recomputed - p.estimated_cost).abs() < 1e-6);
    }

    #[test]
    fn single_pattern_plan() {
        let g = graph();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?a", "Rare", "?b").unwrap();
        let q = qb.build().unwrap();
        let p = plan(&g, &q, PlannerKind::DpLeftDeep).unwrap();
        assert_eq!(p.order, vec![0]);
    }
}

//! The answer graph: the factorized representation of a CQ's answers.
//!
//! An answer graph (AG) keeps, for every query edge (triple pattern), the set
//! of data edges matched to it, and for every query variable the set of data
//! nodes still considered viable. The *ideal* answer graph (iAG) contains
//! exactly the edges that participate in at least one embedding; it is the
//! factorization the paper evaluates queries through.
//!
//! The structure supports the operations the evaluation model needs:
//! incremental insertion during *edge extension*, per-node removal with
//! support counting during *node burnback*, and adjacency lookups during
//! *defactorization* (embedding generation).

use std::collections::{HashMap, HashSet};

use wireframe_graph::NodeId;
use wireframe_query::{ConjunctiveQuery, Var};

/// The matched data edges of a single query edge, indexed in both directions.
#[derive(Debug, Clone, Default)]
pub struct PatternEdges {
    forward: HashMap<NodeId, Vec<NodeId>>,
    backward: HashMap<NodeId, Vec<NodeId>>,
    len: usize,
}

impl PatternEdges {
    /// Inserts the data edge `(s, o)`. Returns `true` if it was new.
    pub fn insert(&mut self, s: NodeId, o: NodeId) -> bool {
        let fw = self.forward.entry(s).or_default();
        if fw.contains(&o) {
            return false;
        }
        fw.push(o);
        self.backward.entry(o).or_default().push(s);
        self.len += 1;
        true
    }

    /// Bulk-loads a whole edge set into an **empty** pattern: two sorts over
    /// contiguous pairs plus one map insertion per *distinct* node replace a
    /// pair of hash operations per *edge*. This is how edge extension
    /// materializes a pattern (each pattern is materialized exactly once,
    /// and the extension stream contains no duplicates).
    pub fn bulk_load(&mut self, mut edges: Vec<(NodeId, NodeId)>) {
        debug_assert!(self.is_empty(), "bulk_load targets an empty pattern");
        edges.sort_unstable();
        debug_assert!(
            edges.windows(2).all(|w| w[0] != w[1]),
            "bulk_load saw a duplicate edge"
        );
        self.len = edges.len();
        group_into(&mut self.forward, &edges);
        let mut rev: Vec<(NodeId, NodeId)> = edges.iter().map(|&(s, o)| (o, s)).collect();
        rev.sort_unstable();
        group_into(&mut self.backward, &rev);
    }

    /// Removes the data edge `(s, o)`. Returns `true` if it was present.
    pub fn remove(&mut self, s: NodeId, o: NodeId) -> bool {
        let Some(fw) = self.forward.get_mut(&s) else {
            return false;
        };
        let Some(pos) = fw.iter().position(|&x| x == o) else {
            return false;
        };
        fw.swap_remove(pos);
        if fw.is_empty() {
            self.forward.remove(&s);
        }
        let bw = self
            .backward
            .get_mut(&o)
            .expect("backward entry must exist");
        let pos = bw
            .iter()
            .position(|&x| x == s)
            .expect("backward link must exist");
        bw.swap_remove(pos);
        if bw.is_empty() {
            self.backward.remove(&o);
        }
        self.len -= 1;
        true
    }

    /// Removes every edge whose subject is `s`, returning the affected objects.
    pub fn remove_subject(&mut self, s: NodeId) -> Vec<NodeId> {
        let Some(objects) = self.forward.remove(&s) else {
            return Vec::new();
        };
        self.len -= objects.len();
        for &o in &objects {
            let bw = self
                .backward
                .get_mut(&o)
                .expect("backward entry must exist");
            bw.retain(|&x| x != s);
            if bw.is_empty() {
                self.backward.remove(&o);
            }
        }
        objects
    }

    /// Removes every edge whose object is `o`, returning the affected subjects.
    pub fn remove_object(&mut self, o: NodeId) -> Vec<NodeId> {
        let Some(subjects) = self.backward.remove(&o) else {
            return Vec::new();
        };
        self.len -= subjects.len();
        for &s in &subjects {
            let fw = self.forward.get_mut(&s).expect("forward entry must exist");
            fw.retain(|&x| x != o);
            if fw.is_empty() {
                self.forward.remove(&s);
            }
        }
        subjects
    }

    /// Objects matched together with subject `s` (unsorted).
    pub fn objects_of(&self, s: NodeId) -> &[NodeId] {
        self.forward.get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Subjects matched together with object `o` (unsorted).
    pub fn subjects_of(&self, o: NodeId) -> &[NodeId] {
        self.backward.get(&o).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Membership test.
    pub fn contains(&self, s: NodeId, o: NodeId) -> bool {
        self.forward.get(&s).is_some_and(|v| v.contains(&o))
    }

    /// Whether subject `s` has any matched edge.
    pub fn has_subject(&self, s: NodeId) -> bool {
        self.forward.contains_key(&s)
    }

    /// Whether object `o` has any matched edge.
    pub fn has_object(&self, o: NodeId) -> bool {
        self.backward.contains_key(&o)
    }

    /// Number of matched edges.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no edges are matched.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the matched `(subject, object)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.forward
            .iter()
            .flat_map(|(&s, objs)| objs.iter().map(move |&o| (s, o)))
    }

    /// Distinct subjects of matched edges.
    pub fn subjects(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.forward.keys().copied()
    }

    /// Distinct objects of matched edges.
    pub fn objects(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.backward.keys().copied()
    }
}

/// Groups sorted `(key, value)` pairs into a map of per-key value vectors
/// (one insertion per distinct key, values with exact capacity).
fn group_into(map: &mut HashMap<NodeId, Vec<NodeId>>, sorted: &[(NodeId, NodeId)]) {
    let mut i = 0;
    while i < sorted.len() {
        let k = sorted[i].0;
        let mut j = i + 1;
        while j < sorted.len() && sorted[j].0 == k {
            j += 1;
        }
        let mut values = Vec::with_capacity(j - i);
        values.extend(sorted[i..j].iter().map(|&(_, v)| v));
        map.insert(k, values);
        i = j;
    }
}

/// A variable's set of viable nodes: an ascending-sorted base vector plus a
/// tombstone set for burnback removals (usually a small minority of the
/// base). Binding a variable is a move of the extension step's already
/// sorted, deduplicated node list — no hashing — and reading the set back as
/// a sorted slice (for the next step's constraint) is a filtered copy with
/// no re-sort.
#[derive(Debug, Clone, Default)]
pub struct NodeSet {
    /// Ascending-sorted, distinct.
    base: Vec<NodeId>,
    /// Nodes removed from `base` by burnback.
    removed: HashSet<NodeId>,
}

impl NodeSet {
    /// Number of viable nodes.
    pub fn len(&self) -> usize {
        self.base.len() - self.removed.len()
    }

    /// Whether no nodes remain viable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership probe (binary search on the sorted base).
    pub fn contains(&self, n: &NodeId) -> bool {
        self.base.binary_search(n).is_ok() && !self.removed.contains(n)
    }

    /// Removes a node; returns `true` if it was present.
    pub fn remove(&mut self, n: &NodeId) -> bool {
        self.base.binary_search(n).is_ok() && self.removed.insert(*n)
    }

    /// Inserts a node; returns `true` if it was absent. (Test/setup helper;
    /// bulk binding goes through [`NodeSet::assign_sorted`].)
    pub fn insert(&mut self, n: NodeId) -> bool {
        if self.removed.remove(&n) {
            return true;
        }
        match self.base.binary_search(&n) {
            Ok(_) => false,
            Err(at) => {
                self.base.insert(at, n);
                true
            }
        }
    }

    /// Replaces the contents with an ascending-sorted, deduplicated list.
    pub fn assign_sorted(&mut self, sorted: Vec<NodeId>) {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        self.base = sorted;
        self.removed.clear();
    }

    /// Empties the set.
    pub fn clear(&mut self) {
        self.base.clear();
        self.removed.clear();
    }

    /// Iterates over the viable nodes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &NodeId> {
        self.base.iter().filter(|n| !self.removed.contains(n))
    }

    /// The viable nodes as an ascending-sorted vector.
    pub fn to_sorted_vec(&self) -> Vec<NodeId> {
        if self.removed.is_empty() {
            self.base.clone()
        } else {
            self.iter().copied().collect()
        }
    }
}

/// The factorized answer of a conjunctive query.
#[derive(Debug, Clone)]
pub struct AnswerGraph {
    patterns: Vec<PatternEdges>,
    materialized: Vec<bool>,
    node_sets: Vec<NodeSet>,
    bound: Vec<bool>,
}

impl AnswerGraph {
    /// Creates an empty answer graph shaped for `query`.
    pub fn new(query: &ConjunctiveQuery) -> Self {
        AnswerGraph {
            patterns: (0..query.num_patterns())
                .map(|_| PatternEdges::default())
                .collect(),
            materialized: vec![false; query.num_patterns()],
            node_sets: vec![NodeSet::default(); query.num_vars()],
            bound: vec![false; query.num_vars()],
        }
    }

    /// The matched edges of query edge `pattern`.
    pub fn pattern(&self, pattern: usize) -> &PatternEdges {
        &self.patterns[pattern]
    }

    /// Mutable access to the matched edges of query edge `pattern`.
    pub fn pattern_mut(&mut self, pattern: usize) -> &mut PatternEdges {
        &mut self.patterns[pattern]
    }

    /// Whether query edge `pattern` has been materialized (processed by an
    /// edge-extension step).
    pub fn is_materialized(&self, pattern: usize) -> bool {
        self.materialized[pattern]
    }

    /// Marks query edge `pattern` as materialized.
    pub fn mark_materialized(&mut self, pattern: usize) {
        self.materialized[pattern] = true;
    }

    /// The viable nodes of variable `v`.
    pub fn node_set(&self, v: Var) -> &NodeSet {
        &self.node_sets[v.index()]
    }

    /// Mutable access to the viable nodes of variable `v`.
    pub fn node_set_mut(&mut self, v: Var) -> &mut NodeSet {
        &mut self.node_sets[v.index()]
    }

    /// Whether variable `v` has been bound by at least one materialized edge.
    pub fn is_bound(&self, v: Var) -> bool {
        self.bound[v.index()]
    }

    /// Marks variable `v` as bound.
    pub fn mark_bound(&mut self, v: Var) {
        self.bound[v.index()] = true;
    }

    /// Number of matched edges of query edge `pattern`.
    pub fn edge_count(&self, pattern: usize) -> usize {
        self.patterns[pattern].len()
    }

    /// Total number of matched edges across all query edges — the |AG| column
    /// of the paper's Table 1.
    pub fn total_edges(&self) -> usize {
        self.patterns.iter().map(PatternEdges::len).sum()
    }

    /// Total number of viable nodes across all variables.
    pub fn total_nodes(&self) -> usize {
        self.node_sets.iter().map(NodeSet::len).sum()
    }

    /// Whether any materialized query edge has no matched edges, i.e. the
    /// query's answer is empty.
    pub fn has_empty_pattern(&self) -> bool {
        self.patterns
            .iter()
            .zip(&self.materialized)
            .any(|(p, &m)| m && p.is_empty())
    }

    /// Number of query edges (patterns).
    pub fn num_patterns(&self) -> usize {
        self.patterns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireframe_graph::GraphBuilder;
    use wireframe_query::CqBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn query() -> ConjunctiveQuery {
        let mut gb = GraphBuilder::new();
        gb.add("a", "A", "b");
        gb.add("b", "B", "c");
        let g = gb.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "A", "?y").unwrap();
        qb.pattern("?y", "B", "?z").unwrap();
        qb.build().unwrap()
    }

    #[test]
    fn pattern_edges_insert_remove() {
        let mut pe = PatternEdges::default();
        assert!(pe.insert(n(1), n(2)));
        assert!(!pe.insert(n(1), n(2)), "duplicate insert is rejected");
        assert!(pe.insert(n(1), n(3)));
        assert!(pe.insert(n(4), n(2)));
        assert_eq!(pe.len(), 3);
        assert!(pe.contains(n(1), n(2)));
        assert_eq!(pe.objects_of(n(1)).len(), 2);
        assert_eq!(pe.subjects_of(n(2)).len(), 2);

        assert!(pe.remove(n(1), n(2)));
        assert!(!pe.remove(n(1), n(2)));
        assert_eq!(pe.len(), 2);
        assert!(!pe.contains(n(1), n(2)));
        assert_eq!(pe.subjects_of(n(2)), &[n(4)]);
    }

    #[test]
    fn pattern_edges_remove_subject_and_object() {
        let mut pe = PatternEdges::default();
        pe.insert(n(1), n(2));
        pe.insert(n(1), n(3));
        pe.insert(n(4), n(3));
        let mut objs = pe.remove_subject(n(1));
        objs.sort_unstable();
        assert_eq!(objs, vec![n(2), n(3)]);
        assert_eq!(pe.len(), 1);
        assert!(!pe.has_subject(n(1)));
        assert!(pe.has_object(n(3)));

        let subs = pe.remove_object(n(3));
        assert_eq!(subs, vec![n(4)]);
        assert!(pe.is_empty());
        assert_eq!(pe.remove_subject(n(9)), Vec::<NodeId>::new());
    }

    #[test]
    fn pattern_edges_iterators() {
        let mut pe = PatternEdges::default();
        pe.insert(n(1), n(2));
        pe.insert(n(3), n(2));
        let mut all: Vec<_> = pe.iter().collect();
        all.sort_unstable();
        assert_eq!(all, vec![(n(1), n(2)), (n(3), n(2))]);
        assert_eq!(pe.subjects().count(), 2);
        assert_eq!(pe.objects().count(), 1);
    }

    #[test]
    fn answer_graph_shape_and_counters() {
        let q = query();
        let mut ag = AnswerGraph::new(&q);
        assert_eq!(ag.num_patterns(), 2);
        assert_eq!(ag.total_edges(), 0);
        assert!(!ag.is_materialized(0));
        assert!(!ag.is_bound(Var(0)));

        ag.pattern_mut(0).insert(n(1), n(2));
        ag.pattern_mut(1).insert(n(2), n(3));
        ag.mark_materialized(0);
        ag.mark_bound(Var(0));
        ag.node_set_mut(Var(0)).insert(n(1));
        assert_eq!(ag.total_edges(), 2);
        assert_eq!(ag.edge_count(1), 1);
        assert_eq!(ag.total_nodes(), 1);
        assert!(ag.is_materialized(0));
        assert!(ag.is_bound(Var(0)));
        assert!(!ag.has_empty_pattern());
    }

    #[test]
    fn empty_materialized_pattern_is_detected() {
        let q = query();
        let mut ag = AnswerGraph::new(&q);
        ag.mark_materialized(1);
        assert!(
            ag.has_empty_pattern(),
            "materialized but empty pattern means empty answer"
        );
    }
}

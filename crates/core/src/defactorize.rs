//! Phase two: embedding generation (defactorization).
//!
//! Embeddings are produced by joining the answer graph's per-query-edge edge
//! sets. Over the *ideal* answer graph of an acyclic query no intermediate
//! tuple is ever lost, so the join order is immaterial (Section 4.II of the
//! paper); over a non-ideal AG or a cyclic query the order matters for cost,
//! so a greedy plan driven by the exact per-edge counts gathered in phase one
//! is used.

use std::collections::HashMap;

use wireframe_graph::slices::contains_sorted;
use wireframe_graph::NodeId;
use wireframe_query::{ConjunctiveQuery, EmbeddingSet, Term, Var};

use crate::answer_graph::{AnswerGraph, PatternEdges};
use crate::error::EngineError;

/// A sorted-slice join index over one pattern's answer edges: CSR-style
/// `keys`/`offsets`/`values` arrays in both directions, snapshotted once per
/// defactorization from the (hash-map-backed, mutation-friendly)
/// [`PatternEdges`] and then probed once per intermediate tuple. Joining
/// against sorted contiguous arrays replaces a hash lookup per tuple with a
/// binary search over cache-resident memory, and makes the enumeration order
/// deterministic.
#[derive(Debug, Default)]
pub(crate) struct JoinIndex {
    /// Distinct `(subject, object)` pairs, sorted — the scan path.
    pairs: Vec<(NodeId, NodeId)>,
    fwd_keys: Vec<NodeId>,
    fwd_offsets: Vec<u32>,
    fwd_values: Vec<NodeId>,
    rev_keys: Vec<NodeId>,
    rev_offsets: Vec<u32>,
    rev_values: Vec<NodeId>,
}

/// Groups sorted `(key, value)` pairs into `keys`/`offsets`/`values` arrays.
fn group_sorted(pairs: &[(NodeId, NodeId)]) -> (Vec<NodeId>, Vec<u32>, Vec<NodeId>) {
    let mut keys = Vec::new();
    let mut offsets: Vec<u32> = Vec::new();
    let mut values = Vec::with_capacity(pairs.len());
    for &(k, v) in pairs {
        if keys.last() != Some(&k) {
            keys.push(k);
            offsets.push(values.len() as u32);
        }
        values.push(v);
    }
    offsets.push(values.len() as u32);
    (keys, offsets, values)
}

impl JoinIndex {
    pub(crate) fn build(edges: &PatternEdges) -> Self {
        JoinIndex::from_pairs(edges.iter().collect())
    }

    /// Builds the index directly from an edge list (used by the parallel
    /// defactorizer for each worker's seed partition).
    pub(crate) fn from_pairs(mut pairs: Vec<(NodeId, NodeId)>) -> Self {
        pairs.sort_unstable();
        let (fwd_keys, fwd_offsets, fwd_values) = group_sorted(&pairs);
        let mut reversed: Vec<(NodeId, NodeId)> = pairs.iter().map(|&(s, o)| (o, s)).collect();
        reversed.sort_unstable();
        let (rev_keys, rev_offsets, rev_values) = group_sorted(&reversed);
        JoinIndex {
            pairs,
            fwd_keys,
            fwd_offsets,
            fwd_values,
            rev_keys,
            rev_offsets,
            rev_values,
        }
    }

    #[inline]
    fn slice<'a>(
        keys: &[NodeId],
        offsets: &[u32],
        values: &'a [NodeId],
        key: NodeId,
    ) -> &'a [NodeId] {
        match keys.binary_search(&key) {
            Ok(i) => &values[offsets[i] as usize..offsets[i + 1] as usize],
            Err(_) => &[],
        }
    }

    /// Objects matched with subject `s` (ascending-sorted).
    #[inline]
    fn objects_of(&self, s: NodeId) -> &[NodeId] {
        Self::slice(&self.fwd_keys, &self.fwd_offsets, &self.fwd_values, s)
    }

    /// Subjects matched with object `o` (ascending-sorted).
    #[inline]
    fn subjects_of(&self, o: NodeId) -> &[NodeId] {
        Self::slice(&self.rev_keys, &self.rev_offsets, &self.rev_values, o)
    }

    #[inline]
    fn contains(&self, s: NodeId, o: NodeId) -> bool {
        contains_sorted(self.objects_of(s), o)
    }

    fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.pairs.iter().copied()
    }
}

/// Statistics of the defactorization phase.
#[derive(Debug, Clone, Default)]
pub struct DefactorizationStats {
    /// Join order over the query edges (pattern indexes).
    pub join_order: Vec<usize>,
    /// Largest intermediate relation produced while joining.
    pub peak_intermediate: usize,
    /// Number of embedding tuples produced (before projection).
    pub embeddings: usize,
    /// CPU time summed across workers (index building + joining). Equals
    /// the phase's wall-clock on the sequential path; exceeds it when the
    /// parallel defactorizer ran workers concurrently.
    pub cpu: std::time::Duration,
}

/// Chooses a join order for phase two: connected, smallest answer-edge set
/// first (greedy on the exact statistics the answer graph provides).
#[allow(clippy::needless_range_loop)] // `i` is the pattern id being chosen
pub fn embedding_plan(query: &ConjunctiveQuery, ag: &AnswerGraph) -> Vec<usize> {
    let n = query.num_patterns();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    for _ in 0..n {
        let mut best: Option<usize> = None;
        for i in 0..n {
            if used[i] {
                continue;
            }
            let connected = order.is_empty()
                || query.patterns()[i].variables().any(|v| {
                    order
                        .iter()
                        .any(|&j: &usize| query.patterns()[j].mentions(v))
                });
            if !connected {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => ag.edge_count(i) < ag.edge_count(b),
            };
            if better {
                best = Some(i);
            }
        }
        // A disconnected remainder can only happen for disconnected queries,
        // which the engine rejects earlier; fall back to any unused pattern.
        let pick = best.unwrap_or_else(|| (0..n).find(|&i| !used[i]).expect("pattern left"));
        used[pick] = true;
        order.push(pick);
    }
    order
}

/// Generates the embeddings of `query` from its answer graph by joining the
/// answer edges in `order` (typically produced by [`embedding_plan`]).
///
/// The result's schema contains every query variable in index order; use
/// [`EmbeddingSet::project`] for the SELECT list.
pub fn defactorize(
    query: &ConjunctiveQuery,
    ag: &AnswerGraph,
    order: &[usize],
) -> Result<(EmbeddingSet, DefactorizationStats), EngineError> {
    if order.len() != query.num_patterns() {
        return Err(EngineError::Internal(
            "embedding plan does not cover every query edge".into(),
        ));
    }
    let busy = std::time::Instant::now();
    // Sorted join indexes, snapshotted once per pattern and probed per tuple.
    let indexes: Vec<JoinIndex> = (0..query.num_patterns())
        .map(|q| JoinIndex::build(ag.pattern(q)))
        .collect();
    let index_refs: Vec<&JoinIndex> = indexes.iter().collect();
    let (set, mut stats) = defactorize_indexed(query, &index_refs, order)?;
    stats.cpu = busy.elapsed();
    Ok((set, stats))
}

/// The join loop over prebuilt indexes. Exposed crate-internally so the
/// parallel defactorizer can share the (identical) non-seed indexes across
/// workers instead of rebuilding them per worker.
pub(crate) fn defactorize_indexed(
    query: &ConjunctiveQuery,
    indexes: &[&JoinIndex],
    order: &[usize],
) -> Result<(EmbeddingSet, DefactorizationStats), EngineError> {
    let mut stats = DefactorizationStats {
        join_order: order.to_vec(),
        ..DefactorizationStats::default()
    };

    // Bound variables so far -> column index in the intermediate tuples.
    let mut columns: HashMap<Var, usize> = HashMap::new();
    // Intermediate tuples in one flat arena: `count` rows of `arity` columns
    // each, concatenated in `data`. An extension step memcpys the parent row
    // and appends the new binding — no per-tuple allocation, which is where
    // the materializing defactorizer used to spend most of its time.
    let mut arity = 0usize;
    let mut count = 1usize; // the empty tuple
    let mut data: Vec<NodeId> = Vec::new();

    for &q in order {
        let pattern = query.patterns()[q];
        let edges = indexes[q];
        let s_col = pattern
            .subject
            .as_var()
            .and_then(|v| columns.get(&v).copied());
        let o_col = pattern
            .object
            .as_var()
            .and_then(|v| columns.get(&v).copied());

        let mut next_arity = arity;
        let mut next: Vec<NodeId> = Vec::with_capacity(data.len());
        let mut next_count = 0usize;

        match (pattern.subject, pattern.object) {
            // Self-loop on one variable.
            (Term::Var(a), Term::Var(b)) if a == b => {
                if let Some(col) = s_col {
                    for i in 0..count {
                        let t = &data[i * arity..(i + 1) * arity];
                        if edges.contains(t[col], t[col]) {
                            next.extend_from_slice(t);
                            next_count += 1;
                        }
                    }
                } else {
                    let new_col = columns.len();
                    columns.insert(a, new_col);
                    next_arity = arity + 1;
                    for i in 0..count {
                        let t = &data[i * arity..(i + 1) * arity];
                        for (s, o) in edges.iter() {
                            if s == o {
                                next.extend_from_slice(t);
                                next.push(s);
                                next_count += 1;
                            }
                        }
                    }
                }
            }
            _ => {
                match (s_col, o_col) {
                    (Some(sc), Some(oc)) => {
                        for i in 0..count {
                            let t = &data[i * arity..(i + 1) * arity];
                            if edges
                                .contains(bind(t, sc, pattern.subject), bind(t, oc, pattern.object))
                            {
                                next.extend_from_slice(t);
                                next_count += 1;
                            }
                        }
                    }
                    (Some(sc), None) => {
                        let new_col = pattern.object.as_var().map(|v| {
                            let c = columns.len();
                            columns.insert(v, c);
                            c
                        });
                        if new_col.is_some() {
                            next_arity = arity + 1;
                        }
                        for i in 0..count {
                            let t = &data[i * arity..(i + 1) * arity];
                            let s = bind(t, sc, pattern.subject);
                            for &o in edges.objects_of(s) {
                                if admits(pattern.object, o) {
                                    next.extend_from_slice(t);
                                    if new_col.is_some() {
                                        next.push(o);
                                    }
                                    next_count += 1;
                                }
                            }
                        }
                    }
                    (None, Some(oc)) => {
                        let new_col = pattern.subject.as_var().map(|v| {
                            let c = columns.len();
                            columns.insert(v, c);
                            c
                        });
                        if new_col.is_some() {
                            next_arity = arity + 1;
                        }
                        for i in 0..count {
                            let t = &data[i * arity..(i + 1) * arity];
                            let o = bind(t, oc, pattern.object);
                            for &s in edges.subjects_of(o) {
                                if admits(pattern.subject, s) {
                                    next.extend_from_slice(t);
                                    if new_col.is_some() {
                                        next.push(s);
                                    }
                                    next_count += 1;
                                }
                            }
                        }
                    }
                    (None, None) => {
                        // Neither end bound yet: constants and/or fresh variables.
                        let s_new = pattern.subject.as_var().map(|v| {
                            let c = columns.len();
                            columns.insert(v, c);
                            c
                        });
                        let o_new = pattern.object.as_var().map(|v| {
                            let c = columns.len();
                            columns.insert(v, c);
                            c
                        });
                        next_arity =
                            arity + usize::from(s_new.is_some()) + usize::from(o_new.is_some());
                        for i in 0..count {
                            let t = &data[i * arity..(i + 1) * arity];
                            for (s, o) in edges.iter() {
                                if !admits(pattern.subject, s) || !admits(pattern.object, o) {
                                    continue;
                                }
                                next.extend_from_slice(t);
                                if s_new.is_some() {
                                    next.push(s);
                                }
                                if o_new.is_some() {
                                    next.push(o);
                                }
                                next_count += 1;
                            }
                        }
                    }
                }
            }
        }

        arity = next_arity;
        data = next;
        count = next_count;
        stats.peak_intermediate = stats.peak_intermediate.max(count);
        if count == 0 {
            break;
        }
    }

    // Assemble the full schema: every query variable, in variable-index order.
    // Variables that never got a column (possible only if every pattern
    // mentioning them matched nothing) only occur when the result is empty.
    // The output stays one flat row-major buffer end to end.
    let schema: Vec<Var> = query.variables().collect();
    let mut out: Vec<NodeId> = Vec::with_capacity(count * schema.len());
    if count > 0 {
        let mut col_of: Vec<usize> = Vec::with_capacity(query.num_vars());
        for v in query.variables() {
            match columns.get(&v) {
                Some(&c) => col_of.push(c),
                None => {
                    return Err(EngineError::Internal(
                        "a query variable was never bound during defactorization".into(),
                    ))
                }
            }
        }
        if arity == col_of.len() && col_of.iter().enumerate().all(|(i, &c)| c == i) {
            // Columns were bound in variable-index order: the arena already
            // is the answer — move it, no gather pass.
            out = data;
        } else {
            for i in 0..count {
                let t = &data[i * arity..(i + 1) * arity];
                out.extend(col_of.iter().map(|&c| t[c]));
            }
        }
        stats.embeddings = count;
    }
    // The explicit row count matters for fully ground queries (zero-arity
    // schema): `count` empty tuples are still answers.
    Ok((EmbeddingSet::from_flat_rows(schema, out, count), stats))
}

/// Enumerates only the embeddings that pass **through one specific answer
/// edge** — the primitive behind incremental top-k prefix maintenance: an
/// inserted AG edge can only contribute rows that use it, so instead of
/// re-defactorizing everything, the maintainer seeds the join with the
/// single new pair and extends outward.
///
/// Built once per maintenance pass (the per-pattern indexes are shared
/// across all seed edges of the pass), then probed once per inserted edge.
#[derive(Debug)]
pub(crate) struct SeedEnumerator {
    indexes: Vec<JoinIndex>,
}

impl SeedEnumerator {
    /// Snapshots the current answer graph into join indexes.
    pub(crate) fn new(query: &ConjunctiveQuery, ag: &AnswerGraph) -> Self {
        SeedEnumerator {
            indexes: (0..query.num_patterns())
                .map(|q| JoinIndex::build(ag.pattern(q)))
                .collect(),
        }
    }

    /// A connected join order that starts at `seed`, then greedily extends
    /// to the smallest connected answer-edge set — the seed pattern is
    /// pinned to one pair, so visiting it first bounds every intermediate.
    fn seed_order(&self, query: &ConjunctiveQuery, seed: usize) -> Vec<usize> {
        let n = query.num_patterns();
        let mut order = Vec::with_capacity(n);
        let mut used = vec![false; n];
        order.push(seed);
        used[seed] = true;
        while order.len() < n {
            let mut best: Option<usize> = None;
            for (i, pattern) in query.patterns().iter().enumerate() {
                if used[i] {
                    continue;
                }
                let connected = pattern.variables().any(|v| {
                    order
                        .iter()
                        .any(|&j: &usize| query.patterns()[j].mentions(v))
                });
                if !connected {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => self.indexes[i].pairs.len() < self.indexes[b].pairs.len(),
                };
                if better {
                    best = Some(i);
                }
            }
            let pick = best.unwrap_or_else(|| (0..n).find(|&i| !used[i]).expect("pattern left"));
            used[pick] = true;
            order.push(pick);
        }
        order
    }

    /// All embeddings whose binding of pattern `seed` is exactly the answer
    /// edge `(s, o)`. The schema is every query variable in index order
    /// (same as [`defactorize`]); project before comparing to an answer.
    pub(crate) fn rows_through(
        &self,
        query: &ConjunctiveQuery,
        seed: usize,
        s: NodeId,
        o: NodeId,
    ) -> Result<EmbeddingSet, EngineError> {
        let pinned = JoinIndex::from_pairs(vec![(s, o)]);
        let mut refs: Vec<&JoinIndex> = self.indexes.iter().collect();
        refs[seed] = &pinned;
        let order = self.seed_order(query, seed);
        defactorize_indexed(query, &refs, &order).map(|(set, _)| set)
    }
}

/// Convenience: counts embeddings without keeping the materialized set.
pub fn count_embeddings(
    query: &ConjunctiveQuery,
    ag: &AnswerGraph,
    order: &[usize],
) -> Result<usize, EngineError> {
    defactorize(query, ag, order).map(|(set, _)| set.len())
}

fn bind(tuple: &[NodeId], col: usize, term: Term) -> NodeId {
    match term {
        Term::Const(c) => c,
        Term::Var(_) => tuple[col],
    }
}

fn admits(term: Term, n: NodeId) -> bool {
    match term {
        Term::Const(c) => c == n,
        Term::Var(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalOptions;
    use crate::generate::generate;
    use wireframe_graph::{Graph, GraphBuilder};
    use wireframe_query::CqBuilder;

    fn figure1_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "5");
        b.add("2", "A", "5");
        b.add("3", "A", "5");
        b.add("4", "A", "6");
        b.add("5", "B", "9");
        b.add("7", "B", "10");
        b.add("9", "C", "12");
        b.add("9", "C", "13");
        b.add("9", "C", "14");
        b.add("9", "C", "15");
        b.add("11", "C", "15");
        b.build()
    }

    fn chain_query(g: &Graph) -> ConjunctiveQuery {
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?w", "A", "?x").unwrap();
        qb.pattern("?x", "B", "?y").unwrap();
        qb.pattern("?y", "C", "?z").unwrap();
        qb.build().unwrap()
    }

    #[test]
    fn figure1_has_twelve_embeddings_from_eight_edges() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let (ag, _) = generate(&g, &q, &[0, 1, 2], &EvalOptions::default()).unwrap();
        assert_eq!(ag.total_edges(), 8);
        let order = embedding_plan(&q, &ag);
        let (emb, stats) = defactorize(&q, &ag, &order).unwrap();
        assert_eq!(
            emb.len(),
            12,
            "the paper's Figure 1 reports twelve embedding tuples"
        );
        assert_eq!(stats.embeddings, 12);
        assert!(stats.peak_intermediate >= 12);
    }

    #[test]
    fn join_order_is_immaterial_over_the_ideal_ag() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let (ag, _) = generate(&g, &q, &[0, 1, 2], &EvalOptions::default()).unwrap();
        let (a, _) = defactorize(&q, &ag, &[0, 1, 2]).unwrap();
        let (b, _) = defactorize(&q, &ag, &[2, 1, 0]).unwrap();
        let (c, _) = defactorize(&q, &ag, &[1, 0, 2]).unwrap();
        assert!(a.same_answer(&b));
        assert!(a.same_answer(&c));
    }

    #[test]
    fn embedding_plan_starts_from_smallest_pattern() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let (ag, _) = generate(&g, &q, &[0, 1, 2], &EvalOptions::default()).unwrap();
        let order = embedding_plan(&q, &ag);
        assert_eq!(
            order[0], 1,
            "the single B answer edge is the cheapest start"
        );
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn constants_are_enforced() {
        let g = figure1_graph();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?w", "A", "5").unwrap();
        qb.pattern("5", "B", "?y").unwrap();
        let q = qb.build().unwrap();
        let (ag, _) = generate(&g, &q, &[0, 1], &EvalOptions::default()).unwrap();
        let order = embedding_plan(&q, &ag);
        let (emb, _) = defactorize(&q, &ag, &order).unwrap();
        assert_eq!(
            emb.len(),
            3,
            "three subjects reach node 5; node 5 has one B edge"
        );
        assert_eq!(emb.schema().len(), 2);
    }

    #[test]
    fn empty_answer_graph_yields_no_embeddings() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let ag = AnswerGraph::new(&q);
        let (emb, stats) = defactorize(&q, &ag, &[0, 1, 2]).unwrap();
        assert!(emb.is_empty());
        assert_eq!(stats.embeddings, 0);
    }

    #[test]
    fn count_matches_materialization() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let (ag, _) = generate(&g, &q, &[0, 1, 2], &EvalOptions::default()).unwrap();
        let order = embedding_plan(&q, &ag);
        assert_eq!(count_embeddings(&q, &ag, &order).unwrap(), 12);
    }

    #[test]
    fn fully_ground_query_returns_the_empty_tuple() {
        // A query with no variables has a zero-arity answer schema; its
        // answer is one empty tuple when the pattern holds, zero otherwise.
        let g = figure1_graph();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("5", "B", "9").unwrap();
        let q = qb.build().unwrap();
        let (ag, _) = generate(&g, &q, &[0], &EvalOptions::default()).unwrap();
        let (emb, stats) = defactorize(&q, &ag, &embedding_plan(&q, &ag)).unwrap();
        assert_eq!(emb.len(), 1, "the ground pattern holds: one empty tuple");
        assert_eq!(emb.schema().len(), 0);
        assert_eq!(stats.embeddings, 1);

        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("5", "B", "12").unwrap(); // no such edge
        let q2 = qb.build().unwrap();
        let (ag2, _) = generate(&g, &q2, &[0], &EvalOptions::default()).unwrap();
        let (emb2, _) = defactorize(&q2, &ag2, &embedding_plan(&q2, &ag2)).unwrap();
        assert_eq!(emb2.len(), 0);
    }

    #[test]
    fn incomplete_order_is_rejected() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let ag = AnswerGraph::new(&q);
        assert!(defactorize(&q, &ag, &[0, 1]).is_err());
    }

    #[test]
    fn seed_enumeration_partitions_the_answer() {
        // Every embedding binds pattern 1 to exactly one answer edge, so
        // enumerating through each edge of pattern 1 partitions the full
        // answer: the union (as a set) equals a full defactorization.
        let g = figure1_graph();
        let q = chain_query(&g);
        let (ag, _) = generate(&g, &q, &[0, 1, 2], &EvalOptions::default()).unwrap();
        let (full, _) = defactorize(&q, &ag, &embedding_plan(&q, &ag)).unwrap();

        let seeds = SeedEnumerator::new(&q, &ag);
        for pat in 0..q.num_patterns() {
            let mut rows: Vec<Vec<NodeId>> = Vec::new();
            for (s, o) in ag.pattern(pat).iter() {
                let part = seeds.rows_through(&q, pat, s, o).unwrap();
                assert_eq!(part.schema(), full.schema());
                rows.extend(part.rows().map(<[NodeId]>::to_vec));
            }
            let union = EmbeddingSet::new(full.schema().to_vec(), rows);
            assert!(
                union.same_answer(&full),
                "seeding pattern {pat} must cover the full answer"
            );
        }
    }

    #[test]
    fn self_loop_defactorization() {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "1");
        b.add("2", "A", "3");
        b.add("1", "B", "4");
        let g = b.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "A", "?x").unwrap();
        qb.pattern("?x", "B", "?y").unwrap();
        let q = qb.build().unwrap();
        let (ag, _) = generate(&g, &q, &[0, 1], &EvalOptions::default()).unwrap();
        let order = embedding_plan(&q, &ag);
        let (emb, _) = defactorize(&q, &ag, &order).unwrap();
        assert_eq!(emb.len(), 1, "only node 1 loops and has a B edge");
    }
}

//! Phase two: embedding generation (defactorization).
//!
//! Embeddings are produced by joining the answer graph's per-query-edge edge
//! sets. Over the *ideal* answer graph of an acyclic query no intermediate
//! tuple is ever lost, so the join order is immaterial (Section 4.II of the
//! paper); over a non-ideal AG or a cyclic query the order matters for cost,
//! so a greedy plan driven by the exact per-edge counts gathered in phase one
//! is used.

use std::collections::HashMap;

use wireframe_graph::NodeId;
use wireframe_query::{ConjunctiveQuery, EmbeddingSet, Term, Var};

use crate::answer_graph::AnswerGraph;
use crate::error::EngineError;

/// Statistics of the defactorization phase.
#[derive(Debug, Clone, Default)]
pub struct DefactorizationStats {
    /// Join order over the query edges (pattern indexes).
    pub join_order: Vec<usize>,
    /// Largest intermediate relation produced while joining.
    pub peak_intermediate: usize,
    /// Number of embedding tuples produced (before projection).
    pub embeddings: usize,
}

/// Chooses a join order for phase two: connected, smallest answer-edge set
/// first (greedy on the exact statistics the answer graph provides).
#[allow(clippy::needless_range_loop)] // `i` is the pattern id being chosen
pub fn embedding_plan(query: &ConjunctiveQuery, ag: &AnswerGraph) -> Vec<usize> {
    let n = query.num_patterns();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    for _ in 0..n {
        let mut best: Option<usize> = None;
        for i in 0..n {
            if used[i] {
                continue;
            }
            let connected = order.is_empty()
                || query.patterns()[i].variables().any(|v| {
                    order
                        .iter()
                        .any(|&j: &usize| query.patterns()[j].mentions(v))
                });
            if !connected {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => ag.edge_count(i) < ag.edge_count(b),
            };
            if better {
                best = Some(i);
            }
        }
        // A disconnected remainder can only happen for disconnected queries,
        // which the engine rejects earlier; fall back to any unused pattern.
        let pick = best.unwrap_or_else(|| (0..n).find(|&i| !used[i]).expect("pattern left"));
        used[pick] = true;
        order.push(pick);
    }
    order
}

/// Generates the embeddings of `query` from its answer graph by joining the
/// answer edges in `order` (typically produced by [`embedding_plan`]).
///
/// The result's schema contains every query variable in index order; use
/// [`EmbeddingSet::project`] for the SELECT list.
pub fn defactorize(
    query: &ConjunctiveQuery,
    ag: &AnswerGraph,
    order: &[usize],
) -> Result<(EmbeddingSet, DefactorizationStats), EngineError> {
    if order.len() != query.num_patterns() {
        return Err(EngineError::Internal(
            "embedding plan does not cover every query edge".into(),
        ));
    }
    let mut stats = DefactorizationStats {
        join_order: order.to_vec(),
        peak_intermediate: 0,
        embeddings: 0,
    };

    // Bound variables so far -> column index in the intermediate tuples.
    let mut columns: HashMap<Var, usize> = HashMap::new();
    let mut tuples: Vec<Vec<NodeId>> = vec![Vec::new()];

    for &q in order {
        let pattern = query.patterns()[q];
        let edges = ag.pattern(q);
        let s_col = pattern
            .subject
            .as_var()
            .and_then(|v| columns.get(&v).copied());
        let o_col = pattern
            .object
            .as_var()
            .and_then(|v| columns.get(&v).copied());
        let mut next: Vec<Vec<NodeId>> = Vec::new();

        match (pattern.subject, pattern.object) {
            // Self-loop on one variable.
            (Term::Var(a), Term::Var(b)) if a == b => {
                if let Some(col) = s_col {
                    for t in &tuples {
                        if edges.contains(t[col], t[col]) {
                            next.push(t.clone());
                        }
                    }
                } else {
                    let new_col = columns.len();
                    columns.insert(a, new_col);
                    for t in &tuples {
                        for (s, o) in edges.iter() {
                            if s == o {
                                let mut t2 = t.clone();
                                t2.push(s);
                                next.push(t2);
                            }
                        }
                    }
                }
            }
            _ => {
                match (s_col, o_col) {
                    (Some(sc), Some(oc)) => {
                        for t in &tuples {
                            if edges
                                .contains(bind(t, sc, pattern.subject), bind(t, oc, pattern.object))
                            {
                                next.push(t.clone());
                            }
                        }
                    }
                    (Some(sc), None) => {
                        let new_col = pattern.object.as_var().map(|v| {
                            let c = columns.len();
                            columns.insert(v, c);
                            c
                        });
                        for t in &tuples {
                            let s = bind(t, sc, pattern.subject);
                            for &o in edges.objects_of(s) {
                                if admits(pattern.object, o) {
                                    extendq(&mut next, t, new_col, o);
                                }
                            }
                        }
                    }
                    (None, Some(oc)) => {
                        let new_col = pattern.subject.as_var().map(|v| {
                            let c = columns.len();
                            columns.insert(v, c);
                            c
                        });
                        for t in &tuples {
                            let o = bind(t, oc, pattern.object);
                            for &s in edges.subjects_of(o) {
                                if admits(pattern.subject, s) {
                                    extendq(&mut next, t, new_col, s);
                                }
                            }
                        }
                    }
                    (None, None) => {
                        // Neither end bound yet: constants and/or fresh variables.
                        let s_new = pattern.subject.as_var().map(|v| {
                            let c = columns.len();
                            columns.insert(v, c);
                            c
                        });
                        let o_new = pattern.object.as_var().map(|v| {
                            let c = columns.len();
                            columns.insert(v, c);
                            c
                        });
                        for t in &tuples {
                            for (s, o) in edges.iter() {
                                if !admits(pattern.subject, s) || !admits(pattern.object, o) {
                                    continue;
                                }
                                let mut t2 = t.clone();
                                if s_new.is_some() {
                                    t2.push(s);
                                }
                                if o_new.is_some() {
                                    t2.push(o);
                                }
                                next.push(t2);
                            }
                        }
                    }
                }
            }
        }

        tuples = next;
        stats.peak_intermediate = stats.peak_intermediate.max(tuples.len());
        if tuples.is_empty() {
            break;
        }
    }

    // Assemble the full schema: every query variable, in variable-index order.
    // Variables that never got a column (possible only if every pattern
    // mentioning them matched nothing) only occur when the result is empty.
    let schema: Vec<Var> = query.variables().collect();
    let mut out: Vec<Vec<NodeId>> = Vec::with_capacity(tuples.len());
    if !tuples.is_empty() {
        let mut col_of: Vec<Option<usize>> = vec![None; query.num_vars()];
        for (v, c) in &columns {
            col_of[v.index()] = Some(*c);
        }
        if col_of.iter().any(Option::is_none) {
            return Err(EngineError::Internal(
                "a query variable was never bound during defactorization".into(),
            ));
        }
        for t in &tuples {
            out.push(
                col_of
                    .iter()
                    .map(|c| t[c.expect("checked above")])
                    .collect(),
            );
        }
    }
    stats.embeddings = out.len();
    Ok((EmbeddingSet::new(schema, out), stats))
}

/// Convenience: counts embeddings without keeping the materialized set.
pub fn count_embeddings(
    query: &ConjunctiveQuery,
    ag: &AnswerGraph,
    order: &[usize],
) -> Result<usize, EngineError> {
    defactorize(query, ag, order).map(|(set, _)| set.len())
}

fn bind(tuple: &[NodeId], col: usize, term: Term) -> NodeId {
    match term {
        Term::Const(c) => c,
        Term::Var(_) => tuple[col],
    }
}

fn admits(term: Term, n: NodeId) -> bool {
    match term {
        Term::Const(c) => c == n,
        Term::Var(_) => true,
    }
}

fn extendq(next: &mut Vec<Vec<NodeId>>, tuple: &[NodeId], new_col: Option<usize>, value: NodeId) {
    let mut t2 = tuple.to_vec();
    if new_col.is_some() {
        t2.push(value);
    }
    next.push(t2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalOptions;
    use crate::generate::generate;
    use wireframe_graph::{Graph, GraphBuilder};
    use wireframe_query::CqBuilder;

    fn figure1_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "5");
        b.add("2", "A", "5");
        b.add("3", "A", "5");
        b.add("4", "A", "6");
        b.add("5", "B", "9");
        b.add("7", "B", "10");
        b.add("9", "C", "12");
        b.add("9", "C", "13");
        b.add("9", "C", "14");
        b.add("9", "C", "15");
        b.add("11", "C", "15");
        b.build()
    }

    fn chain_query(g: &Graph) -> ConjunctiveQuery {
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?w", "A", "?x").unwrap();
        qb.pattern("?x", "B", "?y").unwrap();
        qb.pattern("?y", "C", "?z").unwrap();
        qb.build().unwrap()
    }

    #[test]
    fn figure1_has_twelve_embeddings_from_eight_edges() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let (ag, _) = generate(&g, &q, &[0, 1, 2], &EvalOptions::default()).unwrap();
        assert_eq!(ag.total_edges(), 8);
        let order = embedding_plan(&q, &ag);
        let (emb, stats) = defactorize(&q, &ag, &order).unwrap();
        assert_eq!(
            emb.len(),
            12,
            "the paper's Figure 1 reports twelve embedding tuples"
        );
        assert_eq!(stats.embeddings, 12);
        assert!(stats.peak_intermediate >= 12);
    }

    #[test]
    fn join_order_is_immaterial_over_the_ideal_ag() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let (ag, _) = generate(&g, &q, &[0, 1, 2], &EvalOptions::default()).unwrap();
        let (a, _) = defactorize(&q, &ag, &[0, 1, 2]).unwrap();
        let (b, _) = defactorize(&q, &ag, &[2, 1, 0]).unwrap();
        let (c, _) = defactorize(&q, &ag, &[1, 0, 2]).unwrap();
        assert!(a.same_answer(&b));
        assert!(a.same_answer(&c));
    }

    #[test]
    fn embedding_plan_starts_from_smallest_pattern() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let (ag, _) = generate(&g, &q, &[0, 1, 2], &EvalOptions::default()).unwrap();
        let order = embedding_plan(&q, &ag);
        assert_eq!(
            order[0], 1,
            "the single B answer edge is the cheapest start"
        );
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn constants_are_enforced() {
        let g = figure1_graph();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?w", "A", "5").unwrap();
        qb.pattern("5", "B", "?y").unwrap();
        let q = qb.build().unwrap();
        let (ag, _) = generate(&g, &q, &[0, 1], &EvalOptions::default()).unwrap();
        let order = embedding_plan(&q, &ag);
        let (emb, _) = defactorize(&q, &ag, &order).unwrap();
        assert_eq!(
            emb.len(),
            3,
            "three subjects reach node 5; node 5 has one B edge"
        );
        assert_eq!(emb.schema().len(), 2);
    }

    #[test]
    fn empty_answer_graph_yields_no_embeddings() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let ag = AnswerGraph::new(&q);
        let (emb, stats) = defactorize(&q, &ag, &[0, 1, 2]).unwrap();
        assert!(emb.is_empty());
        assert_eq!(stats.embeddings, 0);
    }

    #[test]
    fn count_matches_materialization() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let (ag, _) = generate(&g, &q, &[0, 1, 2], &EvalOptions::default()).unwrap();
        let order = embedding_plan(&q, &ag);
        assert_eq!(count_embeddings(&q, &ag, &order).unwrap(), 12);
    }

    #[test]
    fn incomplete_order_is_rejected() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let ag = AnswerGraph::new(&q);
        assert!(defactorize(&q, &ag, &[0, 1]).is_err());
    }

    #[test]
    fn self_loop_defactorization() {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "1");
        b.add("2", "A", "3");
        b.add("1", "B", "4");
        let g = b.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "A", "?x").unwrap();
        qb.pattern("?x", "B", "?y").unwrap();
        let q = qb.build().unwrap();
        let (ag, _) = generate(&g, &q, &[0, 1], &EvalOptions::default()).unwrap();
        let order = embedding_plan(&q, &ag);
        let (emb, _) = defactorize(&q, &ag, &order).unwrap();
        assert_eq!(emb.len(), 1, "only node 1 loops and has a B edge");
    }
}

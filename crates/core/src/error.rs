//! Error type of the Wireframe engine.

use std::fmt;

use wireframe_query::QueryError;

/// Errors produced while planning or evaluating a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The query itself is malformed (propagated from the query layer).
    Query(QueryError),
    /// The query graph is not connected. Evaluating a disconnected CQ is a
    /// cross product of its components; Wireframe (like the paper) restricts
    /// itself to connected query graphs.
    DisconnectedQuery,
    /// An internal invariant was violated; indicates a bug, reported instead
    /// of panicking so callers can surface it.
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Query(e) => write!(f, "query error: {e}"),
            EngineError::DisconnectedQuery => {
                write!(
                    f,
                    "the query graph is not connected; split the query instead"
                )
            }
            EngineError::Internal(msg) => write!(f, "internal engine error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}

impl From<EngineError> for wireframe_api::WireframeError {
    fn from(e: EngineError) -> Self {
        use wireframe_api::WireframeError;
        match e {
            EngineError::Query(q) => WireframeError::Query(q),
            EngineError::DisconnectedQuery => WireframeError::DisconnectedQuery,
            EngineError::Internal(msg) => WireframeError::Internal(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = EngineError::from(QueryError::EmptyQuery);
        assert!(e.to_string().contains("query error"));
        assert!(e.source().is_some());
        assert!(EngineError::DisconnectedQuery
            .to_string()
            .contains("not connected"));
        assert!(EngineError::Internal("x".into()).source().is_none());
    }
}

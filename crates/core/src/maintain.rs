//! Incremental answer-graph maintenance: the retained [`MaterializedQuery`].
//!
//! A [`MaterializedQuery`] is the answer graph promoted from a per-call
//! temporary to a first-class, *versioned* artifact: the phase-one plan, the
//! generated (node-burnback fixpoint) answer graph, and a provenance index
//! mapping each data predicate to the query patterns it can bind. Where the
//! eviction-based serving path reacts to a data mutation by throwing the
//! whole thing away and re-running generate → burnback from scratch,
//! [`MaterializedQuery::maintain`] folds the mutation's net
//! [`EdgeDelta`](wireframe_graph::EdgeDelta) into the retained graph
//! directly:
//!
//! * a **tombstoned** data edge is removed from every pattern it was bound
//!   to, and any endpoint left without support in that pattern seeds the
//!   ordinary node-burnback cascade ([`crate::generate`]'s `burn_nodes`);
//! * an **inserted** data edge is bound to every pattern whose predicate and
//!   constant ends it matches; endpoints not currently viable are revived
//!   *optimistically*, pulling their incident data edges for every pattern
//!   they participate in (a closure over the region the delta can reach),
//!   after which one burnback pass from the revived frontier removes
//!   whatever optimism was unwarranted.
//!
//! Both directions converge on the same state a from-scratch evaluation
//! would produce, because node burnback computes the **greatest fixpoint**
//! of the pairwise-support constraints — an order-independent object (the
//! engine's `reverse_order_gives_same_answer_graph` test pins this), so
//! "old fixpoint + local repair" and "fresh fixpoint" coincide. The cost is
//! `O(|delta| + |affected region|)`: a mutation that touches none of the
//! query's predicates costs nothing, and one that flips a handful of edges
//! re-examines only the frontier those edges reach — not the graph.
//!
//! Embeddings are deliberately **not** maintained: defactorization stays
//! lazy ([`MaterializedQuery::defactorize`]), recomputed from the maintained
//! answer graph on demand. Keeping the small factorized artifact fresh and
//! paying the embedding expansion only when asked is exactly the
//! factorization-matters bet the paper makes.
//!
//! The struct implements the workspace-wide
//! [`MaintainedView`](wireframe_api::MaintainedView) contract, which is how
//! the `Session` facade retains and maintains views without depending on
//! this crate's internals. Views are only produced for configurations whose
//! answer graph *is* the node-burnback fixpoint — edge burnback prunes
//! cyclic answer graphs below it, so those evaluations report
//! [`MaterializedQuery::is_maintainable`]` == false` and serving layers fall
//! back to eviction.

use std::collections::VecDeque;
use std::time::Instant;

use wireframe_api::{
    Evaluation, Factorized, LimitInfo, MaintainedView, MaintenanceInfo, MaintenanceStats, Timings,
    WireframeError,
};
use wireframe_graph::{EdgeDelta, Graph, NodeId, PredId};
use wireframe_query::{ConjunctiveQuery, EmbeddingSet, Term, TriplePattern, Var};

use crate::answer_graph::AnswerGraph;
use crate::config::EvalOptions;
use crate::defactorize::{defactorize, embedding_plan, DefactorizationStats, SeedEnumerator};
use crate::error::EngineError;
use crate::generate::{burn_nodes, GenerationStats};
use crate::parallel::{defactorize_parallel, ParallelOptions};
use crate::planner::Plan;
use crate::triangulate::EdgeBurnbackStats;

/// Below this much AG churn (edges added + removed in one pass) incremental
/// prefix maintenance always runs; above `max(this, |AG|/4)` the pass falls
/// back to one full re-enumeration instead — re-seeding hundreds of join
/// probes would cost more than the defactorization it avoids.
const PREFIX_FALLBACK_MIN_CHURN: usize = 64;

/// How one end of a pattern reads out of a prefix row (projection-order
/// columns): a pinned constant, or the column its variable projects to.
#[derive(Debug, Clone, Copy)]
enum PrefixEnd {
    Const(NodeId),
    Col(usize),
}

impl PrefixEnd {
    #[inline]
    fn resolve(self, row: &[NodeId]) -> NodeId {
        match self {
            PrefixEnd::Const(c) => c,
            PrefixEnd::Col(i) => row[i],
        }
    }
}

/// What [`MaterializedQuery::merge_prefix_candidates`] decided.
enum PrefixMerge {
    /// Candidates merged in; the prefix is current.
    Merged,
    /// Too many candidate rows for an incremental merge to be a win.
    Overflow,
}

/// The retained defactorized **top-k prefix** of a maintained view: the
/// first `k` embeddings under the canonical row order (lexicographic over
/// the projection's columns — see `EmbeddingSet::canonical_prefix`), kept
/// *next to* the factorized answer graph so bounded reads (`LIMIT k`) are
/// served in `O(k)` without defactorizing.
///
/// The low-water mark is the `exhaustive` flag: when set, the prefix *is*
/// the complete answer (≤ k rows exist) and any limit can be served from
/// it; when clear, the prefix holds exactly `k` rows of a larger answer and
/// only limits ≤ k are servable. Maintenance keeps the prefix aligned with
/// the answer graph under the same [`EdgeDelta`]:
///
/// * **removals** only delete prefix rows whose pattern bindings lost an AG
///   edge (revalidation is exact: a tuple is an answer iff every pattern's
///   binding is an answer edge). If a truncated prefix underflows below
///   `k`, rows that were beyond the horizon may now belong — one bounded
///   re-enumeration *refills* it;
/// * **insertions** only add rows that pass through an inserted AG edge, so
///   candidates are enumerated from just those seeds
///   ([`SeedEnumerator`]) and merge-inserted into the sorted prefix;
/// * when a pass's churn exceeds a threshold, maintenance *falls back* to
///   one full re-enumeration (counted — the serving layer's
///   `maintain.prefix_fallbacks`).
///
/// Prefixes exist only for queries whose projection covers every variable
/// (then prefix rows are bijective with embeddings and revalidation can
/// resolve every pattern end from a row). Projecting queries fall back to
/// full-defactorize-then-truncate serving.
#[derive(Debug, Clone)]
struct TopKPrefix {
    /// Retention capacity: how many canonical-first rows are kept.
    k: usize,
    /// Projection arity (columns per row); > 0 by construction.
    arity: usize,
    /// The projection schema, in projection order (the served schema).
    schema: Vec<Var>,
    /// Per-pattern `(subject, object)` readout from a prefix row.
    ends: Vec<(PrefixEnd, PrefixEnd)>,
    /// `row_count` rows × `arity` columns, canonically sorted, flat.
    rows: Vec<NodeId>,
    row_count: usize,
    /// Low-water mark: the prefix holds the *entire* answer.
    exhaustive: bool,
    /// Whether the prefix has been enumerated since construction (or since
    /// an enumeration error marked it cold). A cold prefix serves nothing.
    filled: bool,
}

impl TopKPrefix {
    /// A cold prefix for `query` with capacity `k`; `None` when the query
    /// shape does not support prefix maintenance (`k == 0`, no variables,
    /// or a projection that drops variables).
    fn new(query: &ConjunctiveQuery, k: usize) -> Option<TopKPrefix> {
        if k == 0 || query.num_vars() == 0 {
            return None;
        }
        let schema: Vec<Var> = query.projection().to_vec();
        if !query.variables().all(|v| schema.contains(&v)) {
            return None;
        }
        let col = |term: Term| match term {
            Term::Const(c) => PrefixEnd::Const(c),
            Term::Var(v) => PrefixEnd::Col(
                schema
                    .iter()
                    .position(|&s| s == v)
                    .expect("projection covers every variable"),
            ),
        };
        let ends = query
            .patterns()
            .iter()
            .map(|pat| (col(pat.subject), col(pat.object)))
            .collect();
        Some(TopKPrefix {
            k,
            arity: schema.len(),
            schema,
            ends,
            rows: Vec::new(),
            row_count: 0,
            exhaustive: false,
            filled: false,
        })
    }

    /// Drops every row whose pattern bindings are no longer all answer
    /// edges. Exact: a tuple is an embedding iff each pattern's `(s, o)`
    /// readout is in that pattern's answer-edge set.
    fn revalidate(&mut self, ag: &AnswerGraph) {
        let arity = self.arity;
        let mut kept_rows: Vec<NodeId> = Vec::with_capacity(self.rows.len());
        let mut kept = 0usize;
        'rows: for i in 0..self.row_count {
            let row = &self.rows[i * arity..(i + 1) * arity];
            for (q, &(se, oe)) in self.ends.iter().enumerate() {
                if !ag.pattern(q).contains(se.resolve(row), oe.resolve(row)) {
                    continue 'rows;
                }
            }
            kept_rows.extend_from_slice(row);
            kept += 1;
        }
        self.rows = kept_rows;
        self.row_count = kept;
    }

    /// Merge-inserts canonically sorted, deduplicated `candidates` (flat,
    /// same arity) into the sorted prefix, deduplicating against existing
    /// rows (a remove-then-revive batch re-discovers surviving rows), then
    /// truncates to `k`. Truncation clears `exhaustive`.
    fn merge_rows(&mut self, candidates: &[NodeId]) {
        let arity = self.arity;
        let cand_count = candidates.len() / arity;
        let mut merged: Vec<NodeId> = Vec::with_capacity(self.rows.len() + candidates.len());
        let mut merged_count = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while merged_count < self.k && (i < self.row_count || j < cand_count) {
            let take_existing = if i >= self.row_count {
                false
            } else if j >= cand_count {
                true
            } else {
                let a = &self.rows[i * arity..(i + 1) * arity];
                let b = &candidates[j * arity..(j + 1) * arity];
                match a.cmp(b) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => {
                        j += 1; // duplicate candidate: keep the existing row
                        true
                    }
                }
            };
            if take_existing {
                merged.extend_from_slice(&self.rows[i * arity..(i + 1) * arity]);
                i += 1;
            } else {
                merged.extend_from_slice(&candidates[j * arity..(j + 1) * arity]);
                j += 1;
            }
            merged_count += 1;
        }
        // Anything left beyond k rows fell off the horizon.
        if i < self.row_count || j < cand_count {
            self.exhaustive = false;
        }
        self.rows = merged;
        self.row_count = merged_count;
    }
}

/// The per-pattern-edge provenance index: which query patterns a data edge
/// of a given predicate can bind. Built once per query; `O(log P)` lookup.
#[derive(Debug, Clone)]
pub struct ProvenanceIndex {
    /// `(predicate, pattern indexes)` sorted by predicate.
    by_predicate: Vec<(PredId, Vec<usize>)>,
}

impl ProvenanceIndex {
    /// Builds the index for `query`.
    pub fn new(query: &ConjunctiveQuery) -> Self {
        let mut by_predicate: Vec<(PredId, Vec<usize>)> = Vec::new();
        for (idx, pat) in query.patterns().iter().enumerate() {
            match by_predicate.binary_search_by_key(&pat.predicate, |&(p, _)| p) {
                Ok(at) => by_predicate[at].1.push(idx),
                Err(at) => by_predicate.insert(at, (pat.predicate, vec![idx])),
            }
        }
        ProvenanceIndex { by_predicate }
    }

    /// The pattern indexes a data edge with predicate `p` can bind
    /// (ascending; empty when the query never mentions `p`).
    pub fn patterns_for(&self, p: PredId) -> &[usize] {
        match self.by_predicate.binary_search_by_key(&p, |&(q, _)| q) {
            Ok(at) => &self.by_predicate[at].1,
            Err(_) => &[],
        }
    }

    /// The distinct predicates the query touches, ascending.
    pub fn predicates(&self) -> impl Iterator<Item = PredId> + '_ {
        self.by_predicate.iter().map(|&(p, _)| p)
    }
}

/// Whether `pattern`'s constant ends (and self-loop shape) admit the data
/// edge `(s, o)`. Shared with the sharded merge path ([`crate::sharded`]),
/// whose per-shard candidate scans must admit exactly what maintenance
/// re-binding does.
pub(crate) fn ends_match(pattern: &TriplePattern, s: NodeId, o: NodeId) -> bool {
    let subject_ok = match pattern.subject {
        Term::Const(c) => c == s,
        Term::Var(_) => true,
    };
    let object_ok = match pattern.object {
        Term::Const(c) => c == o,
        Term::Var(_) => true,
    };
    let self_loop = matches!(
        (pattern.subject, pattern.object),
        (Term::Var(a), Term::Var(b)) if a == b
    );
    subject_ok && object_ok && (!self_loop || s == o)
}

/// A retained, versioned, incrementally-maintainable evaluation of one
/// query: the factorized half of a [`crate::QueryOutput`], promoted to a
/// first-class artifact (see the module docs).
#[derive(Debug, Clone)]
pub struct MaterializedQuery {
    query: ConjunctiveQuery,
    plan: Plan,
    cyclic: bool,
    maintainable: bool,
    answer_graph: AnswerGraph,
    provenance: ProvenanceIndex,
    generation: GenerationStats,
    edge_burnback: EdgeBurnbackStats,
    options: EvalOptions,
    epoch: u64,
    info: MaintenanceInfo,
    prefix: Option<TopKPrefix>,
}

impl MaterializedQuery {
    /// Assembles a view from a finished phase-one run. Called by the engine
    /// (`WireframeEngine::execute_with_plan` / `materialize`).
    pub(crate) fn from_phase_one(
        query: ConjunctiveQuery,
        plan: Plan,
        cyclic: bool,
        answer_graph: AnswerGraph,
        generation: GenerationStats,
        edge_burnback: EdgeBurnbackStats,
        options: EvalOptions,
    ) -> Self {
        // Edge burnback prunes cyclic answer graphs below the node-burnback
        // fixpoint that incremental maintenance reproduces; such views must
        // not be maintained (serving layers fall back to eviction).
        let maintainable = !(options.edge_burnback && cyclic);
        let provenance = ProvenanceIndex::new(&query);
        // A configured limit doubles as the prefix retention capacity; the
        // prefix starts cold (no enumeration paid until someone asks for
        // bounded rows, or the first maintenance pass warms it).
        let prefix = TopKPrefix::new(&query, options.limit);
        MaterializedQuery {
            query,
            plan,
            cyclic,
            maintainable,
            answer_graph,
            provenance,
            generation,
            edge_burnback,
            options,
            epoch: 0,
            info: MaintenanceInfo::default(),
            prefix,
        }
    }

    /// The query this view answers.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The phase-one plan the view was generated with.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The maintained answer graph.
    pub fn answer_graph(&self) -> &AnswerGraph {
        &self.answer_graph
    }

    /// Whether the query graph is cyclic.
    pub fn cyclic(&self) -> bool {
        self.cyclic
    }

    /// Whether this view may be incrementally maintained. `false` when edge
    /// burnback pruned the answer graph below the node-burnback fixpoint
    /// (cyclic query under [`EvalOptions::edge_burnback`]); such views must
    /// be discarded on mutation instead.
    pub fn is_maintainable(&self) -> bool {
        self.maintainable
    }

    /// The provenance index mapping predicates to bindable patterns.
    pub fn provenance(&self) -> &ProvenanceIndex {
        &self.provenance
    }

    /// Phase-one statistics of the original materialization.
    pub fn generation(&self) -> &GenerationStats {
        &self.generation
    }

    /// Edge-burnback statistics of the original materialization (all zero
    /// when it did not run).
    pub fn edge_burnback(&self) -> &EdgeBurnbackStats {
        &self.edge_burnback
    }

    /// The mutation epoch this view is maintained to (`0` at
    /// materialization; serving layers stamp their epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stamps the epoch of the graph version the view reflects (used by the
    /// serving layer at materialization time; `maintain` stamps later ones).
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.info.maintained_epoch = epoch;
    }

    /// Cumulative maintenance history.
    pub fn maintenance_info(&self) -> MaintenanceInfo {
        self.info
    }

    /// Folds one mutation batch's net `delta` into the retained answer
    /// graph and stamps `epoch`. `graph` must be the **post-mutation** graph
    /// version (maintenance pulls incident edges from it when revived nodes
    /// re-enter the answer graph). Work is `O(|delta| + |affected region|)`;
    /// the result is identical to re-running phase one from scratch on
    /// `graph` (the equivalence property tests pin this on all storage
    /// backends).
    pub fn maintain(&mut self, graph: &Graph, delta: &EdgeDelta, epoch: u64) -> MaintenanceStats {
        debug_assert!(self.maintainable, "unmaintainable views must be evicted");
        let start = Instant::now();
        let mut stats = MaintenanceStats::default();

        // While a warm top-k prefix is retained, record every answer-graph
        // edge this pass inserts: an inserted edge is the only way a new
        // embedding can appear, so these are the seeds the prefix merge
        // enumerates through afterwards.
        let track_added = self.prefix.as_ref().is_some_and(|p| p.filled);
        let mut added: Vec<(usize, NodeId, NodeId)> = Vec::new();

        // The provenance index drives both phases: only the delta's slices
        // for predicates the query actually mentions are ever visited
        // (`EdgeDelta::removed_for` / `inserted_for` are binary-searched
        // ranges of the predicate-major batch).
        let touched: Vec<PredId> = self.provenance.predicates().collect();

        // Phase A — tombstones: drop removed data edges from every pattern
        // they were bound to; endpoints left without support in a pattern
        // become burnback suspects.
        let mut suspects: Vec<(Var, NodeId)> = Vec::new();
        for &p in &touched {
            for t in delta.removed_for(p) {
                for &q in self.provenance.patterns_for(p) {
                    let pat = self.query.patterns()[q];
                    if !ends_match(&pat, t.subject, t.object) {
                        continue;
                    }
                    if self.answer_graph.pattern_mut(q).remove(t.subject, t.object) {
                        stats.candidate_removals += 1;
                        stats.edges_removed += 1;
                        if let Some(v) = pat.subject.as_var() {
                            if !self.answer_graph.pattern(q).has_subject(t.subject) {
                                suspects.push((v, t.subject));
                            }
                        }
                        if let Some(w) = pat.object.as_var() {
                            if !self.answer_graph.pattern(q).has_object(t.object) {
                                suspects.push((w, t.object));
                            }
                        }
                    }
                }
            }
        }

        // Phase B — insertions: bind each inserted data edge to the patterns
        // it matches; endpoints not currently viable are revived
        // optimistically and queued for closure.
        let mut revived: Vec<(Var, NodeId)> = Vec::new();
        let mut queue: VecDeque<(Var, NodeId)> = VecDeque::new();
        let revive = |ag: &mut AnswerGraph,
                      v: Var,
                      n: NodeId,
                      revived: &mut Vec<(Var, NodeId)>,
                      queue: &mut VecDeque<(Var, NodeId)>| {
            if ag.node_set_mut(v).insert(n) {
                ag.mark_bound(v);
                revived.push((v, n));
                queue.push_back((v, n));
            }
        };
        for &p in &touched {
            for t in delta.inserted_for(p) {
                for &q in self.provenance.patterns_for(p) {
                    let pat = self.query.patterns()[q];
                    if !ends_match(&pat, t.subject, t.object) {
                        continue;
                    }
                    if self.answer_graph.pattern_mut(q).insert(t.subject, t.object) {
                        stats.candidate_inserts += 1;
                        stats.edges_added += 1;
                        if track_added {
                            added.push((q, t.subject, t.object));
                        }
                        for (term, n) in [(pat.subject, t.subject), (pat.object, t.object)] {
                            if let Some(v) = term.as_var() {
                                if !self.answer_graph.node_set(v).contains(&n) {
                                    revive(&mut self.answer_graph, v, n, &mut revived, &mut queue);
                                }
                            }
                        }
                    }
                }
            }
        }

        // Closure: a revived node must carry *all* of its incident data
        // edges in every pattern it participates in (the fixpoint is
        // maximal), which can revive further nodes in turn. The burnback
        // pass below removes whatever optimism does not survive.
        while let Some((v, n)) = queue.pop_front() {
            for (q, pat) in self.query.patterns().iter().enumerate() {
                let p = pat.predicate;
                let self_loop = matches!(
                    (pat.subject, pat.object),
                    (Term::Var(a), Term::Var(b)) if a == b
                );
                if pat.subject.as_var() == Some(v) {
                    if self_loop {
                        if graph.has_triple(n, p, n)
                            && self.answer_graph.pattern_mut(q).insert(n, n)
                        {
                            stats.edges_added += 1;
                            if track_added {
                                added.push((q, n, n));
                            }
                        }
                    } else {
                        let objects = graph.objects_of(p, n).to_vec();
                        for o in objects {
                            match pat.object {
                                Term::Const(c) => {
                                    if o == c && self.answer_graph.pattern_mut(q).insert(n, o) {
                                        stats.edges_added += 1;
                                        if track_added {
                                            added.push((q, n, o));
                                        }
                                    }
                                }
                                Term::Var(w) => {
                                    if !self.answer_graph.node_set(w).contains(&o) {
                                        revive(
                                            &mut self.answer_graph,
                                            w,
                                            o,
                                            &mut revived,
                                            &mut queue,
                                        );
                                    }
                                    if self.answer_graph.pattern_mut(q).insert(n, o) {
                                        stats.edges_added += 1;
                                        if track_added {
                                            added.push((q, n, o));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                if pat.object.as_var() == Some(v) && !self_loop {
                    let subjects = graph.subjects_of(p, n).to_vec();
                    for s in subjects {
                        match pat.subject {
                            Term::Const(c) => {
                                if s == c && self.answer_graph.pattern_mut(q).insert(s, n) {
                                    stats.edges_added += 1;
                                    if track_added {
                                        added.push((q, s, n));
                                    }
                                }
                            }
                            Term::Var(w) => {
                                if !self.answer_graph.node_set(w).contains(&s) {
                                    revive(&mut self.answer_graph, w, s, &mut revived, &mut queue);
                                }
                                if self.answer_graph.pattern_mut(q).insert(s, n) {
                                    stats.edges_added += 1;
                                    if track_added {
                                        added.push((q, s, n));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        stats.nodes_added += revived.len();

        // Phase C — local burnback from the frontier: every suspect and
        // every revived node is re-checked for support in *all* its incident
        // patterns (an insertion may have restored support a tombstone took
        // away, so the check runs only after both phases). Failures seed the
        // ordinary cascading node burnback.
        suspects.sort_unstable_by_key(|&(v, n)| (v.index(), n));
        suspects.dedup();
        stats.frontier_nodes = suspects.len() + revived.len();
        let mut to_burn: Vec<(Var, NodeId)> = Vec::new();
        for &(v, n) in suspects.iter().chain(revived.iter()) {
            if !self.answer_graph.node_set(v).contains(&n) {
                continue;
            }
            if !self.has_full_support(v, n) {
                to_burn.push((v, n));
            }
        }
        let mut edges_burned = 0usize;
        let mut nodes_burned = 0usize;
        burn_nodes(
            &self.query,
            &mut self.answer_graph,
            to_burn,
            &mut edges_burned,
            &mut nodes_burned,
        );
        stats.edges_removed += edges_burned;
        stats.nodes_removed += nodes_burned;

        // Phase D — prefix upkeep: keep the retained top-k prefix aligned
        // with the answer graph the pass just maintained.
        self.update_prefix(&added, &mut stats);

        self.epoch = epoch;
        self.info.maintained_epoch = epoch;
        self.info.passes += 1;
        self.info.frontier_nodes += stats.frontier_nodes as u64;
        self.info.maintenance_us += start.elapsed().as_micros() as u64;
        stats
    }

    /// Phase D of [`MaterializedQuery::maintain`]: brings the retained
    /// top-k prefix (when one exists) up to date with the just-maintained
    /// answer graph. `added` is the pass's surviving-candidate seed list
    /// (only collected while the prefix is warm). No-op passes leave a cold
    /// prefix cold and a warm prefix untouched.
    fn update_prefix(&mut self, added: &[(usize, NodeId, NodeId)], stats: &mut MaintenanceStats) {
        let Some(mut prefix) = self.prefix.take() else {
            return;
        };
        let touched = stats.candidate_inserts
            + stats.candidate_removals
            + stats.edges_added
            + stats.edges_removed
            + stats.nodes_added
            + stats.nodes_removed
            > 0;
        if touched {
            let churn = stats.edges_added + stats.edges_removed;
            let fallback_at = (self.answer_graph.total_edges() / 4).max(PREFIX_FALLBACK_MIN_CHURN);
            if !prefix.filled {
                // A cold prefix warms on its first effective pass, so later
                // passes (and the next bounded read) are O(k).
                stats.prefix_refills += 1;
                self.recompute_prefix(&mut prefix);
            } else if churn > fallback_at {
                stats.prefix_fallbacks += 1;
                self.recompute_prefix(&mut prefix);
            } else {
                prefix.revalidate(&self.answer_graph);
                // Underflow must be checked BEFORE merging candidates: a
                // truncated prefix that lost rows may owe rows from beyond
                // its old horizon, which no inserted-edge seed enumerates.
                if !prefix.exhaustive && prefix.row_count < prefix.k {
                    stats.prefix_refills += 1;
                    self.recompute_prefix(&mut prefix);
                } else if !added.is_empty() {
                    match self.merge_prefix_candidates(&mut prefix, added) {
                        Ok(PrefixMerge::Merged) => {}
                        Ok(PrefixMerge::Overflow) => {
                            stats.prefix_fallbacks += 1;
                            self.recompute_prefix(&mut prefix);
                        }
                        Err(_) => {
                            // Enumeration failed; serve cold (full path)
                            // until a later pass or prime re-warms it.
                            prefix.filled = false;
                            prefix.rows.clear();
                            prefix.row_count = 0;
                        }
                    }
                }
            }
        }
        stats.prefix_rows = if prefix.filled { prefix.row_count } else { 0 };
        self.prefix = Some(prefix);
    }

    /// Re-enumerates the prefix from a full defactorization of the current
    /// answer graph (the refill / fallback path). On error the prefix goes
    /// cold instead of serving stale rows.
    fn recompute_prefix(&self, prefix: &mut TopKPrefix) {
        match self.defactorize() {
            Ok((full, _)) => {
                let total = full.len();
                let cut = full.canonical_prefix(prefix.k);
                prefix.rows = cut.flat_data().to_vec();
                prefix.row_count = cut.len();
                prefix.exhaustive = total <= prefix.k;
                prefix.filled = true;
            }
            Err(_) => {
                prefix.rows.clear();
                prefix.row_count = 0;
                prefix.exhaustive = false;
                prefix.filled = false;
            }
        }
    }

    /// Enumerates the embeddings reachable through this pass's inserted
    /// answer edges (only rows using an inserted edge can be new) and
    /// merge-inserts them into the sorted prefix. Returns
    /// [`PrefixMerge::Overflow`] when the candidate volume makes one full
    /// re-enumeration the cheaper move.
    fn merge_prefix_candidates(
        &self,
        prefix: &mut TopKPrefix,
        added: &[(usize, NodeId, NodeId)],
    ) -> Result<PrefixMerge, EngineError> {
        // Only seeds that survived burnback can carry answer rows.
        let mut live: Vec<(usize, NodeId, NodeId)> = added
            .iter()
            .copied()
            .filter(|&(q, s, o)| self.answer_graph.pattern(q).contains(s, o))
            .collect();
        live.sort_unstable();
        live.dedup();
        if live.is_empty() {
            return Ok(PrefixMerge::Merged);
        }
        let cap = (4 * prefix.k).max(PREFIX_FALLBACK_MIN_CHURN);
        let seeds = SeedEnumerator::new(&self.query, &self.answer_graph);
        let mut candidates: Vec<NodeId> = Vec::new();
        let mut candidate_rows = 0usize;
        for &(q, s, o) in &live {
            let through = seeds.rows_through(&self.query, q, s, o)?;
            let through = through.into_projected_set(&self.query).ok_or_else(|| {
                EngineError::Internal(
                    "projection referenced a variable missing from the result".into(),
                )
            })?;
            debug_assert_eq!(through.schema(), &prefix.schema[..]);
            candidate_rows += through.len();
            candidates.extend_from_slice(through.flat_data());
            if candidate_rows > cap {
                return Ok(PrefixMerge::Overflow);
            }
        }
        // Canonically sort + dedup (one row can thread several seeds).
        let sorted =
            EmbeddingSet::from_flat_rows(prefix.schema.clone(), candidates, candidate_rows)
                .canonical_prefix(candidate_rows);
        let mut flat: Vec<NodeId> = Vec::with_capacity(sorted.flat_data().len());
        let mut last: Option<&[NodeId]> = None;
        for row in sorted.rows() {
            if last == Some(row) {
                continue;
            }
            flat.extend_from_slice(row);
            last = Some(row);
        }
        prefix.merge_rows(&flat);
        Ok(PrefixMerge::Merged)
    }

    /// Ensures a warm top-k prefix with capacity at least `limit`, paying
    /// one enumeration when the prefix is cold or too small. Returns
    /// whether a warm prefix is retained afterwards (`false` when the query
    /// shape does not support prefixes). `limit == 0` never warms.
    pub fn prime_prefix(&mut self, limit: usize) -> bool {
        if limit == 0 {
            return self.prefix.as_ref().is_some_and(|p| p.filled);
        }
        let mut prefix = match self.prefix.take() {
            Some(p) => p,
            None => match TopKPrefix::new(&self.query, limit) {
                Some(p) => p,
                None => return false,
            },
        };
        if prefix.k < limit {
            prefix.k = limit;
            prefix.filled = false;
        }
        if !prefix.filled {
            self.recompute_prefix(&mut prefix);
        }
        let warm = prefix.filled;
        self.prefix = Some(prefix);
        warm
    }

    /// Rows currently retained in the (warm) top-k prefix.
    pub fn prefix_rows(&self) -> usize {
        self.prefix
            .as_ref()
            .filter(|p| p.filled)
            .map_or(0, |p| p.row_count)
    }

    /// Whether a bounded evaluation would answer this `limit` straight
    /// from the warm prefix. `false` when the prefix is cold,
    /// `limit > k`, or a truncated prefix holds fewer than `limit` rows.
    pub fn can_prefix_serve(&self, limit: usize) -> bool {
        self.prefix.as_ref().is_some_and(|p| {
            p.filled && limit > 0 && limit <= p.k && (p.exhaustive || p.row_count >= limit)
        })
    }

    /// Serves the first `limit` rows straight out of the warm prefix in
    /// `O(limit)` — no defactorization. `None` when the prefix cannot
    /// answer this limit (see [`MaterializedQuery::can_prefix_serve`]).
    fn serve_from_prefix(&self, limit: usize) -> Option<Evaluation> {
        if !self.can_prefix_serve(limit) {
            return None;
        }
        let p = self.prefix.as_ref()?;
        let t = Instant::now();
        let keep = limit.min(p.row_count);
        let embeddings =
            EmbeddingSet::from_flat_rows(p.schema.clone(), p.rows[..keep * p.arity].to_vec(), keep);
        let factorized = self.factorized();
        let metrics = factorized.metrics(0);
        let truncated = !p.exhaustive || p.row_count > limit;
        let explain = self.options.explain.then(|| {
            format!(
                "maintained view (epoch {}): served {keep} row(s) from the retained top-{} prefix in O(k) — no defactorization\n",
                self.info.maintained_epoch, p.k
            )
        });
        Some(Evaluation {
            engine: "wireframe".to_owned(),
            epochs: Vec::new(),
            embeddings,
            timings: Timings {
                defactorization: t.elapsed(),
                ..Timings::default()
            },
            cyclic: self.cyclic,
            factorized: Some(factorized),
            metrics,
            explain,
            maintenance: Some(self.info),
            limited: Some(LimitInfo {
                limit,
                truncated,
                prefix_served: true,
                full_total: p.exhaustive.then_some(p.row_count),
            }),
        })
    }

    /// Whether node `n` of variable `v` has at least one supporting edge in
    /// every pattern `v` participates in (the node-burnback invariant).
    fn has_full_support(&self, v: Var, n: NodeId) -> bool {
        for (q, pat) in self.query.patterns().iter().enumerate() {
            if pat.subject.as_var() == Some(v) && !self.answer_graph.pattern(q).has_subject(n) {
                return false;
            }
            if pat.object.as_var() == Some(v) && !self.answer_graph.pattern(q).has_object(n) {
                return false;
            }
        }
        true
    }

    /// Phase two on demand: defactorizes the *current* answer graph into
    /// projected embeddings. This is the lazy half of the maintenance
    /// design — the embeddings are never retained, only re-derived.
    pub fn defactorize(&self) -> Result<(EmbeddingSet, DefactorizationStats), EngineError> {
        let (full, stats) = if self.options.threads == 1 {
            let order = embedding_plan(&self.query, &self.answer_graph);
            defactorize(&self.query, &self.answer_graph, &order)?
        } else {
            defactorize_parallel(
                &self.query,
                &self.answer_graph,
                &ParallelOptions::for_threads(self.options.threads),
            )?
        };
        let embeddings = full.into_projected_set(&self.query).ok_or_else(|| {
            EngineError::Internal("projection referenced a variable missing from the result".into())
        })?;
        Ok((embeddings, stats))
    }

    /// Renders a compact explanation of a view-served evaluation.
    fn explain_view(&self, defact: &DefactorizationStats, embeddings: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "maintained view (epoch {}, {} maintenance pass(es), {} frontier nodes, {} µs):",
            self.info.maintained_epoch,
            self.info.passes,
            self.info.frontier_nodes,
            self.info.maintenance_us
        );
        let _ = writeln!(
            out,
            "  plan order {:?} ({:?})   |AG| = {} answer edges across {} query edges{}",
            self.plan.order,
            self.plan.planner,
            self.answer_graph.total_edges(),
            self.query.num_patterns(),
            if self.cyclic { "  (cyclic query)" } else { "" }
        );
        let _ = writeln!(
            out,
            "phase 2 (defactorization, on demand):\n  join order {:?}   peak intermediate {}   embeddings {}",
            defact.join_order, defact.peak_intermediate, embeddings
        );
        out
    }

    /// The uniform factorized artifacts of the maintained state.
    fn factorized(&self) -> Factorized {
        Factorized {
            answer_graph_edges: self.answer_graph.total_edges(),
            plan_order: self.plan.order.clone(),
            edge_walks: self.generation.edge_walks,
            edges_burned: self.generation.edges_burned,
            nodes_burned: self.generation.nodes_burned,
            edge_burnback_removed: self.edge_burnback.edges_removed,
        }
    }
}

impl MaintainedView for MaterializedQuery {
    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn set_epoch(&mut self, epoch: u64) {
        MaterializedQuery::set_epoch(self, epoch);
    }

    fn maintain(&mut self, graph: &Graph, delta: &EdgeDelta, epoch: u64) -> MaintenanceStats {
        MaterializedQuery::maintain(self, graph, delta, epoch)
    }

    fn evaluate(&self) -> Result<Evaluation, WireframeError> {
        let t = Instant::now();
        let (embeddings, defact) = self.defactorize()?;
        let timings = Timings {
            defactorization: t.elapsed(),
            defactorization_cpu: defact.cpu,
            ..Timings::default()
        };
        let factorized = self.factorized();
        let metrics = factorized.metrics(defact.peak_intermediate as u64);
        let explain = self
            .options
            .explain
            .then(|| self.explain_view(&defact, embeddings.len()));
        Ok(Evaluation {
            engine: "wireframe".to_owned(),
            epochs: Vec::new(),
            embeddings,
            timings,
            cyclic: self.cyclic,
            factorized: Some(factorized),
            metrics,
            explain,
            maintenance: Some(self.info),
            limited: None,
        })
    }

    fn evaluate_limited(&self, limit: usize) -> Result<Evaluation, WireframeError> {
        if limit == 0 {
            return self.evaluate();
        }
        if let Some(ev) = self.serve_from_prefix(limit) {
            return Ok(ev);
        }
        let mut ev = self.evaluate()?;
        ev.apply_limit(limit);
        Ok(ev)
    }

    fn prime_prefix(&mut self, limit: usize) -> bool {
        MaterializedQuery::prime_prefix(self, limit)
    }

    fn prefix_rows(&self) -> usize {
        MaterializedQuery::prefix_rows(self)
    }

    fn can_prefix_serve(&self, limit: usize) -> bool {
        MaterializedQuery::can_prefix_serve(self, limit)
    }

    fn info(&self) -> MaintenanceInfo {
        self.info
    }

    fn clone_view(&self) -> Box<dyn MaintainedView> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WireframeEngine;
    use wireframe_graph::{GraphBuilder, Mutation, StoreKind};
    use wireframe_query::parse_query;

    fn figure1_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "5");
        b.add("2", "A", "5");
        b.add("3", "A", "5");
        b.add("4", "A", "6");
        b.add("5", "B", "9");
        b.add("7", "B", "10");
        for o in ["12", "13", "14", "15"] {
            b.add("9", "C", o);
        }
        b.add("11", "C", "15");
        b.build_with_store(StoreKind::Delta)
    }

    fn chain_query(g: &Graph) -> ConjunctiveQuery {
        parse_query(
            "SELECT * WHERE { ?w :A ?x . ?x :B ?y . ?y :C ?z . }",
            g.dictionary(),
        )
        .unwrap()
    }

    /// Maintained state must equal a fresh evaluation: same AG edges per
    /// pattern, same node sets, same embeddings.
    fn assert_matches_fresh(view: &MaterializedQuery, graph: &Graph, context: &str) {
        let fresh = WireframeEngine::new(graph).execute(view.query()).unwrap();
        for q in 0..view.query().num_patterns() {
            let mut ours: Vec<_> = view.answer_graph().pattern(q).iter().collect();
            let mut theirs: Vec<_> = fresh.answer_graph().pattern(q).iter().collect();
            ours.sort_unstable();
            theirs.sort_unstable();
            assert_eq!(ours, theirs, "{context}: pattern {q} edges differ");
        }
        for v in view.query().variables() {
            assert_eq!(
                view.answer_graph().node_set(v).to_sorted_vec(),
                fresh.answer_graph().node_set(v).to_sorted_vec(),
                "{context}: node set of var {v:?} differs"
            );
        }
        let (ours, _) = view.defactorize().unwrap();
        assert!(
            ours.same_answer(fresh.embeddings()),
            "{context}: embeddings differ"
        );
    }

    fn materialize(graph: &Graph, query: &ConjunctiveQuery) -> MaterializedQuery {
        WireframeEngine::new(graph)
            .execute(query)
            .unwrap()
            .into_view()
    }

    #[test]
    fn provenance_index_maps_predicates_to_patterns() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let idx = ProvenanceIndex::new(&q);
        let a = g.dictionary().predicate_id("A").unwrap();
        let c = g.dictionary().predicate_id("C").unwrap();
        assert_eq!(idx.patterns_for(a), &[0]);
        assert_eq!(idx.patterns_for(c), &[2]);
        assert_eq!(idx.patterns_for(PredId(99)), &[] as &[usize]);
        assert_eq!(idx.predicates().count(), 3);
    }

    #[test]
    fn tombstone_removes_edge_and_cascades() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let mut view = materialize(&g, &q);
        assert_eq!(view.answer_graph().total_edges(), 8);

        // Removing the only B edge empties the whole answer.
        let (next, outcome) = g.apply(&Mutation::new().remove("5", "B", "9"));
        let stats = view.maintain(&next, &outcome.delta, 1);
        assert_eq!(stats.candidate_removals, 1);
        assert!(stats.frontier_nodes >= 2, "both endpoints are suspects");
        assert_eq!(view.answer_graph().total_edges(), 0);
        assert_eq!(view.epoch(), 1);
        assert_matches_fresh(&view, &next, "after emptying tombstone");
    }

    #[test]
    fn insertion_revives_dead_regions() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let mut view = materialize(&g, &q);

        // 7 -B-> 10 died because 10 has no C edge; inserting 10 -C-> 12
        // optimistically revives 10 (for ?y) and pulls its incident B edge
        // back in — but ?x = 7 has no A edge, so the burnback pass removes
        // the whole optimistic chain again and |AG| stays at 8.
        let (next, outcome) = g.apply(&Mutation::new().insert("10", "C", "12"));
        let stats = view.maintain(&next, &outcome.delta, 1);
        assert_eq!(stats.candidate_inserts, 1);
        assert!(stats.nodes_added >= 1, "node 10 is revived for ?y");
        assert!(stats.nodes_removed >= 1, "…and burned back out");
        assert_matches_fresh(&view, &next, "after reviving insert");
        assert_eq!(view.answer_graph().total_edges(), 8);

        // An insert that genuinely extends the answer: 9 -C-> 16 adds one
        // viable C edge (9 is the live ?y hub).
        let (next2, outcome2) = next.apply(&Mutation::new().insert("9", "C", "16"));
        let stats = view.maintain(&next2, &outcome2.delta, 2);
        assert_eq!(stats.candidate_inserts, 1);
        assert_eq!(view.answer_graph().total_edges(), 9);
        assert_matches_fresh(&view, &next2, "after extending insert");
    }

    #[test]
    fn mixed_batches_and_noop_deltas_converge() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let mut view = materialize(&g, &q);

        // A batch that both grows and shrinks: add a full new chain, remove
        // one existing A edge.
        let mutation = Mutation::new()
            .insert("20", "A", "21")
            .insert("21", "B", "22")
            .insert("22", "C", "23")
            .remove("1", "A", "5");
        let (next, outcome) = g.apply(&mutation);
        let stats = view.maintain(&next, &outcome.delta, 1);
        assert_eq!(stats.candidate_inserts, 3);
        assert_eq!(stats.candidate_removals, 1);
        assert_matches_fresh(&view, &next, "after mixed batch");

        // A delta over predicates the query never touches is free.
        let (next2, outcome2) = next.apply(&Mutation::new().insert("1", "Z", "2"));
        let stats = view.maintain(&next2, &outcome2.delta, 2);
        assert_eq!(stats, MaintenanceStats::default(), "zero work performed");
        assert_eq!(view.epoch(), 2);
        assert_matches_fresh(&view, &next2, "after foreign-predicate batch");
    }

    #[test]
    fn constants_and_self_loops_are_respected() {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "1");
        b.add("1", "A", "2");
        b.add("2", "A", "2");
        let g = b.build_with_store(StoreKind::Delta);
        let q = parse_query("SELECT * WHERE { ?x :A ?x . }", g.dictionary()).unwrap();
        let mut view = materialize(&g, &q);
        assert_eq!(view.answer_graph().total_edges(), 2);

        let (next, outcome) = g.apply(
            &Mutation::new()
                .insert("3", "A", "3")
                .insert("3", "A", "4")
                .remove("1", "A", "1"),
        );
        view.maintain(&next, &outcome.delta, 1);
        assert_eq!(view.answer_graph().total_edges(), 2, "loops only");
        assert_matches_fresh(&view, &next, "self-loop maintenance");

        // Constant-end patterns only admit matching edges.
        let qc = parse_query("SELECT ?w WHERE { ?w :A 2 . }", g.dictionary()).unwrap();
        let mut view = materialize(&next, &qc);
        let (next2, outcome2) =
            next.apply(&Mutation::new().insert("5", "A", "2").insert("5", "A", "9"));
        let stats = view.maintain(&next2, &outcome2.delta, 1);
        assert_eq!(stats.candidate_inserts, 1, "only the edge into the const");
        assert_matches_fresh(&view, &next2, "const-end maintenance");
    }

    #[test]
    fn view_evaluate_serves_uniform_evaluations() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let view = materialize(&g, &q);
        let ev = MaintainedView::evaluate(&view).unwrap();
        assert_eq!(ev.engine, "wireframe");
        assert_eq!(ev.embedding_count(), 12);
        assert_eq!(ev.answer_graph_size(), Some(8));
        let info = ev.maintenance.expect("view-served evaluations carry info");
        assert_eq!(info.passes, 0);
        assert!(ev.explain.is_none(), "explain only when requested");
    }

    /// The served prefix must be bit-identical to the canonical first k
    /// rows of a fresh full evaluation.
    fn assert_prefix_matches_fresh(
        view: &MaterializedQuery,
        graph: &Graph,
        limit: usize,
        context: &str,
    ) {
        let ev = view.evaluate_limited(limit).unwrap();
        let info = ev.limited.expect("limited evaluations carry LimitInfo");
        assert!(info.prefix_served, "{context}: expected a prefix serve");
        let fresh = WireframeEngine::new(graph).execute(view.query()).unwrap();
        let expect = fresh.embeddings().canonical_prefix(limit);
        assert_eq!(ev.embeddings.schema(), expect.schema(), "{context}: schema");
        assert_eq!(
            ev.embeddings.flat_data(),
            expect.flat_data(),
            "{context}: prefix rows differ from fresh canonical first-{limit}"
        );
        assert_eq!(
            info.truncated,
            fresh.embeddings().len() > limit,
            "{context}: truncated flag"
        );
    }

    #[test]
    fn prefix_serves_canonical_first_k_without_defactorizing() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let mut view = WireframeEngine::with_options(&g, EvalOptions::default().with_limit(5))
            .execute(&q)
            .unwrap()
            .into_view();
        assert_eq!(view.prefix_rows(), 0, "prefix starts cold");
        assert!(view.prime_prefix(5), "chain query supports prefixes");
        assert_eq!(view.prefix_rows(), 5);
        assert_prefix_matches_fresh(&view, &g, 5, "primed serve");
        assert_prefix_matches_fresh(&view, &g, 3, "limit below k");

        // A limit beyond k cannot be prefix-served: full path, truncated
        // canonically, not marked prefix_served.
        let ev = view.evaluate_limited(7).unwrap();
        let info = ev.limited.unwrap();
        assert!(!info.prefix_served);
        assert_eq!(info.full_total, Some(12));
        let fresh = WireframeEngine::new(&g).execute(&q).unwrap();
        assert_eq!(
            ev.embeddings.flat_data(),
            fresh.embeddings().canonical_prefix(7).flat_data(),
            "fallback path still returns the canonical first 7"
        );

        // With k beyond the whole answer the prefix is exhaustive and any
        // limit (even > row count) is servable.
        assert!(view.prime_prefix(20));
        let ev = view.evaluate_limited(18).unwrap();
        let info = ev.limited.unwrap();
        assert!(info.prefix_served);
        assert!(!info.truncated, "12 rows fit under limit 18");
        assert_eq!(
            info.full_total,
            Some(12),
            "an exhaustive prefix knows the total"
        );
        assert_eq!(ev.embedding_count(), 12);
    }

    #[test]
    fn prefix_is_maintained_under_deltas() {
        let g = figure1_graph();
        let q = chain_query(&g);
        let mut view = materialize(&g, &q);
        assert!(view.prime_prefix(5));

        // Insert-only batch: candidates are enumerated through the new AG
        // edges and merge-inserted — no refill, no fallback.
        let (g1, out1) = g.apply(&Mutation::new().insert("0", "A", "5"));
        let stats = view.maintain(&g1, &out1.delta, 1);
        assert_eq!(stats.prefix_refills, 0, "merge path handles inserts");
        assert_eq!(stats.prefix_fallbacks, 0);
        assert_eq!(stats.prefix_rows, 5);
        assert_prefix_matches_fresh(&view, &g1, 5, "after insert merge");

        // Removal that guts the prefix: w=0 and w=1 rows (8 of the first
        // rows) vanish, the truncated prefix underflows, and a refill
        // re-enumerates from beyond the old horizon.
        let (g2, out2) = g1.apply(&Mutation::new().remove("0", "A", "5").remove("1", "A", "5"));
        let stats = view.maintain(&g2, &out2.delta, 2);
        assert_eq!(stats.prefix_refills, 1, "underflow forces a refill");
        assert_eq!(stats.prefix_fallbacks, 0);
        assert_prefix_matches_fresh(&view, &g2, 5, "after underflow refill");

        // Removal the prefix absorbs: dropping one row of an exhaustive
        // prefix needs no re-enumeration at all.
        assert!(view.prime_prefix(20));
        let (g3, out3) = g2.apply(&Mutation::new().remove("9", "C", "12"));
        let stats = view.maintain(&g3, &out3.delta, 3);
        assert_eq!(stats.prefix_refills, 0, "exhaustive prefix never refills");
        assert_eq!(stats.prefix_fallbacks, 0);
        assert_prefix_matches_fresh(&view, &g3, 20, "after absorbed removal");

        // A churn burst beyond the threshold falls back to one full
        // re-enumeration instead of seeding per-edge joins.
        let mut burst = Mutation::new();
        for i in 0..70 {
            burst = burst.insert("9", "C", &format!("n{i}"));
        }
        let (g4, out4) = g3.apply(&burst);
        let stats = view.maintain(&g4, &out4.delta, 4);
        assert_eq!(
            stats.prefix_fallbacks, 1,
            "70 added edges exceed the threshold"
        );
        assert_prefix_matches_fresh(&view, &g4, 20, "after churn fallback");

        // A foreign-predicate no-op leaves the prefix untouched but still
        // reports its level.
        let (g5, out5) = g4.apply(&Mutation::new().insert("1", "Z", "2"));
        let stats = view.maintain(&g5, &out5.delta, 5);
        assert_eq!(stats.prefix_refills + stats.prefix_fallbacks, 0);
        assert_eq!(stats.prefix_rows, view.prefix_rows());
        assert_prefix_matches_fresh(&view, &g5, 20, "after no-op");
    }

    #[test]
    fn projecting_queries_do_not_retain_prefixes() {
        let g = figure1_graph();
        let q = parse_query(
            "SELECT ?w WHERE { ?w :A ?x . ?x :B ?y . ?y :C ?z . }",
            g.dictionary(),
        )
        .unwrap();
        let mut view = materialize(&g, &q);
        assert!(
            !view.prime_prefix(5),
            "a projection that drops variables cannot maintain a prefix"
        );
        // Bounded reads still work — full path with canonical truncation.
        let ev = view.evaluate_limited(2).unwrap();
        let info = ev.limited.unwrap();
        assert!(!info.prefix_served);
        assert_eq!(ev.embedding_count(), 2);
    }

    #[test]
    fn edge_burnback_views_are_not_maintainable() {
        let mut b = GraphBuilder::new();
        b.add("3", "A", "4");
        b.add("3", "B", "2");
        b.add("4", "C", "1");
        b.add("2", "D", "1");
        let g = b.build();
        let q = parse_query(
            "SELECT * WHERE { ?x :A ?e . ?x :B ?z . ?e :C ?y . ?z :D ?y . }",
            g.dictionary(),
        )
        .unwrap();
        let plain = WireframeEngine::new(&g).execute(&q).unwrap().into_view();
        assert!(plain.cyclic());
        assert!(plain.is_maintainable(), "node burnback alone maintains");
        let burned = WireframeEngine::with_options(&g, EvalOptions::default().with_edge_burnback())
            .execute(&q)
            .unwrap()
            .into_view();
        assert!(!burned.is_maintainable());
    }
}

//! # wireframe-baseline — non-factorized reference engines
//!
//! Two conjunctive-query evaluators that stand in for the external systems of
//! the paper's experiment, so that the comparison isolates the algorithmic
//! difference (factorized vs. standard evaluation) rather than storage or
//! network stacks:
//!
//! * [`RelationalEngine`] — pairwise hash joins over scanned triple-pattern
//!   relations with full intermediate materialization, the strategy of the
//!   paper's PostgreSQL / Virtuoso configurations;
//! * [`SortMergeEngine`] — sort-merge joins over column-shaped scans, the
//!   strategy of the paper's MonetDB configuration;
//! * [`ExplorationEngine`] — depth-first backtracking pattern matching over
//!   adjacency lists, the strategy of the paper's Neo4J configuration.
//!
//! Both produce the same [`EmbeddingSet`](wireframe_query::EmbeddingSet)
//! answers as the Wireframe engine; the cross-engine property tests rely on
//! this to validate all three implementations against each other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api_impl;
mod error;
mod exploration;
mod relational;
mod sortmerge;

pub use error::BaselineError;
pub use exploration::{ExplorationEngine, ExplorationStats};
pub use relational::{RelationalEngine, RelationalStats};
pub use sortmerge::{SortMergeEngine, SortMergeStats};

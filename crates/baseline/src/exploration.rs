//! The graph-exploration baseline: backtracking pattern matching.
//!
//! This engine evaluates a conjunctive query the way a native graph store
//! (the paper's Neo4J configuration) does: depth-first backtracking search
//! that binds one triple pattern at a time by walking the adjacency lists of
//! already-bound nodes. It materializes no intermediate relations but revisits
//! the same data edges once per partial embedding that reaches them — the
//! redundant edge walks the answer-graph approach amortizes away.

use wireframe_graph::{Graph, NodeId};
use wireframe_query::{ConjunctiveQuery, EmbeddingSet, QueryGraph, Term, TriplePattern, Var};

use crate::error::BaselineError;

/// Execution statistics of the exploration engine.
#[derive(Debug, Clone, Default)]
pub struct ExplorationStats {
    /// Pattern order used by the backtracking search.
    pub match_order: Vec<usize>,
    /// Data edges retrieved during the search (comparable with the Wireframe
    /// engine's edge-walk count).
    pub edge_walks: u64,
    /// Number of embeddings found.
    pub embeddings: usize,
}

/// The backtracking graph-exploration baseline engine.
#[derive(Debug, Clone, Copy)]
pub struct ExplorationEngine<'g> {
    graph: &'g Graph,
}

impl<'g> ExplorationEngine<'g> {
    /// Creates an engine over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        ExplorationEngine { graph }
    }

    /// Evaluates `query`, returning its projected embeddings.
    pub fn evaluate(&self, query: &ConjunctiveQuery) -> Result<EmbeddingSet, BaselineError> {
        self.evaluate_with_stats(query).map(|(e, _)| e)
    }

    /// Evaluates `query`, also returning execution statistics.
    pub fn evaluate_with_stats(
        &self,
        query: &ConjunctiveQuery,
    ) -> Result<(EmbeddingSet, ExplorationStats), BaselineError> {
        let qg = QueryGraph::new(query);
        if !qg.is_connected() {
            return Err(BaselineError::DisconnectedQuery);
        }

        // Match order: cheapest predicate first, then patterns connected to
        // the already-ordered prefix (so at most one end is unbound at a time
        // where possible).
        let order = match_order(self.graph, query);
        let mut stats = ExplorationStats {
            match_order: order.clone(),
            edge_walks: 0,
            embeddings: 0,
        };

        let mut binding: Vec<Option<NodeId>> = vec![None; query.num_vars()];
        let mut results: Vec<Vec<NodeId>> = Vec::new();
        self.search(
            query,
            &order,
            0,
            &mut binding,
            &mut results,
            &mut stats.edge_walks,
        );
        stats.embeddings = results.len();

        let schema: Vec<Var> = query.variables().collect();
        let full = EmbeddingSet::new(schema, results);
        let projected = full.into_projected_set(query).ok_or_else(|| {
            BaselineError::Internal("projection variable missing from result".into())
        })?;
        Ok((projected, stats))
    }

    fn search(
        &self,
        query: &ConjunctiveQuery,
        order: &[usize],
        depth: usize,
        binding: &mut Vec<Option<NodeId>>,
        results: &mut Vec<Vec<NodeId>>,
        edge_walks: &mut u64,
    ) {
        if depth == order.len() {
            results.push(
                binding
                    .iter()
                    .map(|b| b.expect("all variables bound at a full match"))
                    .collect(),
            );
            return;
        }
        let pattern = query.patterns()[order[depth]];
        let candidates = self.candidate_edges(&pattern, binding, edge_walks);
        for (s, o) in candidates {
            let saved = binding.clone();
            if bind_end(binding, pattern.subject, s) && bind_end(binding, pattern.object, o) {
                self.search(query, order, depth + 1, binding, results, edge_walks);
            }
            *binding = saved;
        }
    }

    /// Enumerates the data edges compatible with the pattern under the current
    /// partial binding, counting each retrieved edge as one edge walk.
    fn candidate_edges(
        &self,
        pattern: &TriplePattern,
        binding: &[Option<NodeId>],
        edge_walks: &mut u64,
    ) -> Vec<(NodeId, NodeId)> {
        let p = pattern.predicate;
        let s_val = term_value(pattern.subject, binding);
        let o_val = term_value(pattern.object, binding);
        let mut out = Vec::new();
        match (s_val, o_val) {
            (Some(s), Some(o)) => {
                *edge_walks += 1;
                if self.graph.has_triple(s, p, o) {
                    out.push((s, o));
                }
            }
            (Some(s), None) => {
                let objects = self.graph.objects_of(p, s);
                *edge_walks += objects.len() as u64;
                out.extend(objects.iter().map(|&o| (s, o)));
            }
            (None, Some(o)) => {
                let subjects = self.graph.subjects_of(p, o);
                *edge_walks += subjects.len() as u64;
                out.extend(subjects.iter().map(|&s| (s, o)));
            }
            (None, None) => {
                let pairs = self.graph.pairs(p);
                *edge_walks += pairs.len() as u64;
                out.extend_from_slice(&pairs);
            }
        }
        out
    }
}

fn term_value(term: Term, binding: &[Option<NodeId>]) -> Option<NodeId> {
    match term {
        Term::Const(c) => Some(c),
        Term::Var(v) => binding[v.index()],
    }
}

/// Binds a term's variable to `value`, returning `false` on conflict.
fn bind_end(binding: &mut [Option<NodeId>], term: Term, value: NodeId) -> bool {
    match term {
        Term::Const(c) => c == value,
        Term::Var(v) => match binding[v.index()] {
            None => {
                binding[v.index()] = Some(value);
                true
            }
            Some(existing) => existing == value,
        },
    }
}

/// Cheapest-predicate-first connected order.
#[allow(clippy::needless_range_loop)] // `i` is the pattern id being chosen
fn match_order(graph: &Graph, query: &ConjunctiveQuery) -> Vec<usize> {
    let n = query.num_patterns();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    for _ in 0..n {
        let mut best: Option<usize> = None;
        for i in 0..n {
            if used[i] {
                continue;
            }
            let connected = order.is_empty()
                || query.patterns()[i].variables().any(|v| {
                    order
                        .iter()
                        .any(|&j: &usize| query.patterns()[j].mentions(v))
                });
            if !connected {
                continue;
            }
            let card = graph.predicate_cardinality(query.patterns()[i].predicate);
            let better = match best {
                None => true,
                Some(b) => card < graph.predicate_cardinality(query.patterns()[b].predicate),
            };
            if better {
                best = Some(i);
            }
        }
        let pick =
            best.unwrap_or_else(|| (0..n).find(|&i| !used[i]).expect("unused pattern exists"));
        used[pick] = true;
        order.push(pick);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireframe_graph::GraphBuilder;
    use wireframe_query::{parse_query, CqBuilder};

    fn figure1_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "5");
        b.add("2", "A", "5");
        b.add("3", "A", "5");
        b.add("4", "A", "6");
        b.add("5", "B", "9");
        b.add("7", "B", "10");
        for o in ["12", "13", "14", "15"] {
            b.add("9", "C", o);
        }
        b.add("11", "C", "15");
        b.build()
    }

    #[test]
    fn figure1_chain_has_twelve_embeddings() {
        let g = figure1_graph();
        let q = parse_query(
            "SELECT * WHERE { ?w :A ?x . ?x :B ?y . ?y :C ?z . }",
            g.dictionary(),
        )
        .unwrap();
        let (emb, stats) = ExplorationEngine::new(&g).evaluate_with_stats(&q).unwrap();
        assert_eq!(emb.len(), 12);
        assert_eq!(stats.embeddings, 12);
        assert!(stats.edge_walks > 0);
        assert_eq!(stats.match_order.len(), 3);
    }

    #[test]
    fn agrees_with_relational_on_cycles() {
        let mut b = GraphBuilder::new();
        b.add("3", "A", "4");
        b.add("3", "B", "2");
        b.add("4", "C", "1");
        b.add("2", "D", "1");
        b.add("4", "C", "5");
        b.add("8", "C", "1");
        let g = b.build();
        let q = parse_query(
            "SELECT * WHERE { ?x :A ?e . ?x :B ?z . ?e :C ?y . ?z :D ?y . }",
            g.dictionary(),
        )
        .unwrap();
        let a = ExplorationEngine::new(&g).evaluate(&q).unwrap();
        let b2 = crate::relational::RelationalEngine::new(&g)
            .evaluate(&q)
            .unwrap();
        assert!(a.same_answer(&b2));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn constants_are_enforced() {
        let g = figure1_graph();
        let q = parse_query("SELECT ?w WHERE { ?w :A 5 . }", g.dictionary()).unwrap();
        let emb = ExplorationEngine::new(&g).evaluate(&q).unwrap();
        assert_eq!(emb.len(), 3);
    }

    #[test]
    fn self_loop_and_repeated_variable() {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "1");
        b.add("1", "A", "2");
        b.add("2", "B", "1");
        let g = b.build();
        // ?x A ?x (self loop) and the repeated-variable join ?x A ?y . ?y B ?x.
        let loopq = parse_query("SELECT ?x WHERE { ?x :A ?x . }", g.dictionary()).unwrap();
        assert_eq!(
            ExplorationEngine::new(&g).evaluate(&loopq).unwrap().len(),
            1
        );
        let cycleq =
            parse_query("SELECT * WHERE { ?x :A ?y . ?y :B ?x . }", g.dictionary()).unwrap();
        assert_eq!(
            ExplorationEngine::new(&g).evaluate(&cycleq).unwrap().len(),
            1
        );
    }

    #[test]
    fn disconnected_query_rejected() {
        let g = figure1_graph();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?a", "A", "?b").unwrap();
        qb.pattern("?c", "C", "?d").unwrap();
        let q = qb.build().unwrap();
        assert!(matches!(
            ExplorationEngine::new(&g).evaluate(&q),
            Err(BaselineError::DisconnectedQuery)
        ));
    }

    #[test]
    fn empty_answer() {
        let g = figure1_graph();
        let q = parse_query("SELECT * WHERE { ?x :C ?y . ?y :A ?z . }", g.dictionary()).unwrap();
        let emb = ExplorationEngine::new(&g).evaluate(&q).unwrap();
        assert!(emb.is_empty());
    }
}

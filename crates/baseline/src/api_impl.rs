//! [`Engine`] implementations for the three baseline engines.
//!
//! The baselines have no planning phase: `prepare` validates the query and
//! records structural facts, and `evaluate` runs the single-pass evaluator,
//! reporting its wall-clock time under [`Timings::execution`] and its
//! engine-specific counters as [`Evaluation::metrics`]. None of them
//! factorize, so [`Evaluation::factorized`] is always `None` — which is the
//! comparison the paper draws.

use std::time::Instant;

use wireframe_api::{Engine, Evaluation, PreparedQuery, Timings, WireframeError};
use wireframe_query::ConjunctiveQuery;

use crate::exploration::ExplorationEngine;
use crate::relational::RelationalEngine;
use crate::sortmerge::SortMergeEngine;

impl Engine for RelationalEngine<'_> {
    fn name(&self) -> &'static str {
        "relational"
    }

    fn prepare(&self, query: &ConjunctiveQuery) -> Result<PreparedQuery, WireframeError> {
        Ok(PreparedQuery::new(self.name(), query.clone()))
    }

    fn evaluate(&self, prepared: &PreparedQuery) -> Result<Evaluation, WireframeError> {
        self.check_prepared(prepared)?;
        let t = Instant::now();
        let (embeddings, stats) = self.evaluate_with_stats(prepared.query())?;
        let timings = Timings {
            execution: t.elapsed(),
            ..Timings::default()
        };
        Ok(Evaluation {
            engine: self.name().to_owned(),
            epochs: Vec::new(),
            embeddings,
            timings,
            cyclic: prepared.cyclic(),
            factorized: None,
            metrics: vec![
                ("scanned_tuples", stats.scanned_tuples as u64),
                ("intermediate_tuples", stats.intermediate_tuples as u64),
                ("peak_intermediate", stats.peak_intermediate as u64),
            ],
            explain: None,
            maintenance: None,
            limited: None,
        })
    }
}

impl Engine for SortMergeEngine<'_> {
    fn name(&self) -> &'static str {
        "sortmerge"
    }

    fn prepare(&self, query: &ConjunctiveQuery) -> Result<PreparedQuery, WireframeError> {
        Ok(PreparedQuery::new(self.name(), query.clone()))
    }

    fn evaluate(&self, prepared: &PreparedQuery) -> Result<Evaluation, WireframeError> {
        self.check_prepared(prepared)?;
        let t = Instant::now();
        let (embeddings, stats) = self.evaluate_with_stats(prepared.query())?;
        let timings = Timings {
            execution: t.elapsed(),
            ..Timings::default()
        };
        Ok(Evaluation {
            engine: self.name().to_owned(),
            epochs: Vec::new(),
            embeddings,
            timings,
            cyclic: prepared.cyclic(),
            factorized: None,
            metrics: vec![
                ("sorted_tuples", stats.sorted_tuples as u64),
                ("intermediate_tuples", stats.intermediate_tuples as u64),
                ("peak_intermediate", stats.peak_intermediate as u64),
            ],
            explain: None,
            maintenance: None,
            limited: None,
        })
    }
}

impl Engine for ExplorationEngine<'_> {
    fn name(&self) -> &'static str {
        "exploration"
    }

    fn prepare(&self, query: &ConjunctiveQuery) -> Result<PreparedQuery, WireframeError> {
        Ok(PreparedQuery::new(self.name(), query.clone()))
    }

    fn evaluate(&self, prepared: &PreparedQuery) -> Result<Evaluation, WireframeError> {
        self.check_prepared(prepared)?;
        let t = Instant::now();
        let (embeddings, stats) = self.evaluate_with_stats(prepared.query())?;
        let timings = Timings {
            execution: t.elapsed(),
            ..Timings::default()
        };
        Ok(Evaluation {
            engine: self.name().to_owned(),
            epochs: Vec::new(),
            embeddings,
            timings,
            cyclic: prepared.cyclic(),
            factorized: None,
            metrics: vec![("edge_walks", stats.edge_walks)],
            explain: None,
            maintenance: None,
            limited: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireframe_graph::{Graph, GraphBuilder};
    use wireframe_query::parse_query;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "5");
        b.add("5", "B", "9");
        b.add("2", "A", "5");
        b.build()
    }

    #[test]
    fn all_baselines_speak_the_engine_trait() {
        let g = graph();
        let q = parse_query("SELECT * WHERE { ?x :A ?y . ?y :B ?z . }", g.dictionary()).unwrap();

        let engines: Vec<Box<dyn Engine + '_>> = vec![
            Box::new(RelationalEngine::new(&g)),
            Box::new(SortMergeEngine::new(&g)),
            Box::new(ExplorationEngine::new(&g)),
        ];
        let mut answers = Vec::new();
        for engine in &engines {
            let ev = engine.run(&q).unwrap();
            assert_eq!(ev.engine, engine.name());
            assert!(ev.factorized.is_none(), "baselines do not factorize");
            assert!(!ev.cyclic);
            assert_eq!(ev.embedding_count(), 2);
            answers.push(ev.embeddings);
        }
        assert!(answers[0].same_answer(&answers[1]));
        assert!(answers[0].same_answer(&answers[2]));
    }

    #[test]
    fn metrics_are_populated() {
        let g = graph();
        let q = parse_query("SELECT * WHERE { ?x :A ?y . ?y :B ?z . }", g.dictionary()).unwrap();
        let ev = ExplorationEngine::new(&g).run(&q).unwrap();
        assert!(ev.metric("edge_walks").unwrap() > 0);
        let ev = RelationalEngine::new(&g).run(&q).unwrap();
        assert!(ev.metric("scanned_tuples").unwrap() > 0);
    }

    #[test]
    fn prepared_queries_are_engine_bound() {
        let g = graph();
        let q = parse_query("SELECT * WHERE { ?x :A ?y . }", g.dictionary()).unwrap();
        let prepared = RelationalEngine::new(&g).prepare(&q).unwrap();
        let err = Engine::evaluate(&SortMergeEngine::new(&g), &prepared).unwrap_err();
        assert!(matches!(err, WireframeError::EngineMismatch { .. }));
    }
}

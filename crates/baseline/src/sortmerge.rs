//! A second relational baseline: sort-merge joins over column-shaped scans.
//!
//! The paper's MonetDB configuration is a column store whose execution engine
//! favours materialized, sorted intermediates and merge joins over hash joins.
//! [`SortMergeEngine`] reproduces that strategy: every triple pattern is
//! scanned into a relation, relations are joined pairwise in a greedy order,
//! and every binary join sorts both inputs on the shared variables and merges
//! them. Like the hash-join baseline it materializes every intermediate tuple
//! — the non-factorized behaviour Wireframe's answer graph avoids — but its
//! cost profile (sorting dominates) is distinct, giving the benchmark harness
//! a second "standard evaluation" reference point.

use wireframe_graph::{Graph, NodeId};
use wireframe_query::{ConjunctiveQuery, EmbeddingSet, QueryGraph, Term, Var};

use crate::error::BaselineError;

/// Execution statistics of the sort-merge engine.
#[derive(Debug, Clone, Default)]
pub struct SortMergeStats {
    /// Join order over the query's patterns.
    pub join_order: Vec<usize>,
    /// Total tuples materialized across all intermediate relations.
    pub intermediate_tuples: usize,
    /// Largest intermediate relation.
    pub peak_intermediate: usize,
    /// Number of tuples that went through a sort.
    pub sorted_tuples: usize,
}

#[derive(Debug, Clone)]
struct Relation {
    schema: Vec<Var>,
    tuples: Vec<Vec<NodeId>>,
}

/// The sort-merge relational baseline engine.
#[derive(Debug, Clone, Copy)]
pub struct SortMergeEngine<'g> {
    graph: &'g Graph,
}

impl<'g> SortMergeEngine<'g> {
    /// Creates an engine over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        SortMergeEngine { graph }
    }

    /// Evaluates `query`, returning its projected embeddings.
    pub fn evaluate(&self, query: &ConjunctiveQuery) -> Result<EmbeddingSet, BaselineError> {
        self.evaluate_with_stats(query).map(|(e, _)| e)
    }

    /// Evaluates `query`, also returning execution statistics.
    pub fn evaluate_with_stats(
        &self,
        query: &ConjunctiveQuery,
    ) -> Result<(EmbeddingSet, SortMergeStats), BaselineError> {
        let qg = QueryGraph::new(query);
        if !qg.is_connected() {
            return Err(BaselineError::DisconnectedQuery);
        }
        let mut stats = SortMergeStats::default();

        let base: Vec<Relation> = query
            .patterns()
            .iter()
            .map(|p| self.scan(p.subject, p.predicate, p.object))
            .collect();

        let order = greedy_order(query, &base);
        stats.join_order = order.clone();

        let mut current: Option<Relation> = None;
        for &i in &order {
            let next = match current.take() {
                None => base[i].clone(),
                Some(acc) => merge_join(acc, base[i].clone(), &mut stats),
            };
            stats.intermediate_tuples += next.tuples.len();
            stats.peak_intermediate = stats.peak_intermediate.max(next.tuples.len());
            if next.tuples.is_empty() {
                let empty = EmbeddingSet::empty(query.variables().collect())
                    .project(query)
                    .unwrap_or_else(|| EmbeddingSet::empty(query.projection().to_vec()));
                return Ok((empty, stats));
            }
            current = Some(next);
        }

        let result =
            current.ok_or_else(|| BaselineError::Internal("query had no patterns".into()))?;
        let full = EmbeddingSet::new(result.schema, result.tuples);
        let projected = full.into_projected_set(query).ok_or_else(|| {
            BaselineError::Internal("projection variable missing from result".into())
        })?;
        Ok((projected, stats))
    }

    fn scan(&self, subject: Term, p: wireframe_graph::PredId, object: Term) -> Relation {
        let mut schema = Vec::new();
        if let Some(v) = subject.as_var() {
            schema.push(v);
        }
        if let Some(v) = object.as_var() {
            if Some(v) != subject.as_var() {
                schema.push(v);
            }
        }
        let self_loop = matches!((subject.as_var(), object.as_var()), (Some(a), Some(b)) if a == b);
        let mut tuples = Vec::new();
        match (subject, object) {
            (Term::Const(s), Term::Const(o)) => {
                if self.graph.has_triple(s, p, o) {
                    tuples.push(Vec::new());
                }
            }
            (Term::Const(s), Term::Var(_)) => {
                tuples.extend(self.graph.objects_of(p, s).iter().map(|&o| vec![o]));
            }
            (Term::Var(_), Term::Const(o)) => {
                tuples.extend(self.graph.subjects_of(p, o).iter().map(|&s| vec![s]));
            }
            (Term::Var(_), Term::Var(_)) => {
                for &(s, o) in self.graph.pairs(p).iter() {
                    if self_loop {
                        if s == o {
                            tuples.push(vec![s]);
                        }
                    } else {
                        tuples.push(vec![s, o]);
                    }
                }
            }
        }
        Relation { schema, tuples }
    }
}

fn greedy_order(query: &ConjunctiveQuery, base: &[Relation]) -> Vec<usize> {
    let n = base.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    for _ in 0..n {
        let mut best: Option<usize> = None;
        for i in 0..n {
            if used[i] {
                continue;
            }
            let connected = order.is_empty()
                || query.patterns()[i].variables().any(|v| {
                    order
                        .iter()
                        .any(|&j: &usize| query.patterns()[j].mentions(v))
                });
            if !connected {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => base[i].tuples.len() < base[b].tuples.len(),
            };
            if better {
                best = Some(i);
            }
        }
        let pick =
            best.unwrap_or_else(|| (0..n).find(|&i| !used[i]).expect("unused pattern exists"));
        used[pick] = true;
        order.push(pick);
    }
    order
}

/// Natural join of two relations via sort-merge on their shared variables.
/// Degenerates to a nested-loop cross product when they share none.
fn merge_join(mut left: Relation, mut right: Relation, stats: &mut SortMergeStats) -> Relation {
    let shared: Vec<Var> = left
        .schema
        .iter()
        .copied()
        .filter(|v| right.schema.contains(v))
        .collect();
    let l_keys: Vec<usize> = shared
        .iter()
        .map(|v| left.schema.iter().position(|s| s == v).expect("shared var"))
        .collect();
    let r_keys: Vec<usize> = shared
        .iter()
        .map(|v| {
            right
                .schema
                .iter()
                .position(|s| s == v)
                .expect("shared var")
        })
        .collect();
    let r_extra: Vec<usize> = (0..right.schema.len())
        .filter(|c| !shared.contains(&right.schema[*c]))
        .collect();

    let mut schema = left.schema.clone();
    schema.extend(r_extra.iter().map(|&c| right.schema[c]));

    if shared.is_empty() {
        let mut tuples = Vec::with_capacity(left.tuples.len() * right.tuples.len());
        for lt in &left.tuples {
            for rt in &right.tuples {
                let mut out = lt.clone();
                out.extend(r_extra.iter().map(|&c| rt[c]));
                tuples.push(out);
            }
        }
        return Relation { schema, tuples };
    }

    stats.sorted_tuples += left.tuples.len() + right.tuples.len();
    let key_of =
        |t: &Vec<NodeId>, cols: &[usize]| -> Vec<NodeId> { cols.iter().map(|&c| t[c]).collect() };
    left.tuples.sort_by_key(|t| key_of(t, &l_keys));
    right.tuples.sort_by_key(|t| key_of(t, &r_keys));

    let mut tuples = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.tuples.len() && j < right.tuples.len() {
        let lk = key_of(&left.tuples[i], &l_keys);
        let rk = key_of(&right.tuples[j], &r_keys);
        match lk.cmp(&rk) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Find the runs of equal keys on both sides and emit their product.
                let i_end = (i..left.tuples.len())
                    .find(|&x| key_of(&left.tuples[x], &l_keys) != lk)
                    .unwrap_or(left.tuples.len());
                let j_end = (j..right.tuples.len())
                    .find(|&x| key_of(&right.tuples[x], &r_keys) != rk)
                    .unwrap_or(right.tuples.len());
                for lt in &left.tuples[i..i_end] {
                    for rt in &right.tuples[j..j_end] {
                        let mut out = lt.clone();
                        out.extend(r_extra.iter().map(|&c| rt[c]));
                        tuples.push(out);
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Relation { schema, tuples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::RelationalEngine;
    use wireframe_graph::GraphBuilder;
    use wireframe_query::{parse_query, CqBuilder};

    fn figure1_graph() -> Graph {
        let mut b = GraphBuilder::new();
        for s in ["1", "2", "3"] {
            b.add(s, "A", "5");
        }
        b.add("4", "A", "6");
        b.add("5", "B", "9");
        b.add("7", "B", "10");
        for o in ["12", "13", "14", "15"] {
            b.add("9", "C", o);
        }
        b.add("11", "C", "15");
        b.build()
    }

    #[test]
    fn agrees_with_hash_join_engine_on_chains() {
        let g = figure1_graph();
        let q = parse_query(
            "SELECT * WHERE { ?w :A ?x . ?x :B ?y . ?y :C ?z . }",
            g.dictionary(),
        )
        .unwrap();
        let sm = SortMergeEngine::new(&g).evaluate(&q).unwrap();
        let hj = RelationalEngine::new(&g).evaluate(&q).unwrap();
        assert!(sm.same_answer(&hj));
        assert_eq!(sm.len(), 12);
    }

    #[test]
    fn sorting_statistics_are_recorded() {
        let g = figure1_graph();
        let q = parse_query("SELECT * WHERE { ?w :A ?x . ?x :B ?y . }", g.dictionary()).unwrap();
        let (emb, stats) = SortMergeEngine::new(&g).evaluate_with_stats(&q).unwrap();
        assert_eq!(emb.len(), 3);
        assert!(stats.sorted_tuples > 0);
        assert_eq!(stats.join_order.len(), 2);
    }

    #[test]
    fn duplicate_join_keys_produce_the_full_product() {
        // Three A-edges into node 5 and four C-edges out of 9 reached through
        // one B-edge: the run-product logic must emit 3 x 4 = 12 results.
        let g = figure1_graph();
        let q = parse_query(
            "SELECT * WHERE { ?w :A ?x . ?x :B ?y . ?y :C ?z . }",
            g.dictionary(),
        )
        .unwrap();
        let (emb, _) = SortMergeEngine::new(&g).evaluate_with_stats(&q).unwrap();
        assert_eq!(emb.len(), 12);
    }

    #[test]
    fn constants_self_loops_and_cycles() {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "1");
        b.add("1", "A", "2");
        b.add("2", "B", "1");
        let g = b.build();
        let loop_q = parse_query("SELECT ?x WHERE { ?x :A ?x . }", g.dictionary()).unwrap();
        assert_eq!(SortMergeEngine::new(&g).evaluate(&loop_q).unwrap().len(), 1);
        let cycle_q =
            parse_query("SELECT * WHERE { ?x :A ?y . ?y :B ?x . }", g.dictionary()).unwrap();
        assert_eq!(
            SortMergeEngine::new(&g).evaluate(&cycle_q).unwrap().len(),
            1
        );
        let const_q = parse_query("SELECT ?y WHERE { 1 :A ?y . }", g.dictionary()).unwrap();
        assert_eq!(
            SortMergeEngine::new(&g).evaluate(&const_q).unwrap().len(),
            2
        );
    }

    #[test]
    fn empty_result_and_disconnected_query() {
        let g = figure1_graph();
        let empty_q =
            parse_query("SELECT * WHERE { ?x :C ?y . ?y :A ?z . }", g.dictionary()).unwrap();
        assert!(SortMergeEngine::new(&g)
            .evaluate(&empty_q)
            .unwrap()
            .is_empty());

        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?a", "A", "?b").unwrap();
        qb.pattern("?c", "C", "?d").unwrap();
        let q = qb.build().unwrap();
        assert!(matches!(
            SortMergeEngine::new(&g).evaluate(&q),
            Err(BaselineError::DisconnectedQuery)
        ));
    }
}

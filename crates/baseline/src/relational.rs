//! The relational baseline: standard (non-factorized) CQ evaluation.
//!
//! This engine evaluates a conjunctive query the way a relational system with
//! a triple table does — the strategy of the PostgreSQL, MonetDB and Virtuoso
//! configurations in the paper's experiment: every triple pattern is scanned
//! into a relation of bindings and the relations are joined pairwise with hash
//! joins, materializing the full intermediate embedding tuples at every step.
//! No factorization takes place, so many-to-many joins multiply intermediate
//! results — exactly the redundancy the answer-graph approach avoids.

use std::collections::HashMap;

use wireframe_graph::{Graph, NodeId};
use wireframe_query::{ConjunctiveQuery, EmbeddingSet, QueryGraph, Term, Var};

use crate::error::BaselineError;

/// Execution statistics of the relational engine.
#[derive(Debug, Clone, Default)]
pub struct RelationalStats {
    /// Join order over the query's patterns.
    pub join_order: Vec<usize>,
    /// Total tuples materialized across all intermediate relations.
    pub intermediate_tuples: usize,
    /// Largest intermediate relation.
    pub peak_intermediate: usize,
    /// Tuples scanned out of the base predicate relations.
    pub scanned_tuples: usize,
}

/// A relation over a set of query variables.
#[derive(Debug, Clone)]
struct Relation {
    schema: Vec<Var>,
    tuples: Vec<Vec<NodeId>>,
}

/// The relational (hash-join) baseline engine.
#[derive(Debug, Clone, Copy)]
pub struct RelationalEngine<'g> {
    graph: &'g Graph,
}

impl<'g> RelationalEngine<'g> {
    /// Creates an engine over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        RelationalEngine { graph }
    }

    /// Evaluates `query`, returning its projected embeddings.
    pub fn evaluate(&self, query: &ConjunctiveQuery) -> Result<EmbeddingSet, BaselineError> {
        self.evaluate_with_stats(query).map(|(e, _)| e)
    }

    /// Evaluates `query`, also returning execution statistics.
    pub fn evaluate_with_stats(
        &self,
        query: &ConjunctiveQuery,
    ) -> Result<(EmbeddingSet, RelationalStats), BaselineError> {
        let qg = QueryGraph::new(query);
        if !qg.is_connected() {
            return Err(BaselineError::DisconnectedQuery);
        }
        let mut stats = RelationalStats::default();

        // Scan every pattern into a base relation.
        let base: Vec<Relation> = query
            .patterns()
            .iter()
            .map(|p| {
                let rel = self.scan(query, p.subject, p.predicate, p.object);
                stats.scanned_tuples += rel.tuples.len();
                rel
            })
            .collect();

        // Greedy join order: smallest base relation first, then the smallest
        // connected one (a textbook heuristic join-order optimizer).
        let order = join_order(query, &base);
        stats.join_order = order.clone();

        let mut current: Option<Relation> = None;
        for &i in &order {
            let next = match current.take() {
                None => base[i].clone(),
                Some(acc) => hash_join(&acc, &base[i]),
            };
            stats.intermediate_tuples += next.tuples.len();
            stats.peak_intermediate = stats.peak_intermediate.max(next.tuples.len());
            if next.tuples.is_empty() {
                // Early exit: the answer is empty, but keep the full schema so
                // projection still succeeds.
                let schema: Vec<Var> = query.variables().collect();
                let empty = EmbeddingSet::empty(schema)
                    .project(query)
                    .unwrap_or_else(|| EmbeddingSet::empty(query.projection().to_vec()));
                return Ok((empty, stats));
            }
            current = Some(next);
        }

        let result =
            current.ok_or_else(|| BaselineError::Internal("query had no patterns".into()))?;
        let full = EmbeddingSet::new(result.schema, result.tuples);
        let projected = full.into_projected_set(query).ok_or_else(|| {
            BaselineError::Internal("projection variable missing from result".into())
        })?;
        Ok((projected, stats))
    }

    /// Scans one triple pattern into a relation over its variables.
    fn scan(
        &self,
        _query: &ConjunctiveQuery,
        subject: Term,
        p: wireframe_graph::PredId,
        object: Term,
    ) -> Relation {
        let mut schema = Vec::new();
        if let Some(v) = subject.as_var() {
            schema.push(v);
        }
        if let Some(v) = object.as_var() {
            if Some(v) != subject.as_var() {
                schema.push(v);
            }
        }
        let mut tuples = Vec::new();
        let self_loop = match (subject.as_var(), object.as_var()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        };
        match (subject, object) {
            (Term::Const(s), Term::Const(o)) => {
                if self.graph.has_triple(s, p, o) {
                    tuples.push(Vec::new());
                }
            }
            (Term::Const(s), Term::Var(_)) => {
                for &o in self.graph.objects_of(p, s) {
                    tuples.push(vec![o]);
                }
            }
            (Term::Var(_), Term::Const(o)) => {
                for &s in self.graph.subjects_of(p, o) {
                    tuples.push(vec![s]);
                }
            }
            (Term::Var(_), Term::Var(_)) => {
                for &(s, o) in self.graph.pairs(p).iter() {
                    if self_loop {
                        if s == o {
                            tuples.push(vec![s]);
                        }
                    } else {
                        tuples.push(vec![s, o]);
                    }
                }
            }
        }
        Relation { schema, tuples }
    }
}

/// Greedy connected join order by base-relation size.
fn join_order(query: &ConjunctiveQuery, base: &[Relation]) -> Vec<usize> {
    let n = base.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    for _ in 0..n {
        let mut best: Option<usize> = None;
        for i in 0..n {
            if used[i] {
                continue;
            }
            let connected = order.is_empty()
                || query.patterns()[i].variables().any(|v| {
                    order
                        .iter()
                        .any(|&j: &usize| query.patterns()[j].mentions(v))
                });
            if !connected {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => base[i].tuples.len() < base[b].tuples.len(),
            };
            if better {
                best = Some(i);
            }
        }
        let pick =
            best.unwrap_or_else(|| (0..n).find(|&i| !used[i]).expect("unused pattern exists"));
        used[pick] = true;
        order.push(pick);
    }
    order
}

/// Hash join of two relations on their shared variables (natural join).
/// Degenerates to a cross product when they share none.
fn hash_join(left: &Relation, right: &Relation) -> Relation {
    let shared: Vec<Var> = left
        .schema
        .iter()
        .copied()
        .filter(|v| right.schema.contains(v))
        .collect();
    let left_key_cols: Vec<usize> = shared
        .iter()
        .map(|v| {
            left.schema
                .iter()
                .position(|s| s == v)
                .expect("shared var in left")
        })
        .collect();
    let right_key_cols: Vec<usize> = shared
        .iter()
        .map(|v| {
            right
                .schema
                .iter()
                .position(|s| s == v)
                .expect("shared var in right")
        })
        .collect();
    let right_extra_cols: Vec<usize> = (0..right.schema.len())
        .filter(|c| !shared.contains(&right.schema[*c]))
        .collect();

    let mut schema = left.schema.clone();
    schema.extend(right_extra_cols.iter().map(|&c| right.schema[c]));

    // Build on the smaller input, probe with the larger.
    let mut table: HashMap<Vec<NodeId>, Vec<usize>> = HashMap::new();
    for (idx, t) in right.tuples.iter().enumerate() {
        let key: Vec<NodeId> = right_key_cols.iter().map(|&c| t[c]).collect();
        table.entry(key).or_default().push(idx);
    }

    let mut tuples = Vec::new();
    for lt in &left.tuples {
        let key: Vec<NodeId> = left_key_cols.iter().map(|&c| lt[c]).collect();
        if let Some(matches) = table.get(&key) {
            for &ri in matches {
                let rt = &right.tuples[ri];
                let mut out = lt.clone();
                out.extend(right_extra_cols.iter().map(|&c| rt[c]));
                tuples.push(out);
            }
        }
    }
    Relation { schema, tuples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireframe_graph::GraphBuilder;
    use wireframe_query::{parse_query, CqBuilder};

    fn figure1_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "5");
        b.add("2", "A", "5");
        b.add("3", "A", "5");
        b.add("4", "A", "6");
        b.add("5", "B", "9");
        b.add("7", "B", "10");
        for o in ["12", "13", "14", "15"] {
            b.add("9", "C", o);
        }
        b.add("11", "C", "15");
        b.build()
    }

    #[test]
    fn figure1_chain_has_twelve_embeddings() {
        let g = figure1_graph();
        let q = parse_query(
            "SELECT * WHERE { ?w :A ?x . ?x :B ?y . ?y :C ?z . }",
            g.dictionary(),
        )
        .unwrap();
        let engine = RelationalEngine::new(&g);
        let (emb, stats) = engine.evaluate_with_stats(&q).unwrap();
        assert_eq!(emb.len(), 12);
        assert_eq!(stats.join_order.len(), 3);
        assert!(stats.scanned_tuples >= 11, "all base triples are scanned");
        assert!(stats.peak_intermediate >= 12);
    }

    #[test]
    fn constants_and_projection() {
        let g = figure1_graph();
        let q = parse_query("SELECT DISTINCT ?w WHERE { ?w :A 5 . }", g.dictionary()).unwrap();
        let emb = RelationalEngine::new(&g).evaluate(&q).unwrap();
        assert_eq!(emb.len(), 3);
        assert_eq!(emb.schema().len(), 1);
    }

    #[test]
    fn empty_answer() {
        let g = figure1_graph();
        let q = parse_query("SELECT * WHERE { ?x :C ?y . ?y :A ?z . }", g.dictionary()).unwrap();
        let (emb, _) = RelationalEngine::new(&g).evaluate_with_stats(&q).unwrap();
        assert!(emb.is_empty());
    }

    #[test]
    fn self_loop_pattern() {
        let mut b = GraphBuilder::new();
        b.add("1", "A", "1");
        b.add("1", "A", "2");
        b.add("3", "A", "3");
        let g = b.build();
        let q = parse_query("SELECT ?x WHERE { ?x :A ?x . }", g.dictionary()).unwrap();
        let emb = RelationalEngine::new(&g).evaluate(&q).unwrap();
        assert_eq!(emb.len(), 2);
    }

    #[test]
    fn disconnected_query_rejected() {
        let g = figure1_graph();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?a", "A", "?b").unwrap();
        qb.pattern("?c", "C", "?d").unwrap();
        let q = qb.build().unwrap();
        assert!(matches!(
            RelationalEngine::new(&g).evaluate(&q),
            Err(BaselineError::DisconnectedQuery)
        ));
    }

    #[test]
    fn cyclic_diamond_query() {
        let mut b = GraphBuilder::new();
        b.add("3", "A", "4");
        b.add("3", "B", "2");
        b.add("4", "C", "1");
        b.add("2", "D", "1");
        b.add("4", "C", "5");
        let g = b.build();
        let q = parse_query(
            "SELECT * WHERE { ?x :A ?e . ?x :B ?z . ?e :C ?y . ?z :D ?y . }",
            g.dictionary(),
        )
        .unwrap();
        let emb = RelationalEngine::new(&g).evaluate(&q).unwrap();
        assert_eq!(emb.len(), 1, "only the closed diamond is an embedding");
    }
}

//! Error type shared by the baseline engines.

use std::fmt;

/// Errors produced by the baseline engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The query graph is not connected (evaluating a cross product of
    /// components is out of scope for all engines in this workspace).
    DisconnectedQuery,
    /// An internal invariant was violated.
    Internal(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::DisconnectedQuery => write!(f, "the query graph is not connected"),
            BaselineError::Internal(msg) => write!(f, "internal baseline error: {msg}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<BaselineError> for wireframe_api::WireframeError {
    fn from(e: BaselineError) -> Self {
        use wireframe_api::WireframeError;
        match e {
            BaselineError::DisconnectedQuery => WireframeError::DisconnectedQuery,
            BaselineError::Internal(msg) => WireframeError::Internal(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(BaselineError::DisconnectedQuery
            .to_string()
            .contains("connected"));
        assert!(BaselineError::Internal("oops".into())
            .to_string()
            .contains("oops"));
    }
}

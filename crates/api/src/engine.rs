//! The `Engine` trait: the uniform evaluator contract.

use wireframe_graph::StoreKind;
use wireframe_query::ConjunctiveQuery;

use crate::error::WireframeError;
use crate::evaluation::Evaluation;
use crate::prepared::PreparedQuery;
use crate::view::MaintainedView;

/// Engine-independent evaluation knobs, passed to registry factories.
///
/// Each engine maps the config onto its own options and ignores knobs that do
/// not apply (e.g. the baselines ignore `edge_burnback`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineConfig {
    /// For cyclic queries on factorized engines: triangulate and run edge
    /// burnback after node burnback, guaranteeing the ideal answer graph at
    /// extra cost.
    pub edge_burnback: bool,
    /// Ask the engine to render a plan/statistics explanation into
    /// [`Evaluation::explain`].
    pub explain: bool,
    /// Worker threads for parallelizable phases (the Wireframe engine's
    /// phase-two defactorizer). `0` (the default) keeps the engine's own
    /// default; `1` forces sequential evaluation; `n > 1` requests `n`
    /// workers. Engines without parallel phases ignore the knob.
    pub threads: usize,
    /// The graph storage backend queries should run against (`--store` on
    /// the CLIs). `None` (the default) keeps whatever backend the graph was
    /// built with; `Some(kind)` requests a re-index. Engines themselves are
    /// backend-agnostic — they see the uniform `Graph` access paths — so
    /// this knob is honored by whoever *builds* the graph (the `Session`
    /// facade, `wfquery`, `wfbench`), before engines are constructed over
    /// it.
    pub store: Option<StoreKind>,
    /// Row bound for answers, `0` (the default) meaning unlimited. Engines
    /// that honor it truncate each evaluation to the first `limit` rows
    /// under the canonical row order (recording
    /// [`LimitInfo`](crate::LimitInfo)); serving layers additionally use it
    /// as the retention capacity `k` for maintained top-k prefixes, so
    /// bounded queries are served in `O(k)` instead of
    /// `O(|Embeddings|)`.
    pub limit: usize,
}

impl EngineConfig {
    /// Enables edge burnback.
    pub fn with_edge_burnback(mut self) -> Self {
        self.edge_burnback = true;
        self
    }

    /// Selects the graph storage backend (`None`, the default, keeps the
    /// graph's own backend).
    pub fn with_store(mut self, store: StoreKind) -> Self {
        self.store = Some(store);
        self
    }

    /// Requests a rendered explanation alongside each evaluation.
    pub fn with_explain(mut self) -> Self {
        self.explain = true;
        self
    }

    /// Requests `threads` workers for parallelizable phases (`0` = engine
    /// default, `1` = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Bounds answers to the canonical first `limit` rows (`0` = unlimited).
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }
}

/// What an engine can do, beyond answering acyclic conjunctive queries.
///
/// Serving layers route on these flags instead of matching engine *names*:
/// the `Session` facade consults `maintainable` / `maintainable_cyclic` to
/// decide between view maintenance and eviction, and `ShardedCluster` admits
/// any engine with `sharded_merge`. Registries carry a static copy per entry
/// (see `EngineRegistry::register`) so capability listings — e.g.
/// `wfquery --engine help` — need not build an engine first; the instance
/// method [`Engine::capabilities`] reflects the engine's actual
/// configuration and may be narrower (e.g. wireframe under edge burnback
/// loses `maintainable_cyclic`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCapabilities {
    /// Evaluates cyclic queries exactly (all in-tree engines do).
    pub cyclic: bool,
    /// Produces a factorized `AnswerGraph` artifact ([`Evaluation::factorized`]).
    pub factorizes: bool,
    /// Can materialize retained, incrementally-maintained views
    /// ([`Engine::materialize`]) for at least the acyclic class.
    pub maintainable: bool,
    /// Maintains views for *cyclic* queries too — no eviction fallback.
    pub maintainable_cyclic: bool,
    /// Honors `EngineConfig::threads` with a parallel defactorization phase.
    pub parallel_defactorize: bool,
    /// Its factorized output composes under the sharded scatter-gather
    /// merge, so a `ShardedCluster` may serve it.
    pub sharded_merge: bool,
}

impl EngineCapabilities {
    /// Renders the set flags as a short comma-separated list (for CLI
    /// listings); "-" when none are set.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        if self.cyclic {
            parts.push("cyclic");
        }
        if self.factorizes {
            parts.push("factorized");
        }
        if self.maintainable {
            parts.push("views");
        }
        if self.maintainable_cyclic {
            parts.push("cyclic-views");
        }
        if self.parallel_defactorize {
            parts.push("parallel");
        }
        if self.sharded_merge {
            parts.push("sharded");
        }
        if parts.is_empty() {
            "-".to_owned()
        } else {
            parts.join(",")
        }
    }
}

/// A conjunctive-query evaluator over one graph.
///
/// Implemented by the factorized Wireframe engine and every baseline, so
/// harnesses, the CLI and the equivalence tests drive all of them through one
/// interface. The two-step `prepare` / `evaluate` split exists so that
/// callers (notably the `Session` facade) can cache prepared queries — plans
/// included — keyed by the canonical query signature.
pub trait Engine {
    /// The engine's registry name (e.g. `"wireframe"`, `"relational"`).
    fn name(&self) -> &'static str;

    /// Prepares `query` for repeated evaluation: validates it, derives
    /// structural facts, and (for planning engines) computes and attaches the
    /// execution plan.
    fn prepare(&self, query: &ConjunctiveQuery) -> Result<PreparedQuery, WireframeError>;

    /// Evaluates a prepared query, returning the uniform [`Evaluation`].
    ///
    /// Implementations must reuse any plan payload carried by `prepared`
    /// rather than re-planning, so that prepared-query caching actually
    /// saves work.
    fn evaluate(&self, prepared: &PreparedQuery) -> Result<Evaluation, WireframeError>;

    /// Convenience: `prepare` + `evaluate` in one call.
    fn run(&self, query: &ConjunctiveQuery) -> Result<Evaluation, WireframeError> {
        let prepared = self.prepare(query)?;
        self.evaluate(&prepared)
    }

    /// Whether this engine can [`materialize`](Engine::materialize) prepared
    /// queries into retained, incrementally-maintained views. Serving layers
    /// use the capability to decide between footprint-*maintenance* and
    /// footprint-*eviction* when the graph mutates. Default: `false`.
    fn supports_maintenance(&self) -> bool {
        false
    }

    /// The capability set of this engine **instance** (i.e. as configured).
    ///
    /// The default is derived from
    /// [`supports_maintenance`](Engine::supports_maintenance): every in-tree
    /// engine answers cyclic queries exactly, and a maintaining engine is
    /// assumed to maintain at least the acyclic class. Engines with richer
    /// behavior (factorized output, cyclic views, sharded merge) override
    /// this.
    fn capabilities(&self) -> EngineCapabilities {
        EngineCapabilities {
            cyclic: true,
            maintainable: self.supports_maintenance(),
            ..EngineCapabilities::default()
        }
    }

    /// Materializes `prepared` into a retained [`MaintainedView`] over this
    /// engine's current graph: runs the (phase-one) pipeline once and keeps
    /// the factorized state for incremental maintenance. `Ok(None)` means
    /// this particular query is not maintainable (or the engine does not
    /// maintain at all) — callers must fall back to plain evaluation plus
    /// eviction-on-mutation. Default: `Ok(None)`.
    fn materialize(
        &self,
        prepared: &PreparedQuery,
    ) -> Result<Option<Box<dyn MaintainedView>>, WireframeError> {
        let _ = prepared;
        Ok(None)
    }

    /// Guard for implementations: errors when `prepared` was produced by a
    /// different engine.
    fn check_prepared(&self, prepared: &PreparedQuery) -> Result<(), WireframeError> {
        if prepared.engine() == self.name() {
            Ok(())
        } else {
            Err(WireframeError::EngineMismatch {
                prepared_by: prepared.engine().to_owned(),
                evaluated_by: self.name().to_owned(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::Timings;
    use wireframe_graph::GraphBuilder;
    use wireframe_query::{CqBuilder, EmbeddingSet};

    /// A trivial engine that answers every query with the empty set, proving
    /// the trait is implementable outside the workspace's engine crates.
    struct NullEngine;

    impl Engine for NullEngine {
        fn name(&self) -> &'static str {
            "null"
        }

        fn prepare(&self, query: &ConjunctiveQuery) -> Result<PreparedQuery, WireframeError> {
            Ok(PreparedQuery::new(self.name(), query.clone()))
        }

        fn evaluate(&self, prepared: &PreparedQuery) -> Result<Evaluation, WireframeError> {
            self.check_prepared(prepared)?;
            Ok(Evaluation {
                engine: self.name().to_owned(),
                epochs: Vec::new(),
                embeddings: EmbeddingSet::empty(prepared.query().projection().to_vec()),
                timings: Timings::default(),
                cyclic: prepared.cyclic(),
                factorized: None,
                metrics: Vec::new(),
                explain: None,
                maintenance: None,
                limited: None,
            })
        }
    }

    fn any_query() -> ConjunctiveQuery {
        let mut b = GraphBuilder::new();
        b.add("a", "p", "b");
        let g = b.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "p", "?y").unwrap();
        qb.build().unwrap()
    }

    #[test]
    fn run_is_prepare_then_evaluate() {
        let q = any_query();
        let ev = NullEngine.run(&q).unwrap();
        assert_eq!(ev.engine, "null");
        assert!(ev.embeddings.is_empty());
    }

    #[test]
    fn mismatched_prepared_query_is_rejected() {
        let q = any_query();
        let foreign = PreparedQuery::new("other", q);
        let err = NullEngine.evaluate(&foreign).unwrap_err();
        assert!(matches!(err, WireframeError::EngineMismatch { .. }));
    }

    #[test]
    fn default_capabilities_derive_from_supports_maintenance() {
        let caps = NullEngine.capabilities();
        assert!(caps.cyclic);
        assert!(!caps.maintainable, "NullEngine does not maintain");
        assert!(!caps.factorizes && !caps.maintainable_cyclic);
        assert!(!caps.parallel_defactorize && !caps.sharded_merge);
        assert_eq!(caps.summary(), "cyclic");
        assert_eq!(EngineCapabilities::default().summary(), "-");
        let full = EngineCapabilities {
            cyclic: true,
            factorizes: true,
            maintainable: true,
            maintainable_cyclic: true,
            parallel_defactorize: true,
            sharded_merge: true,
        };
        assert_eq!(
            full.summary(),
            "cyclic,factorized,views,cyclic-views,parallel,sharded"
        );
    }

    #[test]
    fn config_builders() {
        let c = EngineConfig::default()
            .with_edge_burnback()
            .with_explain()
            .with_threads(4)
            .with_store(StoreKind::Map)
            .with_limit(25);
        assert!(c.edge_burnback && c.explain);
        assert_eq!(c.threads, 4);
        assert_eq!(c.store, Some(StoreKind::Map));
        assert_eq!(c.limit, 25);
        assert_eq!(
            EngineConfig::default(),
            EngineConfig {
                edge_burnback: false,
                explain: false,
                threads: 0,
                store: None,
                limit: 0,
            }
        );
    }
}

//! The uniform evaluation result shared by every engine.

use std::time::Duration;

use wireframe_query::EmbeddingSet;

/// Wall-clock timings of the evaluation phases.
///
/// The four factorized phases mirror the paper's pipeline; engines that
/// evaluate in a single pass (the baselines) report under `execution` and
/// leave the factorized phases at zero. [`Timings::total`] is comparable
/// across all engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// Time spent planning (Edgifier + Triangulator).
    pub planning: Duration,
    /// Time spent generating the answer graph (phase one).
    pub answer_graph: Duration,
    /// Time spent in edge burnback (zero unless enabled and cyclic).
    pub edge_burnback: Duration,
    /// Time spent generating embeddings (phase two), **wall-clock**: with
    /// parallel defactorization this is how long the phase blocked the
    /// query, not how much work it did.
    pub defactorization: Duration,
    /// CPU time summed across defactorization workers. Equals
    /// `defactorization` on a single-threaded run; larger when workers ran
    /// concurrently. Excluded from [`Timings::total`] — summing it with the
    /// wall-clock phases would double-count the parallel phase.
    pub defactorization_cpu: Duration,
    /// Single-pass execution time of non-factorized engines (zero for the
    /// Wireframe engine, which reports per phase).
    pub execution: Duration,
}

impl Timings {
    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.planning
            + self.answer_graph
            + self.edge_burnback
            + self.defactorization
            + self.execution
    }
}

/// Artifacts specific to factorized (answer-graph) evaluation.
///
/// `None` on [`Evaluation`] means the engine does not factorize — which is
/// the comparison the paper is about, so the absence is informative, not an
/// error.
///
/// On **view-served** evaluations ([`Evaluation::maintenance`] is `Some`),
/// `answer_graph_edges` describes the *maintained* answer graph — current
/// as of the view's epoch — while the work counters (`edge_walks`,
/// `edges_burned`, `nodes_burned`, `edge_burnback_removed`) describe the
/// original materialization run: a view serve re-walks no data edges, and
/// the incremental work done since is reported separately in
/// [`MaintenanceInfo`](crate::MaintenanceInfo). Correlate work counters
/// with sizes only on evaluations where `maintenance` is `None` (or
/// `passes == 0`).
#[derive(Debug, Clone)]
pub struct Factorized {
    /// Total answer-graph size after generation and any burnback
    /// (the |AG| / |iAG| column of the paper's Table 1).
    pub answer_graph_edges: usize,
    /// Pattern indices in phase-one execution order (the Edgifier's plan).
    pub plan_order: Vec<usize>,
    /// Data edges walked during answer-graph generation.
    pub edge_walks: u64,
    /// Edges removed by cascading node burnback.
    pub edges_burned: u64,
    /// Nodes removed by cascading node burnback.
    pub nodes_burned: u64,
    /// Edges removed by the optional edge-burnback pass (zero when disabled).
    pub edge_burnback_removed: usize,
}

impl Factorized {
    /// |Embeddings| / |AG| — the factorization gap, given the embedding count.
    pub fn factorization_ratio(&self, embeddings: usize) -> f64 {
        embeddings as f64 / self.answer_graph_edges.max(1) as f64
    }

    /// The uniform [`Evaluation::metrics`] list derived from these
    /// artifacts plus the defactorizer's peak intermediate size. Both the
    /// pipeline path and view-served evaluations build their metrics here,
    /// so the two can never drift apart.
    pub fn metrics(&self, peak_intermediate: u64) -> Vec<(&'static str, u64)> {
        vec![
            ("edge_walks", self.edge_walks),
            ("answer_graph_edges", self.answer_graph_edges as u64),
            ("edges_burned", self.edges_burned),
            ("nodes_burned", self.nodes_burned),
            ("edge_burnback_removed", self.edge_burnback_removed as u64),
            ("peak_intermediate", peak_intermediate),
        ]
    }
}

/// How a limit was applied to an [`Evaluation`]'s embeddings.
///
/// Present on [`Evaluation::limited`] whenever the answer was truncated to a
/// row-count bound. The retained rows are always the **canonical prefix**:
/// the first `limit` rows under lexicographic row order over the projection's
/// column order (see `EmbeddingSet::canonical_prefix`), so any two engines or
/// shards agree bit-for-bit on which rows a limit keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimitInfo {
    /// The requested row bound (always > 0 — an unlimited evaluation carries
    /// no `LimitInfo` at all).
    pub limit: usize,
    /// Whether rows beyond the bound exist: the full answer is larger than
    /// what [`Evaluation::embeddings`] holds.
    pub truncated: bool,
    /// Whether the rows were served from a maintained top-k prefix in O(k)
    /// rather than truncated out of a full defactorization.
    pub prefix_served: bool,
    /// The full answer's row count, when the producer knew it. A
    /// prefix-served truncated answer does not — the point of the prefix is
    /// never enumerating the rest.
    pub full_total: Option<usize>,
}

/// The uniform result of evaluating one prepared query on one engine.
#[derive(Debug)]
pub struct Evaluation {
    /// Name of the engine that produced this result.
    pub engine: String,
    /// The epoch vector of the graph snapshot the evaluation ran against —
    /// the **single source of truth** for versioning. Raw (epoch-unaware)
    /// engines leave it empty; the serving layer stamps it: `[epoch]` when
    /// unsharded, the per-shard epochs followed by the aggregate cluster
    /// epoch on a sharded executor (so [`Evaluation::epoch`], the last
    /// component, is always the scalar version clients order by). See
    /// [`crate::QueryExecutor::epoch_vector`] for the executor-side
    /// contract.
    pub epochs: Vec<u64>,
    /// The projected embeddings (the query's answer).
    pub embeddings: EmbeddingSet,
    /// Per-phase wall-clock timings.
    pub timings: Timings,
    /// Whether the query graph is cyclic.
    pub cyclic: bool,
    /// Factorized artifacts; `None` for non-factorized engines.
    pub factorized: Option<Factorized>,
    /// Engine-specific counters (e.g. `edge_walks`, `intermediate_tuples`),
    /// uniformly consumable by harnesses without downcasting.
    pub metrics: Vec<(&'static str, u64)>,
    /// A rendered plan/statistics explanation, when the engine was asked for
    /// one via [`crate::EngineConfig::explain`].
    pub explain: Option<String>,
    /// Maintenance history of the retained view this evaluation was served
    /// from, stamped by the serving layer. `None` for evaluations produced
    /// by a full pipeline run (engines set `None`; only view-served answers
    /// carry counters).
    pub maintenance: Option<crate::MaintenanceInfo>,
    /// How a row limit was applied, when one was. `None` means the
    /// embeddings are the complete answer.
    pub limited: Option<LimitInfo>,
}

impl Evaluation {
    /// The scalar graph version (mutation epoch) the evaluation ran
    /// against: the last component of [`Evaluation::epochs`]. `0` when the
    /// result came from a raw engine that no serving layer stamped.
    pub fn epoch(&self) -> u64 {
        self.epochs.last().copied().unwrap_or(0)
    }

    /// The projected embeddings.
    pub fn embeddings(&self) -> &EmbeddingSet {
        &self.embeddings
    }

    /// Number of embeddings in the answer.
    pub fn embedding_count(&self) -> usize {
        self.embeddings.len()
    }

    /// Looks up an engine-specific counter by name.
    pub fn metric(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Answer-graph size, when the engine factorizes.
    pub fn answer_graph_size(&self) -> Option<usize> {
        self.factorized.as_ref().map(|f| f.answer_graph_edges)
    }

    /// Truncates the embeddings to the canonical first `limit` rows and
    /// records the fact in [`Evaluation::limited`]. `limit == 0` means
    /// unlimited and is a no-op, as is re-limiting to a bound the
    /// evaluation already satisfies (a producer that served `limit ≤ k`
    /// rows from a prefix stays prefix-served). Idempotent; tightening the
    /// bound re-truncates.
    pub fn apply_limit(&mut self, limit: usize) {
        if limit == 0 {
            return;
        }
        if let Some(info) = self.limited {
            if info.limit <= limit {
                return;
            }
        }
        let total = self.embeddings.len();
        let prior = self.limited.take();
        // Always re-sort, even when nothing is dropped: a limited answer's
        // rows are canonically ordered, so clients paging with any limit see
        // a stable order.
        self.embeddings = self.embeddings.canonical_prefix(limit);
        self.limited = Some(LimitInfo {
            limit,
            truncated: total > limit || prior.is_some_and(|p| p.truncated),
            prefix_served: prior.is_some_and(|p| p.prefix_served),
            full_total: match prior {
                Some(p) => p.full_total,
                None => Some(total),
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireframe_query::Var;

    #[test]
    fn timings_total_includes_every_phase() {
        let t = Timings {
            planning: Duration::from_millis(1),
            answer_graph: Duration::from_millis(2),
            edge_burnback: Duration::from_millis(3),
            defactorization: Duration::from_millis(4),
            defactorization_cpu: Duration::from_millis(16),
            execution: Duration::from_millis(5),
        };
        assert_eq!(
            t.total(),
            Duration::from_millis(15),
            "cpu-sum is reported, never added to the wall-clock total"
        );
    }

    #[test]
    fn metrics_and_factorized_accessors() {
        let ev = Evaluation {
            engine: "test".into(),
            epochs: Vec::new(),
            embeddings: EmbeddingSet::empty(vec![Var(0)]),
            timings: Timings::default(),
            cyclic: false,
            factorized: Some(Factorized {
                answer_graph_edges: 10,
                plan_order: vec![0, 1],
                edge_walks: 42,
                edges_burned: 0,
                nodes_burned: 0,
                edge_burnback_removed: 0,
            }),
            metrics: vec![("edge_walks", 42)],
            explain: None,
            maintenance: None,
            limited: None,
        };
        assert_eq!(ev.metric("edge_walks"), Some(42));
        assert_eq!(ev.metric("missing"), None);
        assert_eq!(ev.epoch(), 0, "unstamped evaluations read as epoch 0");
        let mut stamped = ev;
        stamped.epochs = vec![3, 5, 9];
        assert_eq!(stamped.epoch(), 9, "epoch() is the last component");
        let ev = stamped;
        assert_eq!(ev.answer_graph_size(), Some(10));
        assert_eq!(ev.embedding_count(), 0);
        let f = ev.factorized.as_ref().unwrap();
        assert!((f.factorization_ratio(100) - 10.0).abs() < 1e-9);
    }

    fn unlimited(rows: Vec<Vec<wireframe_graph::NodeId>>) -> Evaluation {
        Evaluation {
            engine: "test".into(),
            epochs: Vec::new(),
            embeddings: EmbeddingSet::new(vec![Var(0)], rows),
            timings: Timings::default(),
            cyclic: false,
            factorized: None,
            metrics: Vec::new(),
            explain: None,
            maintenance: None,
            limited: None,
        }
    }

    #[test]
    fn apply_limit_truncates_canonically() {
        use wireframe_graph::NodeId;
        let mut ev = unlimited(vec![vec![NodeId(3)], vec![NodeId(1)], vec![NodeId(2)]]);
        ev.apply_limit(2);
        assert_eq!(ev.embeddings.row(0), Some(&[NodeId(1)] as &[NodeId]));
        assert_eq!(ev.embeddings.row(1), Some(&[NodeId(2)] as &[NodeId]));
        let info = ev.limited.unwrap();
        assert!(info.truncated);
        assert_eq!(info.full_total, Some(3));
        assert!(!info.prefix_served);

        // Zero means unlimited: no-op.
        let mut ev = unlimited(vec![vec![NodeId(3)]]);
        ev.apply_limit(0);
        assert!(ev.limited.is_none());

        // A generous limit records completeness without dropping rows.
        let mut ev = unlimited(vec![vec![NodeId(3)], vec![NodeId(1)]]);
        ev.apply_limit(5);
        let info = ev.limited.unwrap();
        assert!(!info.truncated);
        assert_eq!(ev.embedding_count(), 2);
        assert_eq!(
            ev.embeddings.row(0),
            Some(&[NodeId(1)] as &[NodeId]),
            "still canonically sorted"
        );

        // Re-limiting looser is a no-op; tighter re-truncates.
        ev.apply_limit(9);
        assert_eq!(ev.limited.unwrap().limit, 5);
        ev.apply_limit(1);
        let info = ev.limited.unwrap();
        assert_eq!(info.limit, 1);
        assert!(info.truncated);
        assert_eq!(
            info.full_total,
            Some(2),
            "original total survives re-limiting"
        );
        assert_eq!(ev.embedding_count(), 1);
    }

    #[test]
    fn apply_limit_preserves_prefix_served() {
        use wireframe_graph::NodeId;
        let mut ev = unlimited(vec![vec![NodeId(1)], vec![NodeId(2)]]);
        ev.limited = Some(LimitInfo {
            limit: 2,
            truncated: true,
            prefix_served: true,
            full_total: None,
        });
        ev.apply_limit(1);
        let info = ev.limited.unwrap();
        assert!(
            info.prefix_served,
            "tightening a prefix answer stays prefix-served"
        );
        assert!(info.truncated);
        assert_eq!(
            info.full_total, None,
            "prefix producers never learn the total"
        );
    }
}

//! The engine registry: engine factories by name.
//!
//! Replaces the hand-rolled four-way `match` blocks that the CLI and the
//! bench harness used to dispatch on engine names. Factories are plain
//! function pointers (`for<'g> fn(...)`) so a registry is `'static`, cheap to
//! clone, and independent of any particular graph's lifetime.

use std::sync::Arc;

use wireframe_graph::Graph;

use crate::engine::{Engine, EngineCapabilities, EngineConfig};
use crate::error::WireframeError;

/// Builds a boxed engine over a borrowed graph.
///
/// The trait object is `Send + Sync` so built engines can be shared across
/// worker threads (engines borrow an immutable graph and carry only
/// configuration, so every workspace engine satisfies the bounds for free).
pub type EngineFactory = for<'g> fn(&'g Graph, &EngineConfig) -> Box<dyn Engine + Send + Sync + 'g>;

/// One registered engine.
#[derive(Clone, Copy)]
pub struct EngineEntry {
    /// The dispatch name (`--engine <name>` on the CLI).
    pub name: &'static str,
    /// A one-line description shown by `--engine help`.
    pub description: &'static str,
    /// The engine's nominal capability set — what a default-configured
    /// instance can do. Carried statically so listings and routing decisions
    /// (e.g. "which engine maintains cyclic views?") need not build an
    /// engine over a graph first. A *configured* instance may report a
    /// narrower [`Engine::capabilities`].
    pub capabilities: EngineCapabilities,
    /// The factory.
    pub build: EngineFactory,
}

impl std::fmt::Debug for EngineEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineEntry")
            .field("name", &self.name)
            .field("description", &self.description)
            .finish()
    }
}

/// A set of engine factories addressable by name.
///
/// Registration order is preserved: the first registered engine is the
/// default, and listings render in registration order.
#[derive(Debug, Clone, Default)]
pub struct EngineRegistry {
    entries: Vec<EngineEntry>,
}

impl EngineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an engine factory. Re-registering a name replaces the
    /// previous entry (last registration wins), so embedders can override
    /// stock engines.
    pub fn register(
        &mut self,
        name: &'static str,
        description: &'static str,
        capabilities: EngineCapabilities,
        build: EngineFactory,
    ) -> &mut Self {
        let entry = EngineEntry {
            name,
            description,
            capabilities,
            build,
        };
        match self.entries.iter_mut().find(|e| e.name == name) {
            Some(existing) => *existing = entry,
            None => self.entries.push(entry),
        }
        self
    }

    /// Builds the engine registered under `name` over `graph`.
    pub fn build<'g>(
        &self,
        name: &str,
        graph: &'g Graph,
        config: &EngineConfig,
    ) -> Result<Box<dyn Engine + Send + Sync + 'g>, WireframeError> {
        match self.entries.iter().find(|e| e.name == name) {
            Some(entry) => Ok((entry.build)(graph, config)),
            None => Err(WireframeError::UnknownEngine {
                requested: name.to_owned(),
                known: self.names().iter().map(|&n| n.to_owned()).collect(),
            }),
        }
    }

    /// Builds the engine registered under `name` behind an [`Arc`], for
    /// sharing one engine instance across worker threads (e.g. a closed-loop
    /// benchmark driver or a concurrent `Session`).
    pub fn build_shared<'g>(
        &self,
        name: &str,
        graph: &'g Graph,
        config: &EngineConfig,
    ) -> Result<Arc<dyn Engine + Send + Sync + 'g>, WireframeError> {
        self.build(name, graph, config).map(Arc::from)
    }

    /// All registered entries, in registration order.
    pub fn entries(&self) -> &[EngineEntry] {
        &self.entries
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// The nominal capability set registered under `name`, if any.
    pub fn capabilities(&self, name: &str) -> Option<EngineCapabilities> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.capabilities)
    }

    /// The first registered engine (in registration order) whose nominal
    /// capabilities satisfy `want` — used by serving layers to route around
    /// a configured engine that cannot serve a query class (e.g. find a
    /// `maintainable_cyclic` engine when the default declines to
    /// materialize a cyclic view).
    pub fn find_capable(&self, want: impl Fn(&EngineCapabilities) -> bool) -> Option<&'static str> {
        self.entries
            .iter()
            .find(|e| want(&e.capabilities))
            .map(|e| e.name)
    }

    /// The name of the default engine (the first registered), if any.
    pub fn default_engine(&self) -> Option<&'static str> {
        self.entries.first().map(|e| e.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::{Evaluation, Timings};
    use crate::prepared::PreparedQuery;
    use wireframe_graph::GraphBuilder;
    use wireframe_query::{ConjunctiveQuery, CqBuilder, EmbeddingSet};

    struct Null(&'static str);

    impl Engine for Null {
        fn name(&self) -> &'static str {
            self.0
        }
        fn prepare(&self, query: &ConjunctiveQuery) -> Result<PreparedQuery, WireframeError> {
            Ok(PreparedQuery::new(self.name(), query.clone()))
        }
        fn evaluate(&self, prepared: &PreparedQuery) -> Result<Evaluation, WireframeError> {
            Ok(Evaluation {
                engine: self.name().to_owned(),
                epochs: Vec::new(),
                embeddings: EmbeddingSet::empty(prepared.query().projection().to_vec()),
                timings: Timings::default(),
                cyclic: prepared.cyclic(),
                factorized: None,
                metrics: Vec::new(),
                explain: None,
                maintenance: None,
                limited: None,
            })
        }
    }

    fn null_a<'g>(_: &'g Graph, _: &EngineConfig) -> Box<dyn Engine + Send + Sync + 'g> {
        Box::new(Null("a"))
    }
    fn null_a2<'g>(_: &'g Graph, _: &EngineConfig) -> Box<dyn Engine + Send + Sync + 'g> {
        Box::new(Null("a2"))
    }
    fn null_b<'g>(_: &'g Graph, _: &EngineConfig) -> Box<dyn Engine + Send + Sync + 'g> {
        Box::new(Null("b"))
    }

    fn tiny_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add("x", "p", "y");
        b.build()
    }

    #[test]
    fn register_build_and_list() {
        let mut r = EngineRegistry::new();
        r.register("a", "engine a", EngineCapabilities::default(), null_a)
            .register(
                "b",
                "engine b",
                EngineCapabilities {
                    cyclic: true,
                    ..EngineCapabilities::default()
                },
                null_b,
            );
        assert_eq!(r.names(), vec!["a", "b"]);
        assert_eq!(r.default_engine(), Some("a"));
        assert!(r.contains("b") && !r.contains("c"));
        assert!(r.capabilities("b").unwrap().cyclic);
        assert!(!r.capabilities("a").unwrap().cyclic);
        assert_eq!(r.capabilities("c"), None);
        assert_eq!(r.find_capable(|c| c.cyclic), Some("b"));
        assert_eq!(r.find_capable(|c| c.sharded_merge), None);

        let g = tiny_graph();
        let engine = r.build("b", &g, &EngineConfig::default()).unwrap();
        assert_eq!(engine.name(), "b");

        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "p", "?y").unwrap();
        let ev = engine.run(&qb.build().unwrap()).unwrap();
        assert_eq!(ev.engine, "b");
    }

    #[test]
    fn shared_engines_evaluate_from_multiple_threads() {
        let mut r = EngineRegistry::new();
        r.register("a", "engine a", EngineCapabilities::default(), null_a);
        let g = tiny_graph();
        let engine = r.build_shared("a", &g, &EngineConfig::default()).unwrap();

        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "p", "?y").unwrap();
        let q = qb.build().unwrap();

        std::thread::scope(|scope| {
            for _ in 0..4 {
                let engine = Arc::clone(&engine);
                let q = &q;
                scope.spawn(move || {
                    let ev = engine.run(q).unwrap();
                    assert_eq!(ev.engine, "a");
                });
            }
        });
    }

    #[test]
    fn unknown_name_lists_known_engines() {
        let mut r = EngineRegistry::new();
        r.register("a", "engine a", EngineCapabilities::default(), null_a);
        let g = tiny_graph();
        match r.build("zzz", &g, &EngineConfig::default()) {
            Err(WireframeError::UnknownEngine { requested, known }) => {
                assert_eq!(requested, "zzz");
                assert_eq!(known, vec!["a".to_owned()]);
            }
            Err(other) => panic!("unexpected error {other:?}"),
            Ok(_) => panic!("unknown engine must not build"),
        };
    }

    #[test]
    fn re_registration_replaces() {
        let mut r = EngineRegistry::new();
        r.register("a", "first", EngineCapabilities::default(), null_a);
        r.register("a", "second", EngineCapabilities::default(), null_a2);
        assert_eq!(r.entries().len(), 1);
        assert_eq!(r.entries()[0].description, "second");
        let g = tiny_graph();
        let engine = r.build("a", &g, &EngineConfig::default()).unwrap();
        assert_eq!(engine.name(), "a2", "last registration wins");
    }
}

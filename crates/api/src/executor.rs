//! The [`QueryExecutor`] trait: the serving-side façade contract.
//!
//! Engines ([`crate::Engine`]) are stateless evaluators over one graph
//! snapshot. *Executors* sit one layer up: they own graph version(s), an
//! epoch counter (or, for sharded executors, one counter per shard), a plan
//! cache, and a mutation path — the surface the serving layer and the CLI
//! drivers actually talk to. The umbrella crate's `Session` (one graph, one
//! epoch) and `ShardedCluster` (N vertex-partitioned shards, an epoch
//! *vector*) both implement this trait, so `wfserve`, `wfquery` and the
//! benchmark driver dispatch through `dyn QueryExecutor` and never name a
//! concrete serving type.

use std::sync::Arc;

use wireframe_graph::{EdgeDelta, Graph, Mutation, MutationOutcome};
use wireframe_obs::{names, MetricsSnapshot, Span};
use wireframe_query::ConjunctiveQuery;

use crate::{Evaluation, WireframeError};

/// Callback invoked on every epoch advance; see
/// [`QueryExecutor::add_epoch_listener`].
pub type EpochListener = Box<dyn Fn(u64, &EdgeDelta) + Send + Sync>;

/// A uniform snapshot of an executor's serving counters.
///
/// Single-session executors report their own counters; sharded executors
/// report the element-wise **sum** across shards plus their cluster-level
/// counters. All counters are cumulative since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Prepared-plan cache hits.
    pub cache_hits: u64,
    /// Prepared-plan cache misses.
    pub cache_misses: u64,
    /// Cache entries evicted by the capacity bound.
    pub cache_evictions: u64,
    /// Cache entries evicted by mutation footprints.
    pub cache_invalidations: u64,
    /// Evaluations served straight from a retained view (phase two only).
    pub view_serves: u64,
    /// Full pipeline runs (engine evaluations plus view materializations).
    pub full_evaluations: u64,
    /// Retained views maintained in place by mutations.
    pub plans_maintained: u64,
    /// Total maintenance frontier nodes across all maintained views.
    pub maintenance_frontier_nodes: u64,
    /// Wall-clock spent maintaining views, microseconds.
    pub maintenance_micros: u64,
    /// Cached entries examined under a lock by mutation footprint passes.
    pub mutation_cache_touches: u64,
    /// Delta-store compactions triggered by mutations.
    pub compactions: u64,
    /// View serves answered from a retained top-k prefix in `O(k)`.
    pub prefix_hits: u64,
    /// Top-k prefix recomputes paid on priming or underflow refills.
    pub prefix_refills: u64,
    /// Top-k prefix full-recompute fallbacks (churn or candidate overflow).
    pub prefix_fallbacks: u64,
}

impl ExecutorStats {
    /// Reads the struct out of a [`MetricsSnapshot`], the executors' single
    /// source of truth since the registry replaced their ad-hoc atomic
    /// counter fields. Absent names read as zero, so a snapshot from an
    /// older peer (or a non-maintaining engine) still decodes.
    pub fn from_snapshot(snapshot: &MetricsSnapshot) -> ExecutorStats {
        ExecutorStats {
            cache_hits: snapshot.counter(names::CACHE_HITS),
            cache_misses: snapshot.counter(names::CACHE_MISSES),
            cache_evictions: snapshot.counter(names::CACHE_EVICTIONS),
            cache_invalidations: snapshot.counter(names::CACHE_INVALIDATIONS),
            view_serves: snapshot.counter(names::VIEW_SERVES),
            full_evaluations: snapshot.counter(names::FULL_EVALUATIONS),
            plans_maintained: snapshot.counter(names::PLANS_MAINTAINED),
            maintenance_frontier_nodes: snapshot.counter(names::MAINTENANCE_FRONTIER_NODES),
            maintenance_micros: snapshot.counter(names::MAINTENANCE_MICROS),
            mutation_cache_touches: snapshot.counter(names::MUTATION_CACHE_TOUCHES),
            compactions: snapshot.counter(names::COMPACTIONS),
            prefix_hits: snapshot.counter(names::MAINTAIN_PREFIX_HITS),
            prefix_refills: snapshot.counter(names::MAINTAIN_PREFIX_REFILLS),
            prefix_fallbacks: snapshot.counter(names::MAINTAIN_PREFIX_FALLBACKS),
        }
    }
}

/// One object that owns graph state and answers queries: the contract shared
/// by the unsharded `Session` and the `ShardedCluster`.
///
/// # Epochs and the epoch vector
///
/// Every executor exposes a scalar [`QueryExecutor::epoch`] — advanced by
/// exactly one per applied mutation batch — which is what subscription
/// chains and `Evaluation::epoch` stamps are built on. The
/// [`QueryExecutor::epoch_vector`] refines it: one entry per shard, each
/// advanced only when a batch actually routed work to that shard. For an
/// unsharded executor the vector is `[epoch]`; for a sharded one the scalar
/// is the cluster-wide batch counter and the vector carries the per-shard
/// counters, so serve-layer subscribers can verify gap-freedom *per shard*.
///
/// # Snapshot contract
///
/// [`QueryExecutor::graph`] returns an immutable snapshot of (one shard of)
/// the current graph version, primarily for dictionary access: labels are
/// append-only across mutations, so identifiers resolved against an older
/// snapshot still resolve against every later one.
pub trait QueryExecutor: Send + Sync {
    /// The name of the engine answering queries.
    fn engine_name(&self) -> &str;

    /// Parses, plans and executes a SPARQL conjunctive query in one call.
    fn query(&self, text: &str) -> Result<Evaluation, WireframeError>;

    /// Like [`QueryExecutor::query`], bounded to the first `limit` rows
    /// under the canonical row order (`0` means unlimited). The default
    /// evaluates fully and truncates; executors with retained top-k
    /// prefixes override it to serve `limit ≤ k` in `O(k)` and mark the
    /// result [`prefix_served`](crate::LimitInfo::prefix_served).
    fn query_limited(&self, text: &str, limit: usize) -> Result<Evaluation, WireframeError> {
        let mut ev = self.query(text)?;
        ev.apply_limit(limit);
        Ok(ev)
    }

    /// Executes an already-constructed query (parsed against this
    /// executor's dictionary — see [`QueryExecutor::graph`]).
    fn execute(&self, query: &ConjunctiveQuery) -> Result<Evaluation, WireframeError>;

    /// Like [`QueryExecutor::execute`], bounded to the first `limit` rows
    /// under the canonical row order (`0` means unlimited). Same default
    /// and override contract as [`QueryExecutor::query_limited`].
    fn execute_limited(
        &self,
        query: &ConjunctiveQuery,
        limit: usize,
    ) -> Result<Evaluation, WireframeError> {
        let mut ev = self.execute(query)?;
        ev.apply_limit(limit);
        Ok(ev)
    }

    /// Warms the executor for `text` without producing an answer. Returns
    /// `true` when a retained view now serves the query.
    fn prime(&self, text: &str) -> Result<bool, WireframeError>;

    /// Applies a mutation batch, advancing the epoch by one. On a sharded
    /// executor the batch is routed: each operation reaches the shard that
    /// owns its subject.
    fn apply_mutation(&self, mutation: &Mutation) -> MutationOutcome;

    /// The scalar mutation epoch: `0` at construction, `+1` per applied
    /// batch.
    fn epoch(&self) -> u64;

    /// The per-shard epoch vector; `[epoch]` for unsharded executors. See
    /// the trait docs for the contract.
    fn epoch_vector(&self) -> Vec<u64>;

    /// Number of shards (`1` for unsharded executors).
    fn shard_count(&self) -> usize {
        1
    }

    /// A snapshot of the current graph version (shard 0 on sharded
    /// executors), for dictionary/label resolution. Labels are append-only,
    /// so identifiers from older snapshots keep resolving.
    fn graph(&self) -> Arc<Graph>;

    /// Registers a callback fired on every scalar-epoch advance, with the
    /// batch's net [`EdgeDelta`]. Callbacks are totally ordered by epoch
    /// (they run under the executor's mutation lock); keep them cheap and
    /// never call back into the executor from inside one.
    fn add_epoch_listener(&self, listener: EpochListener);

    /// A snapshot of the executor's serving counters.
    fn stats(&self) -> ExecutorStats;

    /// The executor's full metrics registry export: every counter behind
    /// [`QueryExecutor::stats`] plus gauges and latency histograms. Sharded
    /// executors return the merged aggregate with `shard{i}.`-prefixed
    /// per-shard breakdowns alongside. The default (for executors that
    /// predate the registry) is an empty snapshot.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Recently completed query span trees from the executor's tracer ring,
    /// oldest first (empty for executors without a tracer, or when tracing
    /// is disabled).
    fn recent_spans(&self) -> Vec<Span> {
        Vec::new()
    }
}

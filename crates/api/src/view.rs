//! Maintained views: retained, incrementally-updated evaluation state.
//!
//! The paper's bet is that the factorized answer graph is small relative to
//! the embeddings it represents — which makes it cheap not only to *compute*
//! but to *keep*. A [`MaintainedView`] is the contract for that: an engine
//! that [`supports_maintenance`](crate::Engine::supports_maintenance) can
//! [`materialize`](crate::Engine::materialize) a prepared query into a
//! retained view whose internal state (for the Wireframe engine: the answer
//! graph) is updated in place by each mutation's net
//! [`EdgeDelta`](wireframe_graph::EdgeDelta) — `O(delta)` work — instead of
//! being thrown away and recomputed from scratch. Serving layers (the
//! `Session` facade) hold views behind their plan cache and route data
//! mutations through [`MaintainedView::maintain`].
//!
//! Embeddings are deliberately **not** part of the retained state: a view
//! re-derives them from its maintained factorized form on every
//! [`MaintainedView::evaluate`] call. Keeping the small artifact fresh and
//! defactorizing on demand is precisely the factorization-matters trade.

use wireframe_graph::{EdgeDelta, Graph};

use crate::error::WireframeError;
use crate::evaluation::Evaluation;

/// What one [`MaintainedView::maintain`] pass did, in `O(delta)` units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Delta edges that mapped onto at least one pattern edge and were
    /// inserted as answer-graph candidates.
    pub candidate_inserts: usize,
    /// Delta edges whose tombstones removed a present answer-graph edge.
    pub candidate_removals: usize,
    /// Distinct answer-graph nodes from which local burnback / revival
    /// cascaded (the maintenance frontier).
    pub frontier_nodes: usize,
    /// Answer-graph edges added by the pass (candidates plus revived edges).
    pub edges_added: usize,
    /// Answer-graph edges removed by the pass (tombstones plus burnback).
    pub edges_removed: usize,
    /// Nodes added to variable node sets by revival.
    pub nodes_added: usize,
    /// Nodes removed from variable node sets by burnback.
    pub nodes_removed: usize,
    /// Top-k prefix refills: the pass re-enumerated the prefix because it
    /// underflowed below k (or warmed a cold prefix) — the bounded recovery
    /// path, not a failure.
    pub prefix_refills: usize,
    /// Top-k prefix fallbacks: the pass abandoned incremental prefix
    /// maintenance because the delta invalidated too much, and re-derived
    /// the prefix from a full defactorization.
    pub prefix_fallbacks: usize,
    /// Rows retained in the view's top-k prefix after the pass. A level
    /// per view, not a delta — absorbing one pass per view sums to the
    /// total retained across those views.
    pub prefix_rows: usize,
}

impl MaintenanceStats {
    /// Accumulates another pass into this one.
    pub fn absorb(&mut self, other: &MaintenanceStats) {
        self.candidate_inserts += other.candidate_inserts;
        self.candidate_removals += other.candidate_removals;
        self.frontier_nodes += other.frontier_nodes;
        self.edges_added += other.edges_added;
        self.edges_removed += other.edges_removed;
        self.nodes_added += other.nodes_added;
        self.nodes_removed += other.nodes_removed;
        self.prefix_refills += other.prefix_refills;
        self.prefix_fallbacks += other.prefix_fallbacks;
        self.prefix_rows += other.prefix_rows;
    }
}

/// Cumulative maintenance history of a view, carried on every
/// [`Evaluation`] served from it (see [`Evaluation::maintenance`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceInfo {
    /// The mutation epoch the view is maintained to (the epoch of the graph
    /// version its answer graph reflects).
    pub maintained_epoch: u64,
    /// Maintenance passes applied since materialization.
    pub passes: u64,
    /// Frontier nodes touched across all passes.
    pub frontier_nodes: u64,
    /// Total wall-clock spent maintaining, in microseconds.
    pub maintenance_us: u64,
}

/// A retained, incrementally-maintainable evaluation of one prepared query.
///
/// Implementations own everything they need to answer (for Wireframe: the
/// query, its plan, and the maintained answer graph) — no borrow of the
/// graph, which keeps changing underneath. The serving layer guarantees the
/// epoch discipline: [`maintain`](MaintainedView::maintain) is called under
/// the same lock that swaps graph versions, with the *post-mutation* graph
/// and the batch's net delta, and a view is only served when its
/// [`epoch`](MaintainedView::epoch) matches the reader's snapshot.
pub trait MaintainedView: Send + Sync + std::fmt::Debug {
    /// The mutation epoch this view is maintained to.
    fn epoch(&self) -> u64;

    /// Stamps the epoch of the graph version the view was materialized
    /// over (engines materialize at epoch `0`; the serving layer knows the
    /// real snapshot epoch). Subsequent [`maintain`](MaintainedView::maintain)
    /// calls stamp later epochs themselves.
    fn set_epoch(&mut self, epoch: u64);

    /// Applies one mutation batch's net delta: updates the retained state to
    /// match `graph` (the post-mutation version) and stamps `epoch`.
    fn maintain(&mut self, graph: &Graph, delta: &EdgeDelta, epoch: u64) -> MaintenanceStats;

    /// Evaluates from the retained state: re-derives embeddings (and the
    /// uniform [`Evaluation`]) from the maintained factorized form. The
    /// returned evaluation's `epoch` is `0`; the serving layer stamps its
    /// snapshot epoch, exactly as for engine evaluations.
    fn evaluate(&self) -> Result<Evaluation, WireframeError>;

    /// Evaluates the first `limit` rows under the canonical row order
    /// (`limit == 0` means unlimited and is exactly [`evaluate`]).
    ///
    /// The default derives the full answer and truncates — correct for any
    /// view. Implementations that retain a top-k prefix override this to
    /// serve `limit ≤ k` in `O(k)` without defactorizing, marking the
    /// result [`prefix_served`](crate::LimitInfo::prefix_served).
    ///
    /// [`evaluate`]: MaintainedView::evaluate
    fn evaluate_limited(&self, limit: usize) -> Result<Evaluation, WireframeError> {
        let mut ev = self.evaluate()?;
        ev.apply_limit(limit);
        Ok(ev)
    }

    /// Asks the view to retain a defactorized top-k prefix of at least
    /// `limit` rows for `O(k)` [`evaluate_limited`] serving, paying one
    /// enumeration now. Returns whether a prefix is retained afterwards —
    /// `false` (the default) when the view does not support prefixes.
    ///
    /// [`evaluate_limited`]: MaintainedView::evaluate_limited
    fn prime_prefix(&mut self, limit: usize) -> bool {
        let _ = limit;
        false
    }

    /// Rows currently retained in the view's top-k prefix (`0` when none).
    fn prefix_rows(&self) -> usize {
        0
    }

    /// Whether [`evaluate_limited`] with this `limit` would be answered from
    /// a warm prefix in `O(limit)`. Serving layers consult this to decide
    /// when a lazy [`prime_prefix`] is worth paying before evaluating.
    ///
    /// [`evaluate_limited`]: MaintainedView::evaluate_limited
    /// [`prime_prefix`]: MaintainedView::prime_prefix
    fn can_prefix_serve(&self, _limit: usize) -> bool {
        false
    }

    /// Cumulative maintenance history (stamped into served evaluations).
    fn info(&self) -> MaintenanceInfo;

    /// Clones the view. Serving layers hold views behind shared handles so
    /// evaluation never runs under a lock a mutation needs; when a
    /// maintenance pass finds readers still holding the previous state, it
    /// clones, maintains the clone, and swaps it in (copy-on-write) — the
    /// factorized artifact is small, which is what makes this affordable.
    fn clone_view(&self) -> Box<dyn MaintainedView>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_absorb_accumulates_every_field() {
        let mut a = MaintenanceStats {
            candidate_inserts: 1,
            candidate_removals: 2,
            frontier_nodes: 3,
            edges_added: 4,
            edges_removed: 5,
            nodes_added: 6,
            nodes_removed: 7,
            prefix_refills: 8,
            prefix_fallbacks: 9,
            prefix_rows: 10,
        };
        a.absorb(&a.clone());
        assert_eq!(a.candidate_inserts, 2);
        assert_eq!(a.candidate_removals, 4);
        assert_eq!(a.frontier_nodes, 6);
        assert_eq!(a.edges_added, 8);
        assert_eq!(a.edges_removed, 10);
        assert_eq!(a.nodes_added, 12);
        assert_eq!(a.nodes_removed, 14);
        assert_eq!(a.prefix_refills, 16);
        assert_eq!(a.prefix_fallbacks, 18);
        assert_eq!(a.prefix_rows, 20);
        assert_eq!(MaintenanceInfo::default().maintained_epoch, 0);
    }
}

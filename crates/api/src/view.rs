//! Maintained views: retained, incrementally-updated evaluation state.
//!
//! The paper's bet is that the factorized answer graph is small relative to
//! the embeddings it represents — which makes it cheap not only to *compute*
//! but to *keep*. A [`MaintainedView`] is the contract for that: an engine
//! that [`supports_maintenance`](crate::Engine::supports_maintenance) can
//! [`materialize`](crate::Engine::materialize) a prepared query into a
//! retained view whose internal state (for the Wireframe engine: the answer
//! graph) is updated in place by each mutation's net
//! [`EdgeDelta`](wireframe_graph::EdgeDelta) — `O(delta)` work — instead of
//! being thrown away and recomputed from scratch. Serving layers (the
//! `Session` facade) hold views behind their plan cache and route data
//! mutations through [`MaintainedView::maintain`].
//!
//! Embeddings are deliberately **not** part of the retained state: a view
//! re-derives them from its maintained factorized form on every
//! [`MaintainedView::evaluate`] call. Keeping the small artifact fresh and
//! defactorizing on demand is precisely the factorization-matters trade.

use wireframe_graph::{EdgeDelta, Graph};

use crate::error::WireframeError;
use crate::evaluation::Evaluation;

/// What one [`MaintainedView::maintain`] pass did, in `O(delta)` units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Delta edges that mapped onto at least one pattern edge and were
    /// inserted as answer-graph candidates.
    pub candidate_inserts: usize,
    /// Delta edges whose tombstones removed a present answer-graph edge.
    pub candidate_removals: usize,
    /// Distinct answer-graph nodes from which local burnback / revival
    /// cascaded (the maintenance frontier).
    pub frontier_nodes: usize,
    /// Answer-graph edges added by the pass (candidates plus revived edges).
    pub edges_added: usize,
    /// Answer-graph edges removed by the pass (tombstones plus burnback).
    pub edges_removed: usize,
    /// Nodes added to variable node sets by revival.
    pub nodes_added: usize,
    /// Nodes removed from variable node sets by burnback.
    pub nodes_removed: usize,
}

impl MaintenanceStats {
    /// Accumulates another pass into this one.
    pub fn absorb(&mut self, other: &MaintenanceStats) {
        self.candidate_inserts += other.candidate_inserts;
        self.candidate_removals += other.candidate_removals;
        self.frontier_nodes += other.frontier_nodes;
        self.edges_added += other.edges_added;
        self.edges_removed += other.edges_removed;
        self.nodes_added += other.nodes_added;
        self.nodes_removed += other.nodes_removed;
    }
}

/// Cumulative maintenance history of a view, carried on every
/// [`Evaluation`] served from it (see [`Evaluation::maintenance`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceInfo {
    /// The mutation epoch the view is maintained to (the epoch of the graph
    /// version its answer graph reflects).
    pub maintained_epoch: u64,
    /// Maintenance passes applied since materialization.
    pub passes: u64,
    /// Frontier nodes touched across all passes.
    pub frontier_nodes: u64,
    /// Total wall-clock spent maintaining, in microseconds.
    pub maintenance_us: u64,
}

/// A retained, incrementally-maintainable evaluation of one prepared query.
///
/// Implementations own everything they need to answer (for Wireframe: the
/// query, its plan, and the maintained answer graph) — no borrow of the
/// graph, which keeps changing underneath. The serving layer guarantees the
/// epoch discipline: [`maintain`](MaintainedView::maintain) is called under
/// the same lock that swaps graph versions, with the *post-mutation* graph
/// and the batch's net delta, and a view is only served when its
/// [`epoch`](MaintainedView::epoch) matches the reader's snapshot.
pub trait MaintainedView: Send + Sync + std::fmt::Debug {
    /// The mutation epoch this view is maintained to.
    fn epoch(&self) -> u64;

    /// Stamps the epoch of the graph version the view was materialized
    /// over (engines materialize at epoch `0`; the serving layer knows the
    /// real snapshot epoch). Subsequent [`maintain`](MaintainedView::maintain)
    /// calls stamp later epochs themselves.
    fn set_epoch(&mut self, epoch: u64);

    /// Applies one mutation batch's net delta: updates the retained state to
    /// match `graph` (the post-mutation version) and stamps `epoch`.
    fn maintain(&mut self, graph: &Graph, delta: &EdgeDelta, epoch: u64) -> MaintenanceStats;

    /// Evaluates from the retained state: re-derives embeddings (and the
    /// uniform [`Evaluation`]) from the maintained factorized form. The
    /// returned evaluation's `epoch` is `0`; the serving layer stamps its
    /// snapshot epoch, exactly as for engine evaluations.
    fn evaluate(&self) -> Result<Evaluation, WireframeError>;

    /// Cumulative maintenance history (stamped into served evaluations).
    fn info(&self) -> MaintenanceInfo;

    /// Clones the view. Serving layers hold views behind shared handles so
    /// evaluation never runs under a lock a mutation needs; when a
    /// maintenance pass finds readers still holding the previous state, it
    /// clones, maintains the clone, and swaps it in (copy-on-write) — the
    /// factorized artifact is small, which is what makes this affordable.
    fn clone_view(&self) -> Box<dyn MaintainedView>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_absorb_accumulates_every_field() {
        let mut a = MaintenanceStats {
            candidate_inserts: 1,
            candidate_removals: 2,
            frontier_nodes: 3,
            edges_added: 4,
            edges_removed: 5,
            nodes_added: 6,
            nodes_removed: 7,
        };
        a.absorb(&a.clone());
        assert_eq!(a.candidate_inserts, 2);
        assert_eq!(a.candidate_removals, 4);
        assert_eq!(a.frontier_nodes, 6);
        assert_eq!(a.edges_added, 8);
        assert_eq!(a.edges_removed, 10);
        assert_eq!(a.nodes_added, 12);
        assert_eq!(a.nodes_removed, 14);
        assert_eq!(MaintenanceInfo::default().maintained_epoch, 0);
    }
}

//! # wireframe-api — the unified evaluator API
//!
//! Every engine in this workspace — the factorized Wireframe engine and the
//! three non-factorized baselines — evaluates the same conjunctive queries
//! over the same [`Graph`](wireframe_graph::Graph) and answers with the same
//! [`EmbeddingSet`](wireframe_query::EmbeddingSet). This crate is the shared
//! contract that makes that comparability first-class instead of ad hoc:
//!
//! * [`Engine`] — the evaluator trait (`name` / `prepare` / `evaluate`),
//! * [`PreparedQuery`] — a query after engine-side preparation (plans cached
//!   by canonical signature),
//! * [`Evaluation`] — the uniform result: embeddings, per-phase [`Timings`],
//!   optional [`Factorized`] artifacts, engine-specific metrics,
//! * [`EngineRegistry`] — engine factories by name, replacing string dispatch,
//! * [`QueryExecutor`] — the serving-side contract one layer up: an object
//!   that owns graph state, epochs and a mutation path (the `Session` facade
//!   and the `ShardedCluster` of the umbrella crate both implement it),
//! * [`WireframeError`] — the workspace-wide error type.
//!
//! The crate deliberately depends only on `wireframe-graph`,
//! `wireframe-query` and the telemetry crate (re-exported as [`obs`]);
//! concrete engines depend on it, not the other way around, so new
//! backends plug in without touching the trait.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod evaluation;
mod executor;
mod prepared;
mod registry;
mod view;
pub mod wire;

pub use engine::{Engine, EngineCapabilities, EngineConfig};
pub use error::WireframeError;
pub use evaluation::{Evaluation, Factorized, LimitInfo, Timings};
pub use executor::{EpochListener, ExecutorStats, QueryExecutor};
pub use prepared::PreparedQuery;
pub use registry::{EngineEntry, EngineFactory, EngineRegistry};
pub use view::{MaintainedView, MaintenanceInfo, MaintenanceStats};
pub use wireframe_graph::StoreKind;
/// The telemetry subsystem ([`Registry`](obs::Registry) /
/// [`MetricsSnapshot`](obs::MetricsSnapshot) / [`Tracer`](obs::Tracer)),
/// re-exported so executor implementors and the serve layer share one
/// namespace without naming the crate twice.
pub use wireframe_obs as obs;

//! Wire types of the framed-TCP serving protocol.
//!
//! One frame is a 4-byte big-endian length prefix followed by that many
//! bytes of UTF-8 JSON — one [`Request`] per client frame, one [`Response`]
//! per server frame (framing itself lives in `wireframe-serve`; these types
//! only define the JSON payloads, so clients in other languages need nothing
//! but a JSON library and a length-prefix loop).
//!
//! Every request carries a client-chosen `id`; the response echoes it.
//! Server-initiated frames (subscription updates) reuse the `id` of the
//! `subscribe` request that created the subscription, so one connection can
//! interleave request/response traffic with pushed updates and still
//! demultiplex. Requests and responses are tagged with a `"type"` field.
//!
//! The vendored serde shim's derive only covers named-field structs, so the
//! two enums serialize through hand-written `to_json`/`from_json` pairs;
//! component structs ([`RowSet`], [`EmbeddingDelta`], [`ServeStats`]) use
//! the derive. See `docs/protocol.md` for the full schema with examples.

use serde::json::{self, Value};
use serde::Serialize;
use wireframe_graph::EdgeDelta;
use wireframe_obs::{HistogramSnapshot, MetricsSnapshot, BUCKET_COUNT};

/// Protocol revision; servers reject frames whose `"v"` field (when
/// present) is newer than what they speak.
pub const PROTOCOL_VERSION: u64 = 1;

/// A client → server request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Parse + plan (and, when the engine maintains, materialize the
    /// retained view for) `query` without defactorizing any rows.
    Prepare {
        /// Client-chosen id echoed in the response.
        id: u64,
        /// SPARQL conjunctive query text.
        query: String,
    },
    /// Evaluate `query`, returning at most `limit` rows (0 = unlimited).
    Query {
        /// Client-chosen id echoed in the response.
        id: u64,
        /// SPARQL conjunctive query text.
        query: String,
        /// Row cap for the reply; the reply's `total` is always the full
        /// count.
        limit: u64,
    },
    /// Apply a `+`/`-` mutation script (the `wfquery --mutations` format).
    /// Mutations arriving within the server's batch window coalesce into
    /// one applied batch — the response reports the batch totals.
    Mutate {
        /// Client-chosen id echoed in the response.
        id: u64,
        /// Mutation script: one `+ s p o` / `- s p o` line per operation.
        script: String,
        /// When true, the response embeds the applied batch's net
        /// [`EdgeDelta`] (dictionary-encoded ids).
        return_delta: bool,
    },
    /// Register a continuous query: the reply snapshots the current rows,
    /// then every epoch advance pushes an [`EmbeddingDelta`] update frame.
    Subscribe {
        /// Client-chosen id; pushed updates for this subscription carry it.
        id: u64,
        /// SPARQL conjunctive query text.
        query: String,
        /// Row cap for the initial snapshot only (0 = unlimited); pushed
        /// deltas are always complete.
        limit: u64,
    },
    /// Fetch server + session counters.
    Stats {
        /// Client-chosen id echoed in the response.
        id: u64,
    },
    /// Fetch the full metrics registry snapshot (every counter behind
    /// `stats` plus gauges and latency histograms, including per-shard
    /// breakdowns on a sharded server). Versioned alongside `stats`; the
    /// `--metrics-addr` scrape endpoint renders the same snapshot as text.
    Metrics {
        /// Client-chosen id echoed in the response.
        id: u64,
    },
    /// Ask the server to drain in-flight work and stop.
    Shutdown {
        /// Client-chosen id echoed in the response.
        id: u64,
    },
}

impl Request {
    /// The client-chosen request id.
    pub fn id(&self) -> u64 {
        match *self {
            Request::Prepare { id, .. }
            | Request::Query { id, .. }
            | Request::Mutate { id, .. }
            | Request::Subscribe { id, .. }
            | Request::Stats { id }
            | Request::Metrics { id }
            | Request::Shutdown { id } => id,
        }
    }

    /// Decodes a request frame payload.
    pub fn from_json(doc: &Value) -> Result<Request, WireError> {
        check_version(doc)?;
        let id = get_u64(doc, "id")?;
        match get_str(doc, "type")? {
            "prepare" => Ok(Request::Prepare {
                id,
                query: get_str(doc, "query")?.to_owned(),
            }),
            "query" => Ok(Request::Query {
                id,
                query: get_str(doc, "query")?.to_owned(),
                limit: opt_u64(doc, "limit").unwrap_or(0),
            }),
            "mutate" => Ok(Request::Mutate {
                id,
                script: get_str(doc, "script")?.to_owned(),
                return_delta: doc
                    .get("return_delta")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
            }),
            "subscribe" => Ok(Request::Subscribe {
                id,
                query: get_str(doc, "query")?.to_owned(),
                limit: opt_u64(doc, "limit").unwrap_or(0),
            }),
            "stats" => Ok(Request::Stats { id }),
            "metrics" => Ok(Request::Metrics { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(WireError(format!("unknown request type {other:?}"))),
        }
    }
}

impl Serialize for Request {
    fn to_json(&self) -> Value {
        let mut fields = vec![("v".to_owned(), Value::UInt(PROTOCOL_VERSION))];
        match self {
            Request::Prepare { id, query } => {
                fields.push(tag("prepare"));
                fields.push(uint("id", *id));
                fields.push(string("query", query));
            }
            Request::Query { id, query, limit } => {
                fields.push(tag("query"));
                fields.push(uint("id", *id));
                fields.push(string("query", query));
                fields.push(uint("limit", *limit));
            }
            Request::Mutate {
                id,
                script,
                return_delta,
            } => {
                fields.push(tag("mutate"));
                fields.push(uint("id", *id));
                fields.push(string("script", script));
                fields.push(("return_delta".to_owned(), Value::Bool(*return_delta)));
            }
            Request::Subscribe { id, query, limit } => {
                fields.push(tag("subscribe"));
                fields.push(uint("id", *id));
                fields.push(string("query", query));
                fields.push(uint("limit", *limit));
            }
            Request::Stats { id } => {
                fields.push(tag("stats"));
                fields.push(uint("id", *id));
            }
            Request::Metrics { id } => {
                fields.push(tag("metrics"));
                fields.push(uint("id", *id));
            }
            Request::Shutdown { id } => {
                fields.push(tag("shutdown"));
                fields.push(uint("id", *id));
            }
        }
        Value::Object(fields)
    }
}

/// A block of label-resolved result rows.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RowSet {
    /// Number of columns (the query's SELECT arity).
    pub columns: u64,
    /// Full embedding count, even when `rows` is capped by a limit. When
    /// the server answered from a retained top-k prefix without knowing the
    /// full count, this is the number of rows returned and `truncated` says
    /// whether more exist.
    pub total: u64,
    /// The (possibly capped) rows, as node labels in SELECT column order.
    /// Limited answers are in **canonical row order** (lexicographic over
    /// the SELECT columns), so pages are stable across requests.
    pub rows: Vec<Vec<String>>,
    /// Whether a limit dropped rows: the full answer has more rows than
    /// `rows` carries. Absent on the wire (older peers) decodes as `false`.
    pub truncated: bool,
    /// Whether the answer was served from a maintained top-k prefix in
    /// `O(k)` — no defactorization. Absent on the wire decodes as `false`.
    pub prefix_served: bool,
}

impl RowSet {
    /// Decodes the wire form. The `truncated`/`prefix_served` flags are
    /// lenient: frames from peers predating them decode with both off.
    pub fn from_json(doc: &Value) -> Result<RowSet, WireError> {
        Ok(RowSet {
            columns: get_u64(doc, "columns")?,
            total: get_u64(doc, "total")?,
            rows: get_rows(doc, "rows")?,
            truncated: opt_bool(doc, "truncated"),
            prefix_served: opt_bool(doc, "prefix_served"),
        })
    }
}

/// One pushed per-epoch change of a subscribed query's answer: the rows
/// that appeared and disappeared between `prev_epoch` (exclusive) and
/// `epoch` (inclusive). Consecutive updates for one subscription chain —
/// each update's `prev_epoch` equals the previous update's `epoch` (the
/// first chains off the `subscribed` snapshot), so a client can prove it
/// lost nothing. One update may cover several epochs when the server
/// coalesces (the chain stays gap-free either way).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct EmbeddingDelta {
    /// Epoch this delta starts from (exclusive); equals the previous
    /// update's `epoch`.
    pub prev_epoch: u64,
    /// Epoch this delta brings the subscriber to (inclusive).
    pub epoch: u64,
    /// Full embedding count at `epoch`.
    pub total: u64,
    /// Rows present at `epoch` but not at `prev_epoch` (labels, column
    /// order of the subscribed query).
    pub added: Vec<Vec<String>>,
    /// Rows present at `prev_epoch` but not at `epoch`.
    pub removed: Vec<Vec<String>>,
    /// The serving executor's per-shard epoch vector at `epoch` (`[epoch]`
    /// on an unsharded server). Empty when the peer predates epoch vectors;
    /// present, it lets sharded subscribers verify gap-freedom per shard.
    pub epochs: Vec<u64>,
}

impl EmbeddingDelta {
    /// Decodes the wire form.
    pub fn from_json(doc: &Value) -> Result<EmbeddingDelta, WireError> {
        Ok(EmbeddingDelta {
            prev_epoch: get_u64(doc, "prev_epoch")?,
            epoch: get_u64(doc, "epoch")?,
            total: get_u64(doc, "total")?,
            added: get_rows(doc, "added")?,
            removed: get_rows(doc, "removed")?,
            epochs: get_u64_array_or_default(doc, "epochs")?,
        })
    }
}

/// Server + session counters returned by [`Request::Stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct ServeStats {
    /// Current session epoch.
    pub epoch: u64,
    /// The executor's per-shard epoch vector (`[epoch]` on an unsharded
    /// server; one entry per shard on a sharded one). Empty when the peer
    /// predates epoch vectors.
    pub epochs: Vec<u64>,
    /// Connections accepted since startup.
    pub connections: u64,
    /// Requests parsed (all kinds, shed or served).
    pub requests: u64,
    /// Query requests answered with rows.
    pub queries: u64,
    /// Mutate requests acknowledged.
    pub mutations: u64,
    /// Applied mutation batches (each is one epoch advance).
    pub mutation_batches: u64,
    /// Mutate requests that shared a batch with at least one other —
    /// `mutations - mutation_batches` when every batch coalesced.
    pub coalesced_mutations: u64,
    /// Requests shed because the worker queue was full.
    pub shed_queue_full: u64,
    /// Requests shed because they aged past the deadline while queued.
    pub shed_deadline: u64,
    /// Live subscriptions.
    pub subscriptions: u64,
    /// Update frames pushed to subscribers.
    pub updates_pushed: u64,
    /// Session prepared-plan cache hits.
    pub cache_hits: u64,
    /// Session prepared-plan cache misses.
    pub cache_misses: u64,
    /// Session evaluations served straight from a retained view.
    pub view_serves: u64,
    /// Session full pipeline runs.
    pub full_evaluations: u64,
    /// Session retained views maintained in place by mutations.
    pub plans_maintained: u64,
}

impl ServeStats {
    /// Decodes the wire form.
    pub fn from_json(doc: &Value) -> Result<ServeStats, WireError> {
        let field = |key: &str| get_u64(doc, key);
        Ok(ServeStats {
            epoch: field("epoch")?,
            epochs: get_u64_array_or_default(doc, "epochs")?,
            connections: field("connections")?,
            requests: field("requests")?,
            queries: field("queries")?,
            mutations: field("mutations")?,
            mutation_batches: field("mutation_batches")?,
            coalesced_mutations: field("coalesced_mutations")?,
            // Lenient: peers predating the queue/deadline shed split sent a
            // single `shed` total; each missing split field decodes as 0.
            shed_queue_full: opt_u64(doc, "shed_queue_full").unwrap_or(0),
            shed_deadline: opt_u64(doc, "shed_deadline").unwrap_or(0),
            subscriptions: field("subscriptions")?,
            updates_pushed: field("updates_pushed")?,
            cache_hits: field("cache_hits")?,
            cache_misses: field("cache_misses")?,
            view_serves: field("view_serves")?,
            full_evaluations: field("full_evaluations")?,
            plans_maintained: field("plans_maintained")?,
        })
    }
}

/// A server → client response or push frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `prepare` succeeded.
    Prepared {
        /// Echoed request id.
        id: u64,
        /// Epoch the plan (and view, when retained) is current to.
        epoch: u64,
        /// Whether a retained view now serves this query.
        retained: bool,
    },
    /// `query` succeeded.
    Rows {
        /// Echoed request id.
        id: u64,
        /// Epoch of the answered snapshot.
        epoch: u64,
        /// The result rows.
        rows: RowSet,
    },
    /// `mutate` succeeded; reports the **batch** the request was applied
    /// in (several coalesced requests share one batch and see the same
    /// totals).
    Mutated {
        /// Echoed request id.
        id: u64,
        /// Epoch after the applied batch.
        epoch: u64,
        /// Triples that became present, whole batch.
        inserted: u64,
        /// Triples that became absent, whole batch.
        removed: u64,
        /// Number of mutate requests coalesced into the batch (≥ 1).
        coalesced: u64,
        /// Whether the delta store compacted after this batch.
        compacted: bool,
        /// The batch's net edge delta (`return_delta: true` only).
        delta: Option<EdgeDelta>,
    },
    /// `subscribe` succeeded: the initial snapshot.
    Subscribed {
        /// Echoed request id (updates for this subscription reuse it).
        id: u64,
        /// Epoch of the snapshot; the first update chains off it.
        epoch: u64,
        /// Snapshot rows (capped by the request's `limit`).
        rows: RowSet,
    },
    /// Pushed subscription update (server-initiated).
    Update {
        /// Id of the originating `subscribe` request.
        id: u64,
        /// The per-epoch change.
        delta: EmbeddingDelta,
    },
    /// `stats` reply.
    Stats {
        /// Echoed request id.
        id: u64,
        /// The counters.
        stats: ServeStats,
    },
    /// `metrics` reply: the full registry snapshot.
    Metrics {
        /// Echoed request id.
        id: u64,
        /// Current session epoch, so scrapes can be ordered.
        epoch: u64,
        /// The merged serve + executor registry export.
        snapshot: MetricsSnapshot,
    },
    /// Admission control refused the request; retry later. `reason` is
    /// `"queue"` (bounded queue full) or `"deadline"` (aged out before a
    /// worker picked it up).
    Overloaded {
        /// Echoed request id.
        id: u64,
        /// What shed it: `"queue"` or `"deadline"`.
        reason: String,
    },
    /// The request failed (parse error, unknown label, oversized frame…).
    Error {
        /// Echoed request id (0 when the frame was unparseable).
        id: u64,
        /// Human-readable cause.
        message: String,
    },
    /// `shutdown` acknowledged; the server drains and stops.
    ShuttingDown {
        /// Echoed request id.
        id: u64,
    },
}

impl Response {
    /// The echoed request id (0 for errors about unparseable frames).
    pub fn id(&self) -> u64 {
        match *self {
            Response::Prepared { id, .. }
            | Response::Rows { id, .. }
            | Response::Mutated { id, .. }
            | Response::Subscribed { id, .. }
            | Response::Update { id, .. }
            | Response::Stats { id, .. }
            | Response::Metrics { id, .. }
            | Response::Overloaded { id, .. }
            | Response::Error { id, .. }
            | Response::ShuttingDown { id } => id,
        }
    }

    /// Whether this is a server-initiated push frame.
    pub fn is_push(&self) -> bool {
        matches!(self, Response::Update { .. })
    }

    /// Decodes a response frame payload.
    pub fn from_json(doc: &Value) -> Result<Response, WireError> {
        check_version(doc)?;
        let id = get_u64(doc, "id")?;
        match get_str(doc, "type")? {
            "prepared" => Ok(Response::Prepared {
                id,
                epoch: get_u64(doc, "epoch")?,
                retained: doc
                    .get("retained")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| WireError("prepared needs a retained flag".into()))?,
            }),
            "rows" => Ok(Response::Rows {
                id,
                epoch: get_u64(doc, "epoch")?,
                rows: RowSet::from_json(doc)?,
            }),
            "mutated" => Ok(Response::Mutated {
                id,
                epoch: get_u64(doc, "epoch")?,
                inserted: get_u64(doc, "inserted")?,
                removed: get_u64(doc, "removed")?,
                coalesced: get_u64(doc, "coalesced")?,
                compacted: doc
                    .get("compacted")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
                delta: match doc.get("delta") {
                    None | Some(Value::Null) => None,
                    Some(d) => Some(EdgeDelta::from_json(d).map_err(|e| WireError(e.to_string()))?),
                },
            }),
            "subscribed" => Ok(Response::Subscribed {
                id,
                epoch: get_u64(doc, "epoch")?,
                rows: RowSet::from_json(doc)?,
            }),
            "update" => Ok(Response::Update {
                id,
                delta: EmbeddingDelta::from_json(
                    doc.get("delta")
                        .ok_or_else(|| WireError("update needs a delta".into()))?,
                )?,
            }),
            "stats" => Ok(Response::Stats {
                id,
                stats: ServeStats::from_json(
                    doc.get("stats")
                        .ok_or_else(|| WireError("stats reply needs stats".into()))?,
                )?,
            }),
            "metrics" => Ok(Response::Metrics {
                id,
                epoch: get_u64(doc, "epoch")?,
                snapshot: snapshot_from_json(
                    doc.get("snapshot")
                        .ok_or_else(|| WireError("metrics reply needs a snapshot".into()))?,
                )?,
            }),
            "overloaded" => Ok(Response::Overloaded {
                id,
                reason: get_str(doc, "reason")?.to_owned(),
            }),
            "error" => Ok(Response::Error {
                id,
                message: get_str(doc, "message")?.to_owned(),
            }),
            "shutting_down" => Ok(Response::ShuttingDown { id }),
            other => Err(WireError(format!("unknown response type {other:?}"))),
        }
    }
}

impl Serialize for Response {
    fn to_json(&self) -> Value {
        let mut fields = vec![("v".to_owned(), Value::UInt(PROTOCOL_VERSION))];
        match self {
            Response::Prepared {
                id,
                epoch,
                retained,
            } => {
                fields.push(tag("prepared"));
                fields.push(uint("id", *id));
                fields.push(uint("epoch", *epoch));
                fields.push(("retained".to_owned(), Value::Bool(*retained)));
            }
            Response::Rows { id, epoch, rows } => {
                fields.push(tag("rows"));
                fields.push(uint("id", *id));
                fields.push(uint("epoch", *epoch));
                push_rowset(&mut fields, rows);
            }
            Response::Mutated {
                id,
                epoch,
                inserted,
                removed,
                coalesced,
                compacted,
                delta,
            } => {
                fields.push(tag("mutated"));
                fields.push(uint("id", *id));
                fields.push(uint("epoch", *epoch));
                fields.push(uint("inserted", *inserted));
                fields.push(uint("removed", *removed));
                fields.push(uint("coalesced", *coalesced));
                fields.push(("compacted".to_owned(), Value::Bool(*compacted)));
                fields.push(("delta".to_owned(), delta.to_json()));
            }
            Response::Subscribed { id, epoch, rows } => {
                fields.push(tag("subscribed"));
                fields.push(uint("id", *id));
                fields.push(uint("epoch", *epoch));
                push_rowset(&mut fields, rows);
            }
            Response::Update { id, delta } => {
                fields.push(tag("update"));
                fields.push(uint("id", *id));
                fields.push(("delta".to_owned(), delta.to_json()));
            }
            Response::Stats { id, stats } => {
                fields.push(tag("stats"));
                fields.push(uint("id", *id));
                fields.push(("stats".to_owned(), stats.to_json()));
            }
            Response::Metrics {
                id,
                epoch,
                snapshot,
            } => {
                fields.push(tag("metrics"));
                fields.push(uint("id", *id));
                fields.push(uint("epoch", *epoch));
                fields.push(("snapshot".to_owned(), snapshot_to_json(snapshot)));
            }
            Response::Overloaded { id, reason } => {
                fields.push(tag("overloaded"));
                fields.push(uint("id", *id));
                fields.push(string("reason", reason));
            }
            Response::Error { id, message } => {
                fields.push(tag("error"));
                fields.push(uint("id", *id));
                fields.push(string("message", message));
            }
            Response::ShuttingDown { id } => {
                fields.push(tag("shutting_down"));
                fields.push(uint("id", *id));
            }
        }
        Value::Object(fields)
    }
}

/// A malformed or version-incompatible frame payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Parses a frame payload string into a JSON document.
pub fn parse_frame(payload: &str) -> Result<Value, WireError> {
    json::from_str(payload).map_err(|e| WireError(format!("bad frame json: {e}")))
}

fn check_version(doc: &Value) -> Result<(), WireError> {
    match doc.get("v").and_then(Value::as_u64) {
        None => Ok(()), // pre-versioning peers speak v1
        Some(v) if v <= PROTOCOL_VERSION => Ok(()),
        Some(v) => Err(WireError(format!(
            "frame speaks protocol v{v}, this side speaks v{PROTOCOL_VERSION}"
        ))),
    }
}

fn tag(name: &str) -> (String, Value) {
    ("type".to_owned(), Value::Str(name.to_owned()))
}

fn uint(key: &str, v: u64) -> (String, Value) {
    (key.to_owned(), Value::UInt(v))
}

fn string(key: &str, v: &str) -> (String, Value) {
    (key.to_owned(), Value::Str(v.to_owned()))
}

fn push_rowset(fields: &mut Vec<(String, Value)>, rows: &RowSet) {
    fields.push(uint("columns", rows.columns));
    fields.push(uint("total", rows.total));
    fields.push(("rows".to_owned(), rows.rows.to_json()));
    fields.push(("truncated".to_owned(), Value::Bool(rows.truncated)));
    fields.push(("prefix_served".to_owned(), Value::Bool(rows.prefix_served)));
}

fn get_u64(doc: &Value, key: &str) -> Result<u64, WireError> {
    opt_u64(doc, key).ok_or_else(|| WireError(format!("missing or non-integer field {key:?}")))
}

fn opt_u64(doc: &Value, key: &str) -> Option<u64> {
    doc.get(key).and_then(Value::as_u64)
}

/// A lenient optional bool: missing (older peers) reads as `false`.
fn opt_bool(doc: &Value, key: &str) -> bool {
    doc.get(key).and_then(Value::as_bool).unwrap_or(false)
}

fn get_str<'a>(doc: &'a Value, key: &str) -> Result<&'a str, WireError> {
    doc.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| WireError(format!("missing or non-string field {key:?}")))
}

/// Decodes an optional array of unsigned integers; a missing field decodes
/// as empty (pre-epoch-vector peers), a present-but-malformed one errors.
fn get_u64_array_or_default(doc: &Value, key: &str) -> Result<Vec<u64>, WireError> {
    match doc.get(key) {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(v) => v
            .as_array()
            .ok_or_else(|| WireError(format!("{key:?} must be an array")))?
            .iter()
            .map(|e| {
                e.as_u64()
                    .ok_or_else(|| WireError(format!("{key:?} entries must be unsigned integers")))
            })
            .collect(),
    }
}

/// Encodes a [`MetricsSnapshot`]: counters and gauges as name→value
/// objects, histograms as `{count, sum, max, buckets: [[index, n], …]}`
/// with only the non-zero buckets listed (a latency histogram touches a
/// handful of its 300+ buckets, so sparse pairs keep frames small).
fn snapshot_to_json(snapshot: &MetricsSnapshot) -> Value {
    let uint_map = |map: &std::collections::BTreeMap<String, u64>| {
        Value::Object(
            map.iter()
                .map(|(name, &v)| (name.clone(), Value::UInt(v)))
                .collect(),
        )
    };
    let histograms = snapshot
        .histograms
        .iter()
        .map(|(name, hist)| {
            let buckets = hist
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n != 0)
                .map(|(index, &n)| Value::Array(vec![Value::UInt(index as u64), Value::UInt(n)]))
                .collect();
            (
                name.clone(),
                Value::Object(vec![
                    uint("count", hist.count),
                    uint("sum", hist.sum),
                    uint("max", hist.max),
                    ("buckets".to_owned(), Value::Array(buckets)),
                ]),
            )
        })
        .collect();
    Value::Object(vec![
        ("counters".to_owned(), uint_map(&snapshot.counters)),
        ("gauges".to_owned(), uint_map(&snapshot.gauges)),
        ("histograms".to_owned(), Value::Object(histograms)),
    ])
}

/// Decodes the [`snapshot_to_json`] wire form. Missing sections decode as
/// empty, so older peers' leaner snapshots still parse.
fn snapshot_from_json(doc: &Value) -> Result<MetricsSnapshot, WireError> {
    let uint_map = |key: &str| -> Result<std::collections::BTreeMap<String, u64>, WireError> {
        match doc.get(key) {
            None | Some(Value::Null) => Ok(Default::default()),
            Some(Value::Object(fields)) => fields
                .iter()
                .map(|(name, v)| {
                    v.as_u64()
                        .map(|v| (name.clone(), v))
                        .ok_or_else(|| WireError(format!("{key:?} values must be unsigned")))
                })
                .collect(),
            Some(_) => Err(WireError(format!("{key:?} must be an object"))),
        }
    };
    let mut snapshot = MetricsSnapshot {
        counters: uint_map("counters")?,
        gauges: uint_map("gauges")?,
        histograms: Default::default(),
    };
    let histograms = match doc.get("histograms") {
        None | Some(Value::Null) => &[],
        Some(Value::Object(fields)) => fields.as_slice(),
        Some(_) => return Err(WireError("\"histograms\" must be an object".into())),
    };
    for (name, h) in histograms {
        let mut hist = HistogramSnapshot {
            count: get_u64(h, "count")?,
            sum: get_u64(h, "sum")?,
            max: get_u64(h, "max")?,
            buckets: vec![0; BUCKET_COUNT],
        };
        let pairs = h
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or_else(|| WireError(format!("histogram {name:?} needs a buckets array")))?;
        for pair in pairs {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| WireError("histogram buckets must be [index, n] pairs".into()))?;
            let (index, n) = (pair[0].as_u64(), pair[1].as_u64());
            let (Some(index), Some(n)) = (index, n) else {
                return Err(WireError("histogram bucket pairs must be unsigned".into()));
            };
            if (index as usize) < hist.buckets.len() {
                hist.buckets[index as usize] += n;
            }
            // An index beyond BUCKET_COUNT means the peer's histogram is
            // finer-grained than ours; drop the bucket (count/sum stay
            // authoritative) rather than reject the frame.
        }
        snapshot.histograms.insert(name.clone(), hist);
    }
    Ok(snapshot)
}

fn get_rows(doc: &Value, key: &str) -> Result<Vec<Vec<String>>, WireError> {
    doc.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| WireError(format!("missing or non-array field {key:?}")))?
        .iter()
        .map(|row| {
            row.as_array()
                .ok_or_else(|| WireError(format!("{key:?} rows must be arrays")))?
                .iter()
                .map(|cell| {
                    cell.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| WireError(format!("{key:?} cells must be strings")))
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let text = json::to_string(&req);
        let doc = parse_frame(&text).unwrap();
        assert_eq!(Request::from_json(&doc).unwrap(), req, "{text}");
    }

    fn round_trip_response(resp: Response) {
        let text = json::to_string(&resp);
        let doc = parse_frame(&text).unwrap();
        assert_eq!(Response::from_json(&doc).unwrap(), resp, "{text}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Prepare {
            id: 1,
            query: "SELECT ?x WHERE { ?x <knows> ?y . }".into(),
        });
        round_trip_request(Request::Query {
            id: 2,
            query: "SELECT * WHERE { ?x <knows> ?y . }".into(),
            limit: 10,
        });
        round_trip_request(Request::Mutate {
            id: 3,
            script: "+ a knows b\n- a knows c\n".into(),
            return_delta: true,
        });
        round_trip_request(Request::Subscribe {
            id: 4,
            query: "SELECT ?x WHERE { ?x <knows> ?y . }".into(),
            limit: 0,
        });
        round_trip_request(Request::Stats { id: 5 });
        round_trip_request(Request::Shutdown { id: 6 });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Prepared {
            id: 1,
            epoch: 3,
            retained: true,
        });
        round_trip_response(Response::Rows {
            id: 2,
            epoch: 3,
            rows: RowSet {
                columns: 2,
                total: 4,
                rows: vec![vec!["a".into(), "b".into()], vec!["c".into(), "d".into()]],
                truncated: true,
                prefix_served: true,
            },
        });
        round_trip_response(Response::Mutated {
            id: 3,
            epoch: 4,
            inserted: 2,
            removed: 1,
            coalesced: 3,
            compacted: false,
            delta: None,
        });
        round_trip_response(Response::Subscribed {
            id: 4,
            epoch: 4,
            rows: RowSet::default(),
        });
        round_trip_response(Response::Update {
            id: 4,
            delta: EmbeddingDelta {
                prev_epoch: 4,
                epoch: 5,
                total: 7,
                added: vec![vec!["x".into()]],
                removed: vec![],
                epochs: vec![3, 2],
            },
        });
        round_trip_response(Response::Stats {
            id: 5,
            stats: ServeStats {
                epoch: 5,
                epochs: vec![5],
                requests: 12,
                ..ServeStats::default()
            },
        });
        round_trip_response(Response::Overloaded {
            id: 6,
            reason: "queue".into(),
        });
        round_trip_response(Response::Error {
            id: 0,
            message: "bad frame".into(),
        });
        round_trip_response(Response::ShuttingDown { id: 7 });
    }

    #[test]
    fn metrics_snapshots_round_trip() {
        use wireframe_obs::Registry;
        let registry = Registry::new();
        registry.counter("serve.requests").add(12);
        registry.counter("executor.cache_hits").add(3);
        registry.gauge("graph.delta_overlay_edges").set(40);
        let h = registry.histogram("query.latency_us");
        h.record(150);
        h.record(9_000);
        h.record(u64::MAX); // saturating top bucket survives the wire
        round_trip_response(Response::Metrics {
            id: 8,
            epoch: 5,
            snapshot: registry.snapshot(),
        });
        round_trip_request(Request::Metrics { id: 8 });
        // An empty snapshot (counters-only registry, nothing recorded).
        round_trip_response(Response::Metrics {
            id: 9,
            epoch: 0,
            snapshot: Registry::new().snapshot(),
        });
    }

    #[test]
    fn metrics_snapshots_decode_leniently() {
        // Missing sections decode empty; bucket indexes beyond our
        // resolution are dropped, not fatal.
        let doc = parse_frame(r#"{"counters":{"a":1}}"#).unwrap();
        let snap = snapshot_from_json(&doc).unwrap();
        assert_eq!(snap.counter("a"), 1);
        assert!(snap.gauges.is_empty() && snap.histograms.is_empty());
        let doc = parse_frame(
            r#"{"histograms":{"h":{"count":2,"sum":10,"max":9,"buckets":[[1,1],[99999,1]]}}}"#,
        )
        .unwrap();
        let snap = snapshot_from_json(&doc).unwrap();
        let h = snap.histogram("h").unwrap();
        assert_eq!((h.count, h.buckets[1]), (2, 1));
        // Present but malformed still errors.
        let doc = parse_frame(r#"{"counters":{"a":"x"}}"#).unwrap();
        assert!(snapshot_from_json(&doc).is_err());
        let doc =
            parse_frame(r#"{"histograms":{"h":{"count":1,"sum":1,"max":1,"buckets":[[1]]}}}"#)
                .unwrap();
        assert!(snapshot_from_json(&doc).is_err());
    }

    #[test]
    fn shed_split_decodes_leniently_for_old_peers() {
        // A pre-split peer reports neither shed field: decode as zeros.
        let doc = parse_frame(
            r#"{"epoch":1,"connections":1,"requests":2,"queries":1,"mutations":0,
                "mutation_batches":0,"coalesced_mutations":0,"subscriptions":0,
                "updates_pushed":0,"cache_hits":1,"cache_misses":1,"view_serves":1,
                "full_evaluations":1,"plans_maintained":0}"#,
        )
        .unwrap();
        let stats = ServeStats::from_json(&doc).unwrap();
        assert_eq!((stats.shed_queue_full, stats.shed_deadline), (0, 0));
        assert_eq!(stats.requests, 2, "known fields still decode");
        // Both split fields round-trip when present.
        round_trip_response(Response::Stats {
            id: 1,
            stats: ServeStats {
                shed_queue_full: 3,
                shed_deadline: 2,
                ..ServeStats::default()
            },
        });
    }

    #[test]
    fn mutated_delta_round_trips_through_graph_types() {
        use wireframe_graph::{NodeId, PredId, Triple};
        let delta = EdgeDelta::new(
            vec![Triple::new(NodeId(1), PredId(0), NodeId(2))],
            vec![Triple::new(NodeId(3), PredId(1), NodeId(4))],
        );
        round_trip_response(Response::Mutated {
            id: 9,
            epoch: 1,
            inserted: 1,
            removed: 1,
            coalesced: 1,
            compacted: true,
            delta: Some(delta),
        });
    }

    #[test]
    fn unknown_types_and_newer_versions_are_rejected() {
        let doc = parse_frame(r#"{"type":"warp","id":1}"#).unwrap();
        assert!(Request::from_json(&doc).is_err());
        assert!(Response::from_json(&doc).is_err());
        let doc = parse_frame(r#"{"v":99,"type":"stats","id":1}"#).unwrap();
        let err = Request::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("protocol"), "{err}");
        // Missing version field = v1 peer.
        let doc = parse_frame(r#"{"type":"stats","id":1}"#).unwrap();
        assert_eq!(Request::from_json(&doc).unwrap(), Request::Stats { id: 1 });
    }

    #[test]
    fn epoch_vectors_decode_with_a_default_for_old_peers() {
        // A pre-epoch-vector peer omits `epochs`: decode to empty, not error.
        let doc =
            parse_frame(r#"{"prev_epoch":1,"epoch":2,"total":0,"added":[],"removed":[]}"#).unwrap();
        let delta = EmbeddingDelta::from_json(&doc).unwrap();
        assert!(delta.epochs.is_empty());
        // Present but malformed still errors.
        let doc = parse_frame(
            r#"{"prev_epoch":1,"epoch":2,"total":0,"added":[],"removed":[],"epochs":["x"]}"#,
        )
        .unwrap();
        assert!(EmbeddingDelta::from_json(&doc).is_err());
    }

    #[test]
    fn rowset_limit_flags_decode_leniently_for_old_peers() {
        // A pre-top-k peer sends neither flag: both decode off, rows intact.
        let doc = parse_frame(r#"{"columns":1,"total":3,"rows":[["a"],["b"]]}"#).unwrap();
        let rows = RowSet::from_json(&doc).unwrap();
        assert!(!rows.truncated && !rows.prefix_served);
        assert_eq!(rows.rows.len(), 2);
        // Explicit flags decode as sent.
        let doc = parse_frame(
            r#"{"columns":1,"total":2,"rows":[["a"],["b"]],"truncated":true,"prefix_served":true}"#,
        )
        .unwrap();
        let rows = RowSet::from_json(&doc).unwrap();
        assert!(rows.truncated && rows.prefix_served);
    }

    #[test]
    fn row_parsing_rejects_malformed_cells() {
        let doc = parse_frame(r#"{"columns":1,"total":1,"rows":[[1]]}"#).unwrap();
        assert!(RowSet::from_json(&doc).is_err());
        let doc = parse_frame(r#"{"columns":1,"total":1,"rows":["x"]}"#).unwrap();
        assert!(RowSet::from_json(&doc).is_err());
    }
}

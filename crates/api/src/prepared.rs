//! Prepared queries: a conjunctive query after engine-side preparation.

use std::any::Any;
use std::sync::OnceLock;

use wireframe_graph::PredId;
use wireframe_query::canonical::{plan_cache_key, predicate_footprint, QuerySignature};
use wireframe_query::{ConjunctiveQuery, QueryGraph};

/// A query prepared by one engine: the resolved [`ConjunctiveQuery`],
/// structural facts the planner derived, and an optional engine-private plan
/// payload.
///
/// The payload is type-erased so that this crate does not depend on any
/// engine's plan representation; engines downcast it back with
/// [`PreparedQuery::plan`]. Engines without a planning phase (the baselines)
/// simply leave it empty.
pub struct PreparedQuery {
    engine: String,
    query: ConjunctiveQuery,
    signature: OnceLock<QuerySignature>,
    cyclic: bool,
    footprint: Vec<PredId>,
    payload: Option<Box<dyn Any + Send + Sync>>,
}

impl PreparedQuery {
    /// Prepares `query` for `engine` with no plan payload, computing the
    /// cyclicity of the query graph and its predicate footprint (the
    /// canonical form is computed lazily on first use of
    /// [`PreparedQuery::signature`]).
    pub fn new(engine: impl Into<String>, query: ConjunctiveQuery) -> Self {
        let cyclic = QueryGraph::new(&query).is_cyclic();
        let footprint = predicate_footprint(&query);
        PreparedQuery {
            engine: engine.into(),
            query,
            signature: OnceLock::new(),
            cyclic,
            footprint,
            payload: None,
        }
    }

    /// Attaches an engine-private plan payload.
    pub fn with_payload(mut self, payload: impl Any + Send + Sync) -> Self {
        self.payload = Some(Box::new(payload));
        self
    }

    /// The name of the engine that prepared this query.
    pub fn engine(&self) -> &str {
        &self.engine
    }

    /// The underlying conjunctive query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The order-sensitive canonical form of the query
    /// (`wireframe_query::canonical::plan_cache_key`): stable across variable
    /// renaming and pattern reordering, but *not* across SELECT-clause column
    /// reordering — which makes it safe to key a plan cache on, unlike the
    /// miner's sorted `signature`. Computed lazily and memoized.
    pub fn signature(&self) -> &QuerySignature {
        self.signature.get_or_init(|| plan_cache_key(&self.query))
    }

    /// Whether the query graph is cyclic.
    pub fn cyclic(&self) -> bool {
        self.cyclic
    }

    /// The sorted, deduplicated predicate identifiers the query touches
    /// (`wireframe_query::canonical::predicate_footprint`). Plan caches use
    /// it to decide which entries a data mutation invalidates.
    pub fn footprint(&self) -> &[PredId] {
        &self.footprint
    }

    /// Downcasts the engine-private plan payload, if one of type `T` is
    /// attached.
    pub fn plan<T: Any>(&self) -> Option<&T> {
        self.payload.as_deref().and_then(|p| p.downcast_ref())
    }
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("engine", &self.engine)
            .field("signature", &self.signature.get().map(|s| s.as_str()))
            .field("cyclic", &self.cyclic)
            .field("has_payload", &self.payload.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireframe_graph::GraphBuilder;
    use wireframe_query::CqBuilder;

    fn chain_query() -> ConjunctiveQuery {
        let mut b = GraphBuilder::new();
        b.add("a", "p", "b");
        let g = b.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "p", "?y").unwrap();
        qb.build().unwrap()
    }

    #[test]
    fn accessors_and_payload_roundtrip() {
        let q = chain_query();
        let p = PreparedQuery::new("test", q).with_payload(vec![1usize, 2, 3]);
        assert_eq!(p.engine(), "test");
        assert!(!p.cyclic());
        assert_eq!(p.footprint(), &[PredId(0)], "the single predicate p");
        assert_eq!(p.plan::<Vec<usize>>(), Some(&vec![1usize, 2, 3]));
        assert!(p.plan::<String>().is_none(), "wrong type downcasts to None");
        assert!(!p.signature().as_str().is_empty());
        assert!(format!("{p:?}").contains("has_payload: true"));
    }

    #[test]
    fn no_payload_by_default() {
        let p = PreparedQuery::new("test", chain_query());
        assert!(p.plan::<Vec<usize>>().is_none());
    }
}

//! The workspace-wide error type.

use std::fmt;

use wireframe_graph::GraphError;
use wireframe_query::QueryError;

/// The unified error of the Wireframe workspace.
///
/// Engine-layer errors (`EngineError` from `wireframe-core`, `BaselineError`
/// from `wireframe-baseline`) convert into this type via `From` impls defined
/// in their own crates, so every public entry point — [`crate::Engine`],
/// the `Session` facade, the CLI — can speak one error language.
#[derive(Debug)]
pub enum WireframeError {
    /// The query is malformed (parse error, unknown label, empty, …).
    Query(QueryError),
    /// Graph loading or construction failed.
    Graph(GraphError),
    /// The query graph is not connected. Evaluating a disconnected CQ is a
    /// cross product of its components; every engine in this workspace (like
    /// the paper) restricts itself to connected query graphs.
    DisconnectedQuery,
    /// `EngineRegistry::build` was asked for a name nothing registered.
    UnknownEngine {
        /// The name that was requested.
        requested: String,
        /// The names that are registered, for the error message.
        known: Vec<String>,
    },
    /// A [`crate::PreparedQuery`] produced by one engine was handed to
    /// another.
    EngineMismatch {
        /// The engine that prepared the query.
        prepared_by: String,
        /// The engine that was asked to evaluate it.
        evaluated_by: String,
    },
    /// An internal invariant was violated; indicates a bug, reported instead
    /// of panicking so callers can surface it.
    Internal(String),
}

impl fmt::Display for WireframeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireframeError::Query(e) => write!(f, "query error: {e}"),
            WireframeError::Graph(e) => write!(f, "graph error: {e}"),
            WireframeError::DisconnectedQuery => {
                write!(
                    f,
                    "the query graph is not connected; split the query instead"
                )
            }
            WireframeError::UnknownEngine { requested, known } => {
                write!(
                    f,
                    "unknown engine {requested:?}; registered engines: {}",
                    known.join(", ")
                )
            }
            WireframeError::EngineMismatch {
                prepared_by,
                evaluated_by,
            } => {
                write!(
                    f,
                    "prepared query belongs to engine {prepared_by:?}, \
                     not {evaluated_by:?}"
                )
            }
            WireframeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for WireframeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireframeError::Query(e) => Some(e),
            WireframeError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for WireframeError {
    fn from(e: QueryError) -> Self {
        WireframeError::Query(e)
    }
}

impl From<GraphError> for WireframeError {
    fn from(e: GraphError) -> Self {
        WireframeError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = WireframeError::from(QueryError::EmptyQuery);
        assert!(e.to_string().contains("query error"));
        assert!(e.source().is_some());

        let e = WireframeError::from(GraphError::Parse("bad".into()));
        assert!(e.to_string().contains("graph error"));

        let e = WireframeError::UnknownEngine {
            requested: "nope".into(),
            known: vec!["wireframe".into(), "relational".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("nope") && msg.contains("wireframe, relational"));
        assert!(e.source().is_none());

        let e = WireframeError::EngineMismatch {
            prepared_by: "a".into(),
            evaluated_by: "b".into(),
        };
        assert!(e.to_string().contains("belongs to engine"));

        assert!(WireframeError::DisconnectedQuery
            .to_string()
            .contains("not connected"));
        assert!(WireframeError::Internal("x".into())
            .to_string()
            .contains("x"));
    }
}

//! # wireframe-serve — the network serving front-end
//!
//! The paper's bet — ship the small factorized answer graph, defactorize
//! only at the consumer — pays off end-to-end once there is a consumer
//! *boundary*: a server process that holds the retained views and streams
//! compact per-epoch deltas to clients instead of full embedding sets.
//! This crate is that boundary: a hand-rolled `std::net` framed-TCP server
//! over any [`wireframe::QueryExecutor`] — a single [`wireframe::Session`]
//! or a [`wireframe::ShardedCluster`] (`wfserve --shards N`); the server
//! never names a concrete serving type.
//!
//! * [`frame`] — length-prefixed framing (4-byte big-endian length +
//!   UTF-8 JSON), incremental across read timeouts,
//! * [`Server`] — thread-per-connection acceptor, bounded worker pool,
//!   admission control (bounded queues shed with `overloaded`, per-request
//!   deadlines), a write batcher coalescing concurrent mutations into one
//!   maintenance pass, and per-epoch subscription fan-out driven by
//!   [`wireframe::QueryExecutor::add_epoch_listener`],
//! * [`Client`] — the blocking client the tests and the `serve-net` bench
//!   lane drive real sockets with,
//! * `wfserve` — the server binary.
//!
//! Wire payloads are the `wireframe_api::wire` types; the full schema with
//! examples lives in `docs/protocol.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
mod server;

pub use client::{Client, ClientError, MutateAck, QueryAnswer};
pub use server::{ServeConfig, Server};
pub use wireframe_api::wire;

//! A blocking client for the framed-TCP protocol.
//!
//! One [`Client`] wraps one connection. Requests are synchronous — send a
//! frame, read frames until the response with the matching id arrives.
//! Server-initiated `update` frames that arrive while waiting are buffered
//! and handed out in arrival order by [`Client::next_update`], so a single
//! connection can mix request/response traffic with an active subscription
//! without losing pushes.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use serde::json;
use wireframe_api::obs::MetricsSnapshot;
use wireframe_api::wire::{self, EmbeddingDelta, Request, Response, RowSet, ServeStats};

use crate::frame::{self, FrameReader};

/// What went wrong talking to the server.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes the server closing the connection).
    Io(io::Error),
    /// The peer sent a frame this client cannot make sense of.
    Protocol(String),
    /// The server answered with an `error` response.
    Server(String),
    /// Admission control shed the request (`reason`: `"queue"` or
    /// `"deadline"`); retrying later is expected to succeed.
    Overloaded(String),
    /// The server acknowledged it is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Overloaded(reason) => write!(f, "overloaded ({reason})"),
            ClientError::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The answer to a successful `query` request.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// Epoch of the answered snapshot.
    pub epoch: u64,
    /// The (possibly limit-capped) rows.
    pub rows: RowSet,
}

/// The acknowledgement of a `mutate` request.
#[derive(Debug, Clone, PartialEq)]
pub struct MutateAck {
    /// Epoch after the applied batch.
    pub epoch: u64,
    /// Triples that became present, whole batch.
    pub inserted: u64,
    /// Triples that became absent, whole batch.
    pub removed: u64,
    /// Mutate requests coalesced into the batch (≥ 1).
    pub coalesced: u64,
}

/// A blocking connection to a `wireframe-serve` server.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    next_id: u64,
    max_frame: usize,
    pending_updates: VecDeque<EmbeddingDelta>,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            reader: FrameReader::new(),
            next_id: 1,
            max_frame: frame::DEFAULT_MAX_FRAME,
            pending_updates: VecDeque::new(),
        })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends `request` and blocks until the response with the matching id
    /// arrives, buffering any pushed updates seen along the way.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.stream.set_read_timeout(None)?;
        frame::write_frame(&mut self.stream, &json::to_string(request))?;
        let want = request.id();
        loop {
            let response = self.read_response()?.ok_or_else(|| {
                ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))
            })?;
            match response {
                Response::Update { delta, .. } => self.pending_updates.push_back(delta),
                response if response.id() == want => return Ok(response),
                // An id-0 error about an unparseable frame aborts the wait:
                // the server could not attribute it, assume it was ours.
                Response::Error { id: 0, message } => return Err(ClientError::Server(message)),
                _ => continue, // stale response for an abandoned request
            }
        }
    }

    fn read_response(&mut self) -> Result<Option<Response>, ClientError> {
        match self.reader.read_frame(&mut self.stream, self.max_frame)? {
            None => Ok(None),
            Some(payload) => {
                let doc = wire::parse_frame(&payload)
                    .map_err(|e| ClientError::Protocol(e.to_string()))?;
                Response::from_json(&doc)
                    .map(Some)
                    .map_err(|e| ClientError::Protocol(e.to_string()))
            }
        }
    }

    /// Maps the error-ish responses every helper shares.
    fn fail<T>(response: Response) -> Result<T, ClientError> {
        match response {
            Response::Error { message, .. } => Err(ClientError::Server(message)),
            Response::Overloaded { reason, .. } => Err(ClientError::Overloaded(reason)),
            Response::ShuttingDown { .. } => Err(ClientError::ShuttingDown),
            other => Err(ClientError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// `prepare`: plan (and retain the view for) `query`; returns
    /// `(epoch, retained)`.
    pub fn prepare(&mut self, query: &str) -> Result<(u64, bool), ClientError> {
        let id = self.fresh_id();
        let request = Request::Prepare {
            id,
            query: query.to_owned(),
        };
        match self.roundtrip(&request)? {
            Response::Prepared {
                epoch, retained, ..
            } => Ok((epoch, retained)),
            other => Client::fail(other),
        }
    }

    /// `query` with a row cap (0 = unlimited). The cap is pushed into
    /// evaluation server-side, not applied after the fact: a limited answer
    /// carries the **canonical first `limit` rows** (lexicographic over the
    /// SELECT columns — stable across requests), [`RowSet::truncated`] says
    /// whether rows were dropped, and [`RowSet::prefix_served`] says the
    /// server answered from a maintained top-k prefix in `O(k)`.
    pub fn query(&mut self, query: &str, limit: u64) -> Result<QueryAnswer, ClientError> {
        let id = self.fresh_id();
        let request = Request::Query {
            id,
            query: query.to_owned(),
            limit,
        };
        match self.roundtrip(&request)? {
            Response::Rows { epoch, rows, .. } => Ok(QueryAnswer { epoch, rows }),
            other => Client::fail(other),
        }
    }

    /// [`Client::query`] under its serving-contract name, mirroring
    /// `QueryExecutor::query_limited` on the session side.
    pub fn query_limited(&mut self, query: &str, limit: u64) -> Result<QueryAnswer, ClientError> {
        self.query(query, limit)
    }

    /// `mutate`: apply a `+`/`-` script (possibly coalesced server-side).
    pub fn mutate(&mut self, script: &str) -> Result<MutateAck, ClientError> {
        let id = self.fresh_id();
        let request = Request::Mutate {
            id,
            script: script.to_owned(),
            return_delta: false,
        };
        match self.roundtrip(&request)? {
            Response::Mutated {
                epoch,
                inserted,
                removed,
                coalesced,
                ..
            } => Ok(MutateAck {
                epoch,
                inserted,
                removed,
                coalesced,
            }),
            other => Client::fail(other),
        }
    }

    /// `subscribe`: returns the snapshot `(epoch, rows)`; subsequent
    /// changes arrive via [`Client::next_update`].
    pub fn subscribe(&mut self, query: &str, limit: u64) -> Result<(u64, RowSet), ClientError> {
        let id = self.fresh_id();
        let request = Request::Subscribe {
            id,
            query: query.to_owned(),
            limit,
        };
        match self.roundtrip(&request)? {
            Response::Subscribed { epoch, rows, .. } => Ok((epoch, rows)),
            other => Client::fail(other),
        }
    }

    /// `stats`: server + session counters.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        let id = self.fresh_id();
        match self.roundtrip(&Request::Stats { id })? {
            Response::Stats { stats, .. } => Ok(stats),
            other => Client::fail(other),
        }
    }

    /// `metrics`: the full registry snapshot (serve layer merged with the
    /// executor's, including per-shard breakdowns on a cluster), plus the
    /// epoch it was taken at.
    pub fn metrics(&mut self) -> Result<(u64, MetricsSnapshot), ClientError> {
        let id = self.fresh_id();
        match self.roundtrip(&Request::Metrics { id })? {
            Response::Metrics {
                epoch, snapshot, ..
            } => Ok((epoch, snapshot)),
            other => Client::fail(other),
        }
    }

    /// Asks the server to drain and stop; `Ok` means it acknowledged.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        match self.roundtrip(&Request::Shutdown { id })? {
            Response::ShuttingDown { .. } => Ok(()),
            other => Client::fail(other),
        }
    }

    /// The next pushed subscription update, waiting up to `timeout`.
    /// `Ok(None)` means no update arrived in time; `Io(UnexpectedEof)`
    /// means the server closed the connection.
    pub fn next_update(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<EmbeddingDelta>, ClientError> {
        if let Some(update) = self.pending_updates.pop_front() {
            return Ok(Some(update));
        }
        // A zero Duration means "no timeout" to set_read_timeout; clamp up.
        self.stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let outcome = loop {
            match self.read_response() {
                Ok(Some(Response::Update { delta, .. })) => break Ok(Some(delta)),
                Ok(Some(_)) => continue, // stale response for an abandoned request
                Ok(None) => {
                    break Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Err(ClientError::Io(e))
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    break Ok(None)
                }
                Err(e) => break Err(e),
            }
        };
        self.stream.set_read_timeout(None)?;
        outcome
    }
}

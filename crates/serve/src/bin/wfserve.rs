//! `wfserve` — serve a triple file over the framed-TCP protocol.
//!
//! ```text
//! wfserve DATA.nt [options]
//!
//! options:
//!   --addr <host:port>        listen address (default 127.0.0.1:4151; port 0 = ephemeral)
//!   --engine <name>           engine to evaluate with (default wireframe)
//!   --store csr|map|delta     graph storage backend (default delta — the live-serving store)
//!   --workers <N>             worker threads for read requests (default 4)
//!   --queue-depth <N>         bounded queue length before shedding (default 128)
//!   --deadline-ms <N>         per-request deadline while queued (default 2000)
//!   --batch-window-ms <N>     mutation coalescing window (default 2)
//!   --threads <N>             phase-two worker threads per evaluation (default 1; 0 = auto)
//!   --shards <N>              serve through a sharded cluster of N vertex
//!                             partitions (default 1 = single session)
//!   --metrics-addr <host:port> second listener answering HTTP GETs with a
//!                             Prometheus-style metrics rendering (port 0 = ephemeral)
//!   --slow-query-ms <N>       log completed span trees of queries slower
//!                             than N ms to stderr (default off)
//!   --obs on|off              telemetry histograms/spans (default on;
//!                             counters stay live either way)
//! ```
//!
//! The server runs until a client sends a `shutdown` request or stdin
//! reaches EOF (`wfserve data.nt < /dev/null` serves until killed — with
//! `#![forbid(unsafe_code)]` and no crates.io there is no signal handling,
//! so embedders and scripts use one of those two levers), then drains
//! in-flight work and exits.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use wireframe::{EngineConfig, QueryExecutor, Session, SessionConfig, ShardedCluster, StoreKind};
use wireframe_serve::{ServeConfig, Server};

struct Options {
    data_path: String,
    addr: String,
    engine: String,
    store: StoreKind,
    config: ServeConfig,
    threads: usize,
    shards: usize,
    slow_query_ms: Option<u64>,
}

fn usage() -> &'static str {
    "usage: wfserve <triples-file> [--addr host:port] [--engine <name>] \
     [--store csr|map|delta] [--workers N] [--queue-depth N] [--deadline-ms N] \
     [--batch-window-ms N] [--threads N] [--shards N] [--metrics-addr host:port] \
     [--slow-query-ms N] [--obs on|off]"
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut data_path = None;
    let mut options = Options {
        data_path: String::new(),
        addr: "127.0.0.1:4151".to_owned(),
        engine: "wireframe".to_owned(),
        store: StoreKind::Delta,
        config: ServeConfig::default(),
        threads: 1,
        shards: 1,
        slow_query_ms: None,
    };
    let number = |args: &mut dyn Iterator<Item = String>, flag: &str| -> Result<u64, String> {
        args.next()
            .ok_or(format!("{flag} needs a value"))?
            .parse()
            .map_err(|_| format!("{flag} must be a non-negative integer"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => options.addr = args.next().ok_or("--addr needs a value")?,
            "--engine" => options.engine = args.next().ok_or("--engine needs a value")?,
            "--store" => {
                options.store = StoreKind::parse(&args.next().ok_or("--store needs a value")?)?
            }
            "--workers" => options.config.workers = number(&mut args, "--workers")? as usize,
            "--queue-depth" => {
                options.config.queue_depth = number(&mut args, "--queue-depth")? as usize
            }
            "--deadline-ms" => {
                options.config.deadline = Duration::from_millis(number(&mut args, "--deadline-ms")?)
            }
            "--batch-window-ms" => {
                options.config.batch_window =
                    Duration::from_millis(number(&mut args, "--batch-window-ms")?)
            }
            "--threads" => options.threads = number(&mut args, "--threads")? as usize,
            "--metrics-addr" => {
                options.config.metrics_addr =
                    Some(args.next().ok_or("--metrics-addr needs a value")?)
            }
            "--slow-query-ms" => {
                options.slow_query_ms = Some(number(&mut args, "--slow-query-ms")?)
            }
            "--obs" => {
                options.config.obs = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => return Err("--obs must be on or off".to_owned()),
                }
            }
            "--shards" => {
                options.shards = number(&mut args, "--shards")? as usize;
                if options.shards == 0 {
                    return Err("--shards must be at least 1".to_owned());
                }
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => {
                if data_path.is_some() {
                    return Err(format!("unexpected positional argument {other}"));
                }
                data_path = Some(other.to_owned());
            }
        }
    }
    options.data_path = data_path.ok_or_else(|| usage().to_owned())?;
    Ok(options)
}

fn run() -> Result<(), String> {
    let options = parse_args(std::env::args().skip(1))?;

    let file = std::fs::File::open(&options.data_path)
        .map_err(|e| format!("cannot open {}: {e}", options.data_path))?;
    let graph = wireframe::graph::load(std::io::BufReader::new(file))
        .map_err(|e| format!("cannot load {}: {e}", options.data_path))?;
    eprintln!(
        "loaded {}: {} triples, {} predicates, {} nodes · {} store",
        options.data_path,
        graph.triple_count(),
        graph.predicate_count(),
        graph.node_count(),
        options.store.name()
    );

    let mut engine_config = EngineConfig::default().with_store(options.store);
    if options.threads != 1 {
        let threads = if options.threads == 0 {
            wireframe::core::auto_threads()
        } else {
            options.threads
        };
        engine_config = engine_config.with_threads(threads);
    }
    let mut session_config = SessionConfig::new()
        .engine(&options.engine)
        .engine_config(engine_config)
        .obs(options.config.obs);
    if let Some(ms) = options.slow_query_ms {
        session_config = session_config.slow_query_ms(ms);
    }
    let executor: Arc<dyn QueryExecutor> = if options.shards > 1 {
        eprintln!(
            "serving through {} vertex-partitioned shards",
            options.shards
        );
        Arc::new(
            ShardedCluster::new(graph, options.shards, session_config)
                .map_err(|e| e.to_string())?,
        )
    } else {
        Arc::new(Session::from_config(graph, session_config).map_err(|e| e.to_string())?)
    };

    let server = Server::start(executor, &options.addr, options.config)
        .map_err(|e| format!("cannot bind {}: {e}", options.addr))?;
    println!("listening on {}", server.local_addr());
    if let Some(addr) = server.metrics_local_addr() {
        println!("metrics on http://{addr}/metrics");
    }

    // Serve until a client requests shutdown or stdin reaches EOF.
    let stdin_done = Arc::new(AtomicBool::new(false));
    {
        let stdin_done = Arc::clone(&stdin_done);
        std::thread::spawn(move || {
            let mut sink = Vec::new();
            let _ = std::io::Read::read_to_end(&mut std::io::stdin(), &mut sink);
            stdin_done.store(true, Ordering::Relaxed);
        });
    }
    while !server.shutdown_requested() && !stdin_done.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(200));
    }
    eprintln!("draining and shutting down");
    server.shutdown();
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

//! The framed-TCP server: acceptor, bounded worker pool, write batcher,
//! subscription fan-out.
//!
//! # Thread anatomy
//!
//! ```text
//! acceptor ──spawns──▶ one reader per connection
//!    readers ──▶ bounded job queue ──▶ N workers     (prepare/query/stats)
//!            ──▶ bounded mutate queue ──▶ 1 batcher  (mutate; coalesces)
//!            ──▶ subscription registry ◀── 1 fan-out (epoch events + sweep)
//! ```
//!
//! **Admission control.** Both queues are bounded: a full queue sheds the
//! request immediately with an `overloaded` response (`reason: "queue"`)
//! instead of queueing without bound, and a queued request that ages past
//! the configured deadline before a worker picks it up is shed with
//! `reason: "deadline"`. The connection stays healthy either way — shedding
//! is per-request backpressure, not an error.
//!
//! **Write batching.** The batcher pops one mutate request, then keeps
//! draining the mutate queue for [`ServeConfig::batch_window`]; everything
//! drained coalesces into one [`Mutation`] batch, applied with a single
//! [`QueryExecutor::apply_mutation`] — one graph version, one epoch, one
//! footprint-maintenance pass — and every coalesced requester gets the same
//! batch totals back.
//!
//! **Subscriptions.** [`QueryExecutor::add_epoch_listener`] (called under
//! the executor's state write lock, so events arrive strictly epoch-ordered)
//! feeds an event channel; the fan-out thread re-evaluates each subscribed
//! query — a retained-view serve when the engine maintains — diffs the new
//! answer against the last one it pushed, and sends an `update` frame whose
//! `prev_epoch`/`epoch` pair chains gap-free off the previous update. A
//! periodic sweep covers the subscribe-vs-mutate registration race, so no
//! epoch advance is ever silently skipped. Updates for several epochs may
//! coalesce into one frame; the chain stays contiguous.
//!
//! **Graceful shutdown.** [`Server::shutdown`] flips one flag; readers poll
//! it on a read timeout, workers drain the remaining queue before exiting,
//! the batcher applies what it already accepted, and every thread is
//! joined — test teardown leaves no orphaned listener threads.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::json::{self, Value};
use wireframe::{EdgeDelta, Mutation, QueryExecutor};
use wireframe_api::obs::{
    names, render_prometheus, Counter, Gauge, Histogram, MetricsSnapshot, Registry,
};
use wireframe_api::wire::{EmbeddingDelta, Request, Response, RowSet, ServeStats};
use wireframe_api::Evaluation;

use crate::frame::{self, FrameReader};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads serving prepare/query/stats requests.
    pub workers: usize,
    /// Bound of the read-side job queue *and* the mutate queue; a full
    /// queue sheds with `overloaded`.
    pub queue_depth: usize,
    /// Requests older than this when a worker dequeues them are shed.
    pub deadline: Duration,
    /// How long the batcher keeps draining the mutate queue after the
    /// first mutate of a batch.
    pub batch_window: Duration,
    /// Cap on mutate requests coalesced into one batch.
    pub max_batch: usize,
    /// Cap on a single frame's payload bytes.
    pub max_frame: usize,
    /// Telemetry switch: `false` downgrades the server's registry to
    /// counters-only (histograms become no-ops) — the `--obs off` A/B
    /// lever for measuring instrumentation overhead.
    pub obs: bool,
    /// When set, a second listener on this address answers HTTP GETs with
    /// a Prometheus-style text rendering of the merged metrics snapshot
    /// (`wfserve --metrics-addr`).
    pub metrics_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 128,
            deadline: Duration::from_secs(2),
            batch_window: Duration::from_millis(2),
            max_batch: 256,
            max_frame: frame::DEFAULT_MAX_FRAME,
            obs: true,
            metrics_addr: None,
        }
    }
}

/// How often blocked loops re-check the shutdown flag, and the fan-out
/// sweep period covering the subscribe-vs-event registration race.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// One connection's write half, shared by the reader, workers, batcher and
/// fan-out. Writes are serialized by the mutex; a failed write marks the
/// connection dead so every later producer skips it.
struct Conn {
    writer: Mutex<TcpStream>,
    alive: AtomicBool,
}

impl Conn {
    fn send(&self, response: &Response) {
        if !self.alive.load(Ordering::Relaxed) {
            return;
        }
        let payload = json::to_string(response);
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if frame::write_frame(&mut *writer, &payload).is_err() {
            self.alive.store(false, Ordering::Relaxed);
        }
    }
}

/// A queued prepare/query/stats request.
struct Job {
    conn: Arc<Conn>,
    request: Request,
    enqueued: Instant,
}

/// A queued mutate request.
struct MutJob {
    conn: Arc<Conn>,
    id: u64,
    mutation: Mutation,
    return_delta: bool,
}

/// One live subscription: the query, the connection to push to, and the
/// last answer pushed (distinct rows, dictionary ids, sorted) with the
/// epoch it reflects — the anchor the next update chains off.
struct Subscription {
    conn: Arc<Conn>,
    id: u64,
    query: String,
    last_epoch: u64,
    rows: Vec<Vec<u32>>,
}

/// Serve-layer counters, all handles into the server's [`Registry`] — the
/// registry snapshot is the single source of truth; [`ServeStats`] and the
/// `metrics` request both read from it.
struct Counters {
    connections: Counter,
    requests: Counter,
    queries: Counter,
    mutations: Counter,
    mutation_batches: Counter,
    coalesced_mutations: Counter,
    shed_queue_full: Counter,
    shed_deadline: Counter,
    updates_pushed: Counter,
    subscriptions_active: Gauge,
    /// Queue-to-response latency of worker-served requests.
    request_us: Histogram,
}

impl Counters {
    fn new(metrics: &Registry) -> Counters {
        Counters {
            connections: metrics.counter(names::SERVE_CONNECTIONS),
            requests: metrics.counter(names::SERVE_REQUESTS),
            queries: metrics.counter(names::SERVE_QUERIES),
            mutations: metrics.counter(names::SERVE_MUTATIONS),
            mutation_batches: metrics.counter(names::SERVE_MUTATION_BATCHES),
            coalesced_mutations: metrics.counter(names::SERVE_COALESCED_MUTATIONS),
            shed_queue_full: metrics.counter(names::SERVE_SHED_QUEUE_FULL),
            shed_deadline: metrics.counter(names::SERVE_SHED_DEADLINE),
            updates_pushed: metrics.counter(names::SERVE_UPDATES_PUSHED),
            subscriptions_active: metrics.gauge(names::SERVE_SUBSCRIPTIONS_ACTIVE),
            request_us: metrics.histogram(names::SERVE_REQUEST_US),
        }
    }
}

struct SharedState {
    executor: Arc<dyn QueryExecutor>,
    config: ServeConfig,
    shutdown: AtomicBool,
    shutdown_requested: AtomicBool,
    /// Set *after* the batcher is joined, so the fan-out's final sweep sees
    /// every applied batch before exiting.
    fanout_stop: AtomicBool,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    mut_tx: SyncSender<MutJob>,
    subs: Mutex<Vec<Subscription>>,
    metrics: Registry,
    counters: Counters,
}

impl SharedState {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.queue_cv.notify_all();
    }

    /// Enqueues a worker job, shedding with `overloaded` when the bounded
    /// queue is at capacity (admission control, not an error).
    fn enqueue(&self, job: Job) {
        let id = job.request.id();
        let conn = Arc::clone(&job.conn);
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() >= self.config.queue_depth {
            drop(queue);
            self.counters.shed_queue_full.inc();
            conn.send(&Response::Overloaded {
                id,
                reason: "queue".to_owned(),
            });
            return;
        }
        queue.push_back(job);
        drop(queue);
        self.queue_cv.notify_one();
    }

    fn stats(&self) -> ServeStats {
        let exec = self.executor.stats();
        let c = &self.counters;
        ServeStats {
            epoch: self.executor.epoch(),
            epochs: self.executor.epoch_vector(),
            connections: c.connections.get(),
            requests: c.requests.get(),
            queries: c.queries.get(),
            mutations: c.mutations.get(),
            mutation_batches: c.mutation_batches.get(),
            coalesced_mutations: c.coalesced_mutations.get(),
            shed_queue_full: c.shed_queue_full.get(),
            shed_deadline: c.shed_deadline.get(),
            subscriptions: self.subs.lock().unwrap_or_else(|e| e.into_inner()).len() as u64,
            updates_pushed: c.updates_pushed.get(),
            cache_hits: exec.cache_hits,
            cache_misses: exec.cache_misses,
            view_serves: exec.view_serves,
            full_evaluations: exec.full_evaluations,
            plans_maintained: exec.plans_maintained,
        }
    }

    /// The full registry snapshot the `metrics` request and the scrape
    /// endpoint both serve: the serve layer's own registry merged with the
    /// executor's (session or cluster, including per-shard breakdowns).
    fn merged_snapshot(&self) -> MetricsSnapshot {
        self.counters
            .subscriptions_active
            .set(self.subs.lock().unwrap_or_else(|e| e.into_inner()).len() as u64);
        let mut merged = self.metrics.snapshot();
        merged.merge(&self.executor.metrics_snapshot());
        merged
    }
}

/// A running server; dropping (or calling [`Server::shutdown`]) drains
/// in-flight work and joins every thread.
pub struct Server {
    shared: Arc<SharedState>,
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    fanout: Option<JoinHandle<()>>,
    scraper: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `executor` — any [`QueryExecutor`]: a single `Session` or a
    /// `ShardedCluster` (an `Arc<Session>` coerces at the call site).
    pub fn start(
        executor: Arc<dyn QueryExecutor>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (mut_tx, mut_rx) = mpsc::sync_channel(config.queue_depth.max(1));
        let (event_tx, event_rx) = mpsc::channel::<u64>();
        // `--obs off` keeps counters live (they are plain relaxed atomics)
        // but turns every histogram into a no-op handle.
        let metrics = if config.obs {
            Registry::new()
        } else {
            Registry::counters_only()
        };
        let counters = Counters::new(&metrics);
        let shared = Arc::new(SharedState {
            executor: Arc::clone(&executor),
            config,
            shutdown: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            fanout_stop: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            mut_tx,
            subs: Mutex::new(Vec::new()),
            metrics,
            counters,
        });

        // Epoch events feed the fan-out. The listener runs under the
        // executor's state write lock, so events are strictly epoch-ordered;
        // the channel is unbounded so the mutating thread never blocks on a
        // slow fan-out. (mpsc::Sender is not Sync; the mutex makes the
        // closure shareable and is uncontended — one mutator at a time by
        // construction.)
        let event_tx = Mutex::new(event_tx);
        executor.add_epoch_listener(Box::new(move |epoch, _delta: &EdgeDelta| {
            let _ = event_tx
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .send(epoch);
        }));

        let readers = Arc::new(Mutex::new(Vec::new()));
        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || run_worker(&shared))
            })
            .collect();
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run_batcher(&shared, &mut_rx))
        };
        let fanout = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run_fanout(&shared, &event_rx))
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            let readers = Arc::clone(&readers);
            std::thread::spawn(move || run_acceptor(&shared, &listener, &readers))
        };
        let (metrics_addr, scraper) = match &shared.config.metrics_addr {
            Some(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let addr = listener.local_addr()?;
                let shared = Arc::clone(&shared);
                let handle = std::thread::spawn(move || run_scraper(&shared, &listener));
                (Some(addr), Some(handle))
            }
            None => (None, None),
        };
        Ok(Server {
            shared,
            addr,
            metrics_addr,
            acceptor: Some(acceptor),
            workers,
            batcher: Some(batcher),
            fanout: Some(fanout),
            scraper,
            readers,
        })
    }

    /// The bound address (the actual port when started with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound address of the Prometheus-style scrape listener, when
    /// [`ServeConfig::metrics_addr`] was set.
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The merged registry snapshot (serve layer + executor), same data as
    /// a `metrics` request or a scrape.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.merged_snapshot()
    }

    /// The served executor.
    pub fn executor(&self) -> &Arc<dyn QueryExecutor> {
        &self.shared.executor
    }

    /// Current server + executor counters (same data as a `stats` request).
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Whether a client asked the server to stop (a `shutdown` request).
    /// The embedder decides when to act on it by calling
    /// [`Server::shutdown`]; `wfserve` polls this.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::Relaxed)
    }

    /// Drains in-flight work and joins every server thread. Idempotent;
    /// also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.begin_shutdown();
        // accept() has no timeout; a throwaway local connection unblocks it
        // so the acceptor can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let readers = std::mem::take(&mut *self.readers.lock().unwrap_or_else(|e| e.into_inner()));
        for reader in readers {
            let _ = reader.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        // Only now stop the fan-out: its final sweep runs after the last
        // batch the batcher drained, so subscribers get every epoch.
        self.shared.fanout_stop.store(true, Ordering::Relaxed);
        if let Some(fanout) = self.fanout.take() {
            let _ = fanout.join();
        }
        if let Some(scraper) = self.scraper.take() {
            let _ = scraper.join();
        }
        self.shared
            .subs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn run_acceptor(
    shared: &Arc<SharedState>,
    listener: &TcpListener,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.is_shutdown() {
                    break;
                }
                shared.counters.connections.inc();
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || run_reader(&shared, stream));
                readers
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(handle);
            }
            Err(_) => {
                if shared.is_shutdown() {
                    break;
                }
            }
        }
    }
}

/// Per-connection read loop: decode frames, dispatch requests.
fn run_reader(shared: &Arc<SharedState>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let write_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let conn = Arc::new(Conn {
        writer: Mutex::new(write_half),
        alive: AtomicBool::new(true),
    });
    let mut reader = FrameReader::new();
    // Distinguish the peer going away (mark the connection dead, drop its
    // subscriptions) from a graceful server shutdown (stop *reading* but
    // keep the write half alive so drained in-flight responses still
    // reach the client before the connection closes).
    let mut peer_gone = false;
    loop {
        if shared.is_shutdown() {
            break;
        }
        if !conn.alive.load(Ordering::Relaxed) {
            peer_gone = true;
            break;
        }
        match reader.read_frame(&mut stream, shared.config.max_frame) {
            Ok(Some(payload)) => dispatch(shared, &conn, &payload),
            Ok(None) => {
                peer_gone = true;
                break;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                conn.send(&Response::Error {
                    id: 0,
                    message: e.to_string(),
                });
                peer_gone = true;
                break;
            }
            Err(_) => {
                peer_gone = true;
                break;
            }
        }
    }
    if peer_gone {
        conn.alive.store(false, Ordering::Relaxed);
        // Drop this connection's subscriptions so the fan-out stops
        // diffing for a peer that went away.
        shared
            .subs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|sub| !Arc::ptr_eq(&sub.conn, &conn));
    }
}

fn dispatch(shared: &Arc<SharedState>, conn: &Arc<Conn>, payload: &str) {
    let doc = match wireframe_api::wire::parse_frame(payload) {
        Ok(doc) => doc,
        Err(e) => {
            conn.send(&Response::Error {
                id: 0,
                message: e.to_string(),
            });
            return;
        }
    };
    let request = match Request::from_json(&doc) {
        Ok(request) => request,
        Err(e) => {
            let id = doc.get("id").and_then(Value::as_u64).unwrap_or(0);
            conn.send(&Response::Error {
                id,
                message: e.to_string(),
            });
            return;
        }
    };
    shared.counters.requests.inc();
    match request {
        Request::Mutate {
            id,
            script,
            return_delta,
        } => {
            let mutation = match Mutation::parse_script(&script) {
                Ok(mutation) => mutation,
                Err(e) => {
                    conn.send(&Response::Error {
                        id,
                        message: e.to_string(),
                    });
                    return;
                }
            };
            let job = MutJob {
                conn: Arc::clone(conn),
                id,
                mutation,
                return_delta,
            };
            match shared.mut_tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(job)) => {
                    shared.counters.shed_queue_full.inc();
                    job.conn.send(&Response::Overloaded {
                        id,
                        reason: "queue".to_owned(),
                    });
                }
                Err(TrySendError::Disconnected(job)) => {
                    job.conn.send(&Response::ShuttingDown { id });
                }
            }
        }
        Request::Subscribe { id, query, limit } => handle_subscribe(shared, conn, id, query, limit),
        Request::Shutdown { id } => {
            conn.send(&Response::ShuttingDown { id });
            shared.shutdown_requested.store(true, Ordering::Relaxed);
            shared.begin_shutdown();
        }
        request => shared.enqueue(Job {
            conn: Arc::clone(conn),
            request,
            enqueued: Instant::now(),
        }),
    }
}

/// Evaluates the subscribed query once (the snapshot) and registers the
/// subscription. An epoch advancing between the snapshot and the
/// registration is caught by the fan-out's next event or sweep — the
/// registry stores the snapshot's epoch, and the fan-out pushes whenever a
/// subscription's anchor is behind the session.
fn handle_subscribe(
    shared: &Arc<SharedState>,
    conn: &Arc<Conn>,
    id: u64,
    query: String,
    limit: u64,
) {
    match shared.executor.query(&query) {
        Err(e) => conn.send(&Response::Error {
            id,
            message: e.to_string(),
        }),
        Ok(ev) => {
            let rows = distinct_sorted_rows(&ev);
            let columns = ev.embeddings().schema().len() as u64;
            let total = rows.len() as u64;
            let shown = label_rows(shared, rows.iter(), limit);
            let truncated = (shown.len() as u64) < total;
            {
                let mut subs = shared.subs.lock().unwrap_or_else(|e| e.into_inner());
                subs.push(Subscription {
                    conn: Arc::clone(conn),
                    id,
                    query,
                    last_epoch: ev.epoch(),
                    rows,
                });
                shared.counters.subscriptions_active.set(subs.len() as u64);
            }
            conn.send(&Response::Subscribed {
                id,
                epoch: ev.epoch(),
                rows: RowSet {
                    columns,
                    total,
                    rows: shown,
                    truncated,
                    // Subscription snapshots keep the full row set server-side
                    // for delta diffing, so they never take the prefix path.
                    prefix_served: false,
                },
            });
        }
    }
}

/// Worker loop: serve prepare/query/stats jobs; on shutdown, drain what
/// is already queued before exiting (graceful teardown).
fn run_worker(shared: &Arc<SharedState>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.is_shutdown() {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, POLL_INTERVAL)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
            }
        };
        let Some(job) = job else { break };
        serve_job(shared, job);
    }
}

fn serve_job(shared: &Arc<SharedState>, job: Job) {
    let id = job.request.id();
    if job.enqueued.elapsed() > shared.config.deadline {
        shared.counters.shed_deadline.inc();
        job.conn.send(&Response::Overloaded {
            id,
            reason: "deadline".to_owned(),
        });
        return;
    }
    let enqueued = job.enqueued;
    match job.request {
        Request::Prepare { id, query } => match shared.executor.prime(&query) {
            Ok(retained) => job.conn.send(&Response::Prepared {
                id,
                epoch: shared.executor.epoch(),
                retained,
            }),
            Err(e) => job.conn.send(&Response::Error {
                id,
                message: e.to_string(),
            }),
        },
        // The limit is pushed into evaluation: a session with a primed
        // top-k prefix answers `limit <= k` in O(k), and a full evaluation
        // is truncated canonically — the rows sent are always the canonical
        // first `limit`, never an arbitrary `take()`.
        Request::Query { id, query, limit } => {
            match shared.executor.query_limited(&query, limit as usize) {
                Ok(ev) => {
                    shared.counters.queries.inc();
                    let columns = ev.embeddings().schema().len() as u64;
                    let info = ev.limited;
                    // A prefix serve may not know the full count; fall back
                    // to the served rows and let `truncated` say more exist.
                    let total = info
                        .map(|i| i.full_total.unwrap_or(ev.embedding_count()))
                        .unwrap_or(ev.embedding_count()) as u64;
                    let graph = shared.executor.graph();
                    let dict = graph.dictionary();
                    let rows = ev
                        .embeddings()
                        .rows()
                        .map(|row| {
                            row.iter()
                                .map(|n| dict.node_label(*n).unwrap_or("?").to_owned())
                                .collect()
                        })
                        .collect();
                    job.conn.send(&Response::Rows {
                        id,
                        epoch: ev.epoch(),
                        rows: RowSet {
                            columns,
                            total,
                            rows,
                            truncated: info.is_some_and(|i| i.truncated),
                            prefix_served: info.is_some_and(|i| i.prefix_served),
                        },
                    });
                }
                Err(e) => job.conn.send(&Response::Error {
                    id,
                    message: e.to_string(),
                }),
            }
        }
        Request::Stats { id } => {
            let stats = shared.stats();
            job.conn.send(&Response::Stats { id, stats });
        }
        Request::Metrics { id } => {
            let snapshot = shared.merged_snapshot();
            job.conn.send(&Response::Metrics {
                id,
                epoch: shared.executor.epoch(),
                snapshot,
            });
        }
        // Mutate/Subscribe/Shutdown never reach the worker queue.
        other => job.conn.send(&Response::Error {
            id: other.id(),
            message: "internal: request routed to the wrong queue".to_owned(),
        }),
    }
    shared
        .counters
        .request_us
        .record_duration(enqueued.elapsed());
}

/// Batcher loop: coalesce mutate requests arriving within the batch window
/// into one applied [`Mutation`]; on shutdown, apply what was accepted.
fn run_batcher(shared: &Arc<SharedState>, rx: &Receiver<MutJob>) {
    loop {
        let first = match rx.recv_timeout(POLL_INTERVAL) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                if shared.is_shutdown() {
                    // Drain accepted-but-unapplied mutations before exiting.
                    let pending: Vec<MutJob> = std::iter::from_fn(|| rx.try_recv().ok()).collect();
                    if !pending.is_empty() {
                        apply_batch(shared, pending);
                    }
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let mut jobs = vec![first];
        let window_end = Instant::now() + shared.config.batch_window;
        while jobs.len() < shared.config.max_batch {
            let now = Instant::now();
            if now >= window_end {
                break;
            }
            match rx.recv_timeout(window_end - now) {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        apply_batch(shared, jobs);
    }
}

fn apply_batch(shared: &Arc<SharedState>, jobs: Vec<MutJob>) {
    let mut combined = Mutation::new();
    for job in &jobs {
        for (op, s, p, o) in job.mutation.ops() {
            combined.push(*op, s, p, o);
        }
    }
    let outcome = shared.executor.apply_mutation(&combined);
    // The batcher is the executor's only mutator on the serving path, so
    // the epoch right after the apply is this batch's epoch.
    let epoch = shared.executor.epoch();
    let coalesced = jobs.len() as u64;
    shared.counters.mutations.add(coalesced);
    shared.counters.mutation_batches.inc();
    if jobs.len() > 1 {
        shared.counters.coalesced_mutations.add(coalesced);
    }
    for job in jobs {
        job.conn.send(&Response::Mutated {
            id: job.id,
            epoch,
            inserted: outcome.inserted as u64,
            removed: outcome.removed as u64,
            coalesced,
            compacted: outcome.compacted,
            delta: job.return_delta.then(|| outcome.delta.clone()),
        });
    }
}

/// Scrape loop: answer HTTP GETs on the metrics listener with a
/// Prometheus-style text rendering of the merged snapshot. Hand-rolled
/// HTTP/1.0: scrapes are rare (one per poll interval), so each request is
/// handled inline — no worker pool, no keep-alive.
fn run_scraper(shared: &Arc<SharedState>, listener: &TcpListener) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        match listener.accept() {
            Ok((stream, _)) => serve_scrape(shared, stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.is_shutdown() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => {
                if shared.is_shutdown() {
                    break;
                }
            }
        }
    }
}

fn serve_scrape(shared: &Arc<SharedState>, mut stream: TcpStream) {
    use std::io::{Read, Write};
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    // Read until the blank line ending the request head; the request line
    // and headers are ignored (every path serves the same document).
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") && head.len() < 8192 {
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => return,
        }
    }
    let body = render_prometheus(&shared.merged_snapshot());
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(response.as_bytes());
}

/// Fan-out loop: on every epoch event — and on a periodic sweep that heals
/// the subscribe-vs-mutate registration race — bring every lagging
/// subscription up to the current epoch with one pushed delta.
fn run_fanout(shared: &Arc<SharedState>, events: &Receiver<u64>) {
    loop {
        if shared.fanout_stop.load(Ordering::Relaxed) {
            // Final sweep: the batcher is already joined, so this observes
            // every batch ever applied before the fan-out exits.
            sweep_subscriptions(shared);
            break;
        }
        match events.recv_timeout(POLL_INTERVAL) {
            Ok(_epoch) => {
                // Coalesce a burst of events into one sweep.
                while events.try_recv().is_ok() {}
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        sweep_subscriptions(shared);
    }
}

fn sweep_subscriptions(shared: &Arc<SharedState>) {
    let mut subs = shared.subs.lock().unwrap_or_else(|e| e.into_inner());
    subs.retain(|sub| sub.conn.alive.load(Ordering::Relaxed));
    shared.counters.subscriptions_active.set(subs.len() as u64);
    let current_epoch = shared.executor.epoch();
    for sub in subs.iter_mut() {
        if sub.last_epoch >= current_epoch {
            continue;
        }
        let Ok(ev) = shared.executor.query(&sub.query) else {
            continue;
        };
        if ev.epoch() <= sub.last_epoch {
            continue;
        }
        let rows = distinct_sorted_rows(&ev);
        let (added, removed) = diff_sorted(&sub.rows, &rows);
        let delta = EmbeddingDelta {
            prev_epoch: sub.last_epoch,
            epoch: ev.epoch(),
            epochs: ev.epochs.clone(),
            total: rows.len() as u64,
            added: label_rows(shared, added.into_iter(), 0),
            removed: label_rows(shared, removed.into_iter(), 0),
        };
        sub.rows = rows;
        sub.last_epoch = ev.epoch();
        shared.counters.updates_pushed.inc();
        sub.conn.send(&Response::Update { id: sub.id, delta });
    }
}

/// The evaluation's distinct rows as raw dictionary ids, sorted — the
/// canonical form subscriptions diff. Subscription semantics are
/// set-of-rows (duplicates collapse), which is what makes added/removed
/// deltas well defined.
fn distinct_sorted_rows(ev: &Evaluation) -> Vec<Vec<u32>> {
    let mut rows: Vec<Vec<u32>> = ev
        .embeddings()
        .rows()
        .map(|row| row.iter().map(|n| n.0).collect())
        .collect();
    rows.sort_unstable();
    rows.dedup();
    rows
}

/// Two-pointer diff of sorted distinct row lists: (added, removed).
fn diff_sorted<'a>(
    before: &'a [Vec<u32>],
    after: &'a [Vec<u32>],
) -> (Vec<&'a Vec<u32>>, Vec<&'a Vec<u32>>) {
    let (mut added, mut removed) = (Vec::new(), Vec::new());
    let (mut i, mut j) = (0, 0);
    while i < before.len() && j < after.len() {
        match before[i].cmp(&after[j]) {
            std::cmp::Ordering::Less => {
                removed.push(&before[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(&after[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    removed.extend(before[i..].iter());
    added.extend(after[j..].iter());
    (added, removed)
}

/// Resolves id rows to label rows through the current dictionary (labels
/// are append-only across mutations, so ids from older snapshots still
/// resolve). `limit` 0 = all rows.
fn label_rows<'a>(
    shared: &SharedState,
    rows: impl Iterator<Item = &'a Vec<u32>>,
    limit: u64,
) -> Vec<Vec<String>> {
    let graph = shared.executor.graph();
    let dict = graph.dictionary();
    let cap = if limit == 0 {
        usize::MAX
    } else {
        limit as usize
    };
    rows.take(cap)
        .map(|row| {
            row.iter()
                .map(|&n| {
                    dict.node_label(wireframe::graph::NodeId(n))
                        .unwrap_or("?")
                        .to_owned()
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_sorted_finds_symmetric_difference() {
        let before = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        let after = vec![vec![0, 0], vec![3, 4], vec![7, 8]];
        let (added, removed) = diff_sorted(&before, &after);
        assert_eq!(added, vec![&vec![0, 0], &vec![7, 8]]);
        assert_eq!(removed, vec![&vec![1, 2], &vec![5, 6]]);
        let (added, removed) = diff_sorted(&[], &[]);
        assert!(added.is_empty() && removed.is_empty());
    }

    #[test]
    fn default_config_is_sane() {
        let config = ServeConfig::default();
        assert!(config.workers >= 1);
        assert!(config.queue_depth >= 1);
        assert!(config.max_batch >= 1);
        assert!(config.deadline > config.batch_window);
    }
}

//! Length-prefixed framing over a byte stream.
//!
//! One frame is a 4-byte big-endian `u32` length followed by that many
//! bytes of UTF-8 JSON. The [`FrameReader`] is *incremental*: it buffers
//! partial frames across calls, so it composes with `set_read_timeout`
//! polling loops — a `WouldBlock`/`TimedOut` mid-frame is surfaced to the
//! caller and the partial bytes stay buffered for the next call. (A plain
//! `read_exact` would lose them.)

use std::io::{self, Read, Write};

/// Default cap on a single frame's payload (16 MiB). A peer announcing a
/// larger frame is a protocol violation, not a bigger allocation.
pub const DEFAULT_MAX_FRAME: usize = 16 << 20;

/// Writes one frame: 4-byte big-endian length prefix, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload over 4 GiB"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Incremental frame decoder; see the module docs for the timeout contract.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Reads until one complete frame is buffered and returns its payload.
    ///
    /// Returns `Ok(None)` on a clean EOF at a frame boundary. EOF inside a
    /// frame is `UnexpectedEof`. A payload longer than `max_frame` is
    /// `InvalidData`. `WouldBlock`/`TimedOut` from a read-timeout socket
    /// propagate with any partial frame kept buffered.
    pub fn read_frame(
        &mut self,
        r: &mut impl Read,
        max_frame: usize,
    ) -> io::Result<Option<String>> {
        loop {
            if let Some(frame) = self.take_buffered(max_frame)? {
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "peer closed mid-frame",
                        ))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Pops a complete frame off the buffer, if one is there.
    fn take_buffered(&mut self, max_frame: usize) -> io::Result<Option<String>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > max_frame {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds the {max_frame}-byte cap"),
            ));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = String::from_utf8(self.buf[4..4 + len].to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "hello").unwrap();
        write_frame(&mut wire, r#"{"id":1}"#).unwrap();
        let mut reader = FrameReader::new();
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(
            reader.read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
            Some("hello".to_owned())
        );
        assert_eq!(
            reader.read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
            Some(r#"{"id":1}"#.to_owned())
        );
        assert_eq!(
            reader.read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
            None
        );
    }

    /// Yields one byte per `read` call and a `WouldBlock` after every byte,
    /// mimicking a socket with a read timeout delivering data slowly.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        ready: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "not yet"));
            }
            self.ready = false;
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn partial_frames_survive_timeouts_across_calls() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "split across reads").unwrap();
        let mut trickle = Trickle {
            data: wire,
            pos: 0,
            ready: false,
        };
        let mut reader = FrameReader::new();
        let mut blocks = 0;
        let frame = loop {
            match reader.read_frame(&mut trickle, DEFAULT_MAX_FRAME) {
                Ok(frame) => break frame,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => blocks += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert_eq!(frame, Some("split across reads".to_owned()));
        assert!(blocks > 4, "every byte should have cost one timeout");
    }

    #[test]
    fn oversized_and_malformed_frames_are_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "0123456789").unwrap();
        let mut reader = FrameReader::new();
        let err = reader
            .read_frame(&mut io::Cursor::new(&wire[..]), 4)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut bad = 2u32.to_be_bytes().to_vec();
        bad.extend_from_slice(&[0xff, 0xfe]);
        let err = FrameReader::new()
            .read_frame(&mut io::Cursor::new(bad), DEFAULT_MAX_FRAME)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "truncated").unwrap();
        wire.truncate(wire.len() - 3);
        let err = FrameReader::new()
            .read_frame(&mut io::Cursor::new(wire), DEFAULT_MAX_FRAME)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}

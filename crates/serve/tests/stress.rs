//! Concurrent mutate-vs-view-serve stress: writer threads mutate through
//! the server while reader threads hit the retained view, a subscriber
//! folds pushed deltas — and everything is checked against a fresh
//! single-threaded oracle session at the end.
//!
//! Writers only touch triples in their own namespace (`w{w}_s{i}`), so the
//! final graph is independent of how the server interleaved or coalesced
//! their batches — which is what makes a deterministic oracle possible
//! under nondeterministic scheduling.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use wireframe::graph::{Graph, GraphBuilder, StoreKind};
use wireframe::Session;
use wireframe_serve::{Client, ServeConfig, Server};

const QUERY: &str = "SELECT ?x ?z WHERE { ?x <knows> ?y . ?y <likes> ?z . }";
const BASE: usize = 20;
const WRITERS: usize = 3;
const WRITES_PER_WRITER: usize = 40;
const READERS: usize = 3;

fn base_triples() -> Vec<(String, String, String)> {
    let mut triples = Vec::new();
    for i in 0..BASE {
        triples.push((format!("a{i}"), "knows".to_owned(), format!("b{i}")));
        triples.push((format!("b{i}"), "likes".to_owned(), format!("c{i}")));
    }
    triples
}

fn build_graph(triples: &[(String, String, String)]) -> Graph {
    let mut builder = GraphBuilder::new();
    for (s, p, o) in triples {
        builder.add(s, p, o);
    }
    builder.build_with_store(StoreKind::Delta)
}

/// The ops of writer `w`, in its program order: mostly inserts of fresh
/// `w{w}_s{i} knows b{…}` edges, every third step removing the edge
/// inserted two steps earlier. Returns `(script per step, net final set)`.
fn writer_program(w: usize) -> (Vec<String>, Vec<(String, String, String)>) {
    let mut scripts = Vec::new();
    let mut live: BTreeSet<(String, String, String)> = BTreeSet::new();
    for i in 0..WRITES_PER_WRITER {
        let triple = (
            format!("w{w}_s{i}"),
            "knows".to_owned(),
            format!("b{}", (w + i) % BASE),
        );
        if i % 3 == 2 {
            let victim = (
                format!("w{w}_s{}", i - 2),
                "knows".to_owned(),
                format!("b{}", (w + i - 2) % BASE),
            );
            scripts.push(format!("- {} {} {}\n", victim.0, victim.1, victim.2));
            live.remove(&victim);
        } else {
            scripts.push(format!("+ {} {} {}\n", triple.0, triple.1, triple.2));
            live.insert(triple);
        }
    }
    (scripts, live.into_iter().collect())
}

/// Distinct sorted label rows of `query` on a fresh, single-threaded
/// session over `graph` — the oracle answer.
fn oracle_rows(graph: Graph) -> BTreeSet<Vec<String>> {
    let session = Session::new(graph);
    let ev = session.query(QUERY).expect("oracle evaluation");
    let dict_graph = session.graph();
    let dict = dict_graph.dictionary();
    ev.embeddings()
        .rows()
        .map(|row| {
            row.iter()
                .map(|n| dict.node_label(*n).unwrap().to_owned())
                .collect()
        })
        .collect()
}

#[test]
fn concurrent_mutations_serve_monotone_epochs_and_match_the_oracle() {
    let session = Arc::new(Session::new(build_graph(&base_triples())));
    let server = Server::start(
        Arc::clone(&session) as Arc<dyn wireframe::QueryExecutor>,
        "127.0.0.1:0",
        ServeConfig {
            workers: 4,
            batch_window: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Subscribe before any writes so the delta chain starts at epoch 0.
    let mut subscriber = Client::connect(addr).unwrap();
    let (snapshot_epoch, snapshot) = subscriber.subscribe(QUERY, 0).unwrap();
    assert_eq!(snapshot_epoch, 0);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();

    // Readers: hammer the retained view, asserting per-connection epoch
    // monotonicity — the serving layer must never answer from an older
    // graph version than it already admitted to.
    for _ in 0..READERS {
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut last_epoch = 0u64;
            let mut served = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let answer = client.query(QUERY, 1).unwrap();
                assert!(
                    answer.epoch >= last_epoch,
                    "epoch went backwards: {} after {last_epoch}",
                    answer.epoch
                );
                last_epoch = answer.epoch;
                served += 1;
            }
            served
        }));
    }

    // Writers: one connection each, mutating only their own namespace.
    let mut writer_handles = Vec::new();
    for w in 0..WRITERS {
        writer_handles.push(std::thread::spawn(move || {
            let (scripts, net) = writer_program(w);
            let mut client = Client::connect(addr).unwrap();
            let mut last_epoch = 0u64;
            for script in scripts {
                let ack = client.mutate(&script).unwrap();
                assert!(ack.epoch > last_epoch, "mutation acks advance the epoch");
                last_epoch = ack.epoch;
            }
            net
        }));
    }

    let mut writer_nets = Vec::new();
    for handle in writer_handles {
        writer_nets.push(handle.join().unwrap());
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut reads = 0;
    for handle in handles {
        reads += handle.join().unwrap();
    }
    assert!(reads > 0, "readers actually read");

    // Oracle: base triples + each writer's net effect, applied to a fresh
    // graph in one thread. Writer namespaces are disjoint, so this is the
    // unique final state no matter how batches interleaved.
    let mut triples = base_triples();
    for net in writer_nets {
        triples.extend(net);
    }
    let expect = oracle_rows(build_graph(&triples));

    // The server's final answer matches the oracle.
    let final_epoch = session.epoch();
    let mut checker = Client::connect(addr).unwrap();
    let answer = checker.query(QUERY, 0).unwrap();
    assert_eq!(answer.epoch, final_epoch);
    let served: BTreeSet<Vec<String>> = answer.rows.rows.into_iter().collect();
    assert_eq!(served, expect, "served answer diverged from the oracle");

    // The subscriber's folded deltas match the oracle too: chain updates
    // (gap-free prev/epoch) until the final epoch arrives.
    let mut rows: BTreeSet<Vec<String>> = snapshot.rows.into_iter().collect();
    let mut last_epoch = snapshot_epoch;
    let deadline = Instant::now() + Duration::from_secs(20);
    while last_epoch < final_epoch {
        assert!(
            Instant::now() < deadline,
            "subscriber stuck at epoch {last_epoch} of {final_epoch}"
        );
        let Some(update) = subscriber.next_update(Duration::from_millis(500)).unwrap() else {
            continue;
        };
        assert_eq!(update.prev_epoch, last_epoch, "lost or out-of-order update");
        assert!(update.epoch > update.prev_epoch);
        for row in &update.removed {
            assert!(rows.remove(row), "removed row {row:?} was present");
        }
        for row in update.added {
            assert!(rows.insert(row), "added row already present");
        }
        last_epoch = update.epoch;
    }
    assert_eq!(rows, expect, "subscription deltas diverged from the oracle");

    // Coalescing should have happened at least once under 3 concurrent
    // writers with a nonzero window — but timing can conspire, so only
    // sanity-check the counters' arithmetic, not a lower bound.
    let stats = server.stats();
    assert_eq!(stats.mutations, (WRITERS * WRITES_PER_WRITER) as u64);
    assert!(stats.mutation_batches <= stats.mutations);
    assert_eq!(stats.epoch, final_epoch);
    assert_eq!(stats.mutation_batches, final_epoch);

    server.shutdown();
}

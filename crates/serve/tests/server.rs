//! End-to-end protocol tests over real sockets: request round trips,
//! subscription delta push, induced overload (admission control), and
//! graceful shutdown.

use std::sync::Arc;
use std::time::Duration;

use wireframe::graph::{Graph, GraphBuilder, StoreKind};
use wireframe::Session;
use wireframe_serve::{Client, ClientError, ServeConfig, Server};

const CHAIN_QUERY: &str = "SELECT ?x ?z WHERE { ?x <knows> ?y . ?y <likes> ?z . }";

/// `a{i} knows b{i}`, `b{i} likes c{i}` — the chain query answers
/// `(a{i}, c{i})` for each `i`.
fn chain_graph(n: usize) -> Graph {
    let mut builder = GraphBuilder::new();
    for i in 0..n {
        builder.add(&format!("a{i}"), "knows", &format!("b{i}"));
        builder.add(&format!("b{i}"), "likes", &format!("c{i}"));
    }
    builder.build_with_store(StoreKind::Delta)
}

fn start(n: usize, config: ServeConfig) -> Server {
    let session = Arc::new(Session::new(chain_graph(n)));
    Server::start(session, "127.0.0.1:0", config).expect("bind ephemeral port")
}

#[test]
fn request_round_trips_over_a_real_socket() {
    let server = start(5, ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    let (epoch, retained) = client.prepare(CHAIN_QUERY).unwrap();
    assert_eq!(epoch, 0);
    assert!(retained, "the wireframe engine retains acyclic views");

    let answer = client.query(CHAIN_QUERY, 0).unwrap();
    assert_eq!(answer.epoch, 0);
    assert_eq!(answer.rows.total, 5);
    assert_eq!(answer.rows.columns, 2);
    assert_eq!(answer.rows.rows.len(), 5);
    assert!(!answer.rows.truncated, "unlimited answers are complete");
    assert!(!answer.rows.prefix_served);

    // The chain query projects ?y away, so no top-k prefix is retained —
    // the cap still yields the canonical first rows, with the full count.
    let capped = client.query(CHAIN_QUERY, 2).unwrap();
    assert_eq!(capped.rows.total, 5, "total reports the full count");
    assert_eq!(capped.rows.rows.len(), 2, "rows are capped by the limit");
    assert!(capped.rows.truncated, "the cap dropped rows");
    assert!(!capped.rows.prefix_served, "projected queries defactorize");
    let mut expected = answer.rows.rows.clone();
    expected.sort();
    expected.truncate(2);
    assert_eq!(
        capped.rows.rows, expected,
        "limited answers are the canonical (lexicographic) first rows"
    );

    // A full-projection query is served from the maintained top-k prefix
    // in O(limit), and repeated caps page identically.
    let full_proj = "SELECT ?x ?y ?z WHERE { ?x <knows> ?y . ?y <likes> ?z . }";
    let prefixed = client.query_limited(full_proj, 2).unwrap();
    assert_eq!(prefixed.rows.rows.len(), 2);
    assert!(prefixed.rows.truncated);
    assert!(
        prefixed.rows.prefix_served,
        "the retained view answers limited queries from its top-k prefix"
    );
    let again = client.query_limited(full_proj, 2).unwrap();
    assert_eq!(again.rows.rows, prefixed.rows.rows, "stable paging");
    assert!(again.rows.prefix_served);

    let ack = client.mutate("+ a0 knows b1\n").unwrap();
    assert_eq!(ack.epoch, 1);
    assert_eq!(ack.inserted, 1);
    assert!(ack.coalesced >= 1);

    let answer = client.query(CHAIN_QUERY, 0).unwrap();
    assert_eq!(answer.epoch, 1);
    assert_eq!(answer.rows.total, 6, "a0→b1→c1 joined in");

    // Mutation script parse errors carry the offending line number.
    let err = client.mutate("+ a0 knows b2\n+ broken\n").unwrap_err();
    match err {
        ClientError::Server(msg) => {
            assert!(msg.contains("mutation line 2"), "{msg}");
        }
        other => panic!("expected a server error, got {other}"),
    }

    // Query errors (unknown label) are errors, not dropped connections.
    let err = client
        .query("SELECT ?x WHERE { ?x <no_such_predicate> ?y . }", 0)
        .unwrap_err();
    assert!(matches!(err, ClientError::Server(_)), "{err}");

    let stats = client.stats().unwrap();
    assert_eq!(stats.epoch, 1);
    assert!(stats.requests >= 6);
    assert!(stats.queries >= 3);
    assert_eq!(stats.mutations, 1);
    assert_eq!(stats.mutation_batches, 1);
    assert_eq!(stats.connections, 1);

    server.shutdown();
}

#[test]
fn subscriptions_push_contiguous_epoch_deltas() {
    let server = start(3, ServeConfig::default());
    let mut subscriber = Client::connect(server.local_addr()).unwrap();
    let mut writer = Client::connect(server.local_addr()).unwrap();

    let (snapshot_epoch, snapshot) = subscriber.subscribe(CHAIN_QUERY, 0).unwrap();
    assert_eq!(snapshot_epoch, 0);
    assert_eq!(snapshot.total, 3);

    let ack = writer.mutate("+ a0 knows b1\n").unwrap();
    assert_eq!(ack.epoch, 1);
    let ack = writer.mutate("- a0 knows b0\n").unwrap();
    assert_eq!(ack.epoch, 2);

    // Collect updates until the subscriber reaches epoch 2. Updates may
    // coalesce (one frame covering both batches) but must chain gap-free.
    let mut last_epoch = snapshot_epoch;
    let mut rows: std::collections::BTreeSet<Vec<String>> = snapshot.rows.into_iter().collect();
    while last_epoch < 2 {
        let update = subscriber
            .next_update(Duration::from_secs(5))
            .unwrap()
            .expect("an update before the timeout");
        assert_eq!(
            update.prev_epoch, last_epoch,
            "updates must chain without gaps"
        );
        assert!(update.epoch > update.prev_epoch);
        for row in &update.removed {
            assert!(rows.remove(row), "removed row {row:?} was present");
        }
        for row in update.added {
            assert!(rows.insert(row), "added rows are new");
        }
        last_epoch = update.epoch;
    }
    let expect: std::collections::BTreeSet<Vec<String>> = [
        vec!["a0".to_owned(), "c1".to_owned()],
        vec!["a1".to_owned(), "c1".to_owned()],
        vec!["a2".to_owned(), "c2".to_owned()],
    ]
    .into_iter()
    .collect();
    assert_eq!(rows, expect, "applying the deltas reproduces the answer");

    let stats = writer.stats().unwrap();
    assert!(stats.updates_pushed >= 1);
    assert_eq!(stats.subscriptions, 1);

    server.shutdown();
}

#[test]
fn full_queue_sheds_with_overloaded_instead_of_queueing() {
    // queue_depth 0: every read request is refused at admission — the
    // deterministic worst case of a saturated server.
    let server = start(
        3,
        ServeConfig {
            workers: 1,
            queue_depth: 0,
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr()).unwrap();
    for _ in 0..3 {
        match client.query(CHAIN_QUERY, 0).unwrap_err() {
            ClientError::Overloaded(reason) => assert_eq!(reason, "queue"),
            other => panic!("expected overloaded, got {other}"),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.shed_queue_full, 3);
    assert_eq!(
        stats.shed_deadline, 0,
        "queue sheds must not bleed into the deadline counter"
    );
    // The connection survives shedding: a later stats round trip works
    // (stats also goes through the queue, so ask the server directly).
    assert!(server.stats().requests >= 3);
    server.shutdown();
}

#[test]
fn expired_deadline_sheds_at_dequeue() {
    let server = start(
        3,
        ServeConfig {
            deadline: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client.query(CHAIN_QUERY, 0).unwrap_err() {
        ClientError::Overloaded(reason) => assert_eq!(reason, "deadline"),
        other => panic!("expected overloaded, got {other}"),
    }
    let stats = server.stats();
    assert_eq!(stats.shed_deadline, 1);
    assert_eq!(
        stats.shed_queue_full, 0,
        "deadline sheds must not bleed into the queue counter"
    );
    server.shutdown();
}

/// A minimal HTTP GET against the scrape listener (raw socket — the
/// endpoint is hand-rolled HTTP, a raw client keeps the test honest).
fn scrape(addr: std::net::SocketAddr) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("an HTTP head/body split");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    assert!(head.contains("text/plain"), "{head}");
    body.to_owned()
}

#[test]
fn metrics_request_and_scrape_agree_under_concurrent_load() {
    let server = start(
        5,
        ServeConfig {
            metrics_addr: Some("127.0.0.1:0".to_owned()),
            ..ServeConfig::default()
        },
    );
    let addr = server.local_addr();
    let metrics_addr = server.metrics_local_addr().expect("scrape listener bound");

    // Drive queries from several connections while polling both metrics
    // surfaces: every read must be internally consistent and monotone.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..25 {
                    client.query(CHAIN_QUERY, 0).unwrap();
                }
            });
        }
        let mut observer = Client::connect(addr).unwrap();
        let mut last_queries = 0;
        for _ in 0..5 {
            let (_epoch, snap) = observer.metrics().unwrap();
            let queries = snap.counter("serve.queries");
            assert!(queries >= last_queries, "counters are monotone");
            last_queries = queries;
            let text = scrape(metrics_addr);
            assert!(text.contains("# TYPE wf_serve_queries counter"), "{text}");
        }
    });

    // Quiesced: the wire snapshot and the scrape must agree exactly.
    let mut client = Client::connect(addr).unwrap();
    let (_epoch, snap) = client.metrics().unwrap();
    assert_eq!(snap.counter("serve.queries"), 100);
    assert_eq!(
        snap.counter("executor.cache_hits") + snap.counter("executor.cache_misses"),
        100,
        "the executor registry is merged into the served snapshot"
    );
    let latency = snap
        .histogram("serve.request_us")
        .expect("request latency histogram present");
    assert!(latency.count >= 100);
    let query_latency = snap
        .histogram("query.latency_us")
        .expect("session latency histogram merged in");
    assert_eq!(query_latency.count, 100);

    let text = scrape(metrics_addr);
    assert!(
        text.contains("wf_serve_queries 100\n"),
        "scrape and wire agree on quiesced counters: {text}"
    );
    // The metrics round trip itself lands in request_us after its response
    // is sent, so the scrape may see a few more samples — never fewer.
    let scraped_count: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("wf_serve_request_us_count "))
        .expect("request_us count in the scrape")
        .parse()
        .unwrap();
    assert!(scraped_count >= latency.count, "{scraped_count}");
    server.shutdown();

    // The scrape listener is torn down with the server.
    std::thread::sleep(Duration::from_millis(50));
    assert!(std::net::TcpStream::connect(metrics_addr).is_err());
}

#[test]
fn obs_off_serves_metrics_without_histograms() {
    let server = start(
        3,
        ServeConfig {
            obs: false,
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.query(CHAIN_QUERY, 0).unwrap();
    let (_epoch, snap) = client.metrics().unwrap();
    assert_eq!(snap.counter("serve.queries"), 1, "counters stay live");
    assert!(
        snap.histogram("serve.request_us").is_none(),
        "histograms are no-ops under --obs off"
    );
    server.shutdown();
}

#[test]
fn graceful_shutdown_joins_every_thread_and_closes_connections() {
    let server = start(3, ServeConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.query(CHAIN_QUERY, 0).unwrap().rows.total, 3);

    // shutdown() joins the acceptor, readers, workers, batcher and
    // fan-out; if any of them leaked this call would hang the test.
    server.shutdown();

    // The old connection is closed...
    let err = client.query(CHAIN_QUERY, 0).unwrap_err();
    assert!(matches!(err, ClientError::Io(_)), "{err}");
    // ...and the listener is gone (give the OS a beat to tear it down).
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        Client::connect(addr).is_err(),
        "listener should be closed after shutdown"
    );
}

#[test]
fn a_client_can_request_shutdown() {
    let server = start(3, ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert!(!server.shutdown_requested());
    client.shutdown_server().unwrap();
    // The flag is what wfserve polls before joining.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !server.shutdown_requested() {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

//! The synthetic YAGO-like dataset generator.
//!
//! The paper benchmarks over YAGO2s (242 M triples, 104 distinct predicates),
//! which is not redistributable here; this generator produces a seeded,
//! scalable stand-in with the structural properties the experiment depends on:
//!
//! * the twenty predicates used by the Table 1 queries, with realistic
//!   domain/range pools and Zipf-skewed object popularity (heavy fan-in/out),
//! * *planted* instances of each Table 1 query shape, so every benchmark query
//!   is valid and non-empty (the role the paper's query miner plays), with
//!   controllable multiplicities — multiplicative in the number of embeddings
//!   but only additive in answer-graph size, which is exactly the gap the
//!   answer-graph approach exploits,
//! * cross-core "near miss" edges for the cyclic (diamond) queries, which
//!   survive node burnback without participating in any embedding and thus
//!   reproduce the paper's observation that diamond answer graphs are larger
//!   than ideal,
//! * filler predicates to pad the vocabulary to YAGO2s's 104 predicates.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wireframe_graph::{Graph, GraphBuilder};

use crate::vocab::{filler_label, Pool, PredicateSpec, CORE_PREDICATES, FILLER_PREDICATES};
use crate::workloads::{DIAMOND_LABELS, SNOWFLAKE_LABELS};

/// Configuration of the synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YagoConfig {
    /// Size of the `Person` pool; every other pool scales relative to it.
    pub scale: usize,
    /// RNG seed — the same configuration always produces the same graph.
    pub seed: u64,
    /// Planted query cores per snowflake benchmark query.
    pub snowflake_cores: usize,
    /// Spoke fan-out of planted snowflakes (targets per hub edge).
    pub snowflake_spoke_fanout: usize,
    /// Leaf fan-out of planted snowflakes (targets per spoke-leaf edge).
    pub snowflake_leaf_fanout: usize,
    /// Planted query cores per diamond benchmark query.
    pub diamond_cores: usize,
    /// Branch fan-out of planted diamonds (targets per arm).
    pub diamond_branch_fanout: usize,
    /// Number of closing nodes shared by the two arms of a planted diamond.
    pub diamond_closure: usize,
    /// Whether to pad the vocabulary with the filler predicates.
    pub include_filler: bool,
}

/// Default RNG seed shared by [`YagoConfig::default`] and
/// [`YagoConfig::benchmark`], so their graphs overlap structurally.
pub const DEFAULT_SEED: u64 = 0x5EED_2020;

impl Default for YagoConfig {
    fn default() -> Self {
        YagoConfig {
            scale: 2_000,
            seed: DEFAULT_SEED,
            snowflake_cores: 8,
            snowflake_spoke_fanout: 2,
            snowflake_leaf_fanout: 3,
            diamond_cores: 24,
            diamond_branch_fanout: 3,
            diamond_closure: 4,
            include_filler: true,
        }
    }
}

impl YagoConfig {
    /// A tiny configuration for unit and property tests (a few thousand triples).
    pub fn tiny() -> Self {
        YagoConfig {
            scale: 200,
            seed: 7,
            snowflake_cores: 2,
            snowflake_spoke_fanout: 1,
            snowflake_leaf_fanout: 2,
            diamond_cores: 4,
            diamond_branch_fanout: 2,
            diamond_closure: 2,
            include_filler: false,
        }
    }

    /// The configuration used by the benchmark harness: large enough that the
    /// factorization gap is in the thousands, small enough to run on a laptop.
    pub fn benchmark() -> Self {
        YagoConfig {
            scale: 20_000,
            seed: DEFAULT_SEED,
            snowflake_cores: 12,
            snowflake_spoke_fanout: 2,
            snowflake_leaf_fanout: 4,
            diamond_cores: 60,
            diamond_branch_fanout: 4,
            diamond_closure: 5,
            include_filler: true,
        }
    }

    /// The large configuration: an order of magnitude more background facts
    /// than [`YagoConfig::benchmark`] with the same planted cores, so answer
    /// sizes stay fixed while the graph outgrows the CPU caches — the
    /// paper's "large graphs" regime, where storage layout dominates.
    pub fn large() -> Self {
        YagoConfig {
            scale: 200_000,
            ..YagoConfig::benchmark()
        }
    }

    /// A mid-size configuration for integration tests.
    pub fn small() -> Self {
        YagoConfig {
            scale: 1_000,
            seed: 11,
            snowflake_cores: 3,
            snowflake_spoke_fanout: 2,
            snowflake_leaf_fanout: 2,
            diamond_cores: 8,
            diamond_branch_fanout: 2,
            diamond_closure: 3,
            include_filler: false,
        }
    }
}

/// Generates the synthetic dataset for `config`.
pub fn generate(config: &YagoConfig) -> Graph {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut b = GraphBuilder::new();

    // Background facts for the core vocabulary.
    for spec in &CORE_PREDICATES {
        generate_background(&mut b, &mut rng, config, spec);
    }

    // Planted benchmark structures.
    for (qi, labels) in SNOWFLAKE_LABELS.iter().enumerate() {
        plant_snowflake(&mut b, &mut rng, config, qi, labels);
    }
    for (qi, labels) in DIAMOND_LABELS.iter().enumerate() {
        plant_diamond(&mut b, &mut rng, config, qi, labels);
    }

    // Filler predicates to pad the vocabulary.
    if config.include_filler {
        for i in 0..FILLER_PREDICATES {
            let label = filler_label(i);
            let count = (config.scale / 20).max(4);
            for _ in 0..count {
                let s = pool_entity(&mut rng, config, Pool::Article, 0.8);
                let o = pool_entity(&mut rng, config, Pool::Article, 0.8);
                b.add(&s, &label, &o);
            }
        }
    }

    b.build()
}

/// Number of entities in a pool under `config`.
fn pool_size(config: &YagoConfig, pool: Pool) -> usize {
    ((config.scale as f64 * pool.relative_size()) as usize).max(4)
}

/// Draws an entity label from a pool with Zipf-like skew: higher `skew`
/// concentrates the draws on low indexes (popular entities).
fn pool_entity(rng: &mut SmallRng, config: &YagoConfig, pool: Pool, skew: f64) -> String {
    let n = pool_size(config, pool);
    let u: f64 = rng.gen::<f64>();
    let idx = ((n as f64) * u.powf(1.0 + skew)) as usize;
    format!("{}{}", pool.prefix(), idx.min(n - 1))
}

fn generate_background(
    b: &mut GraphBuilder,
    rng: &mut SmallRng,
    config: &YagoConfig,
    spec: &PredicateSpec,
) {
    let domain_size = pool_size(config, spec.domain);
    let edges = (domain_size as f64 * spec.edges_per_subject) as usize;
    for _ in 0..edges {
        let s = pool_entity(rng, config, spec.domain, 0.2);
        let o = pool_entity(rng, config, spec.range, spec.object_skew);
        b.add(&s, spec.label, &o);
    }
}

/// Plants `config.snowflake_cores` instances of one snowflake query: a hub with
/// three spokes, each spoke with two leaf predicates. Leaf targets are drawn
/// from small shared pools so that fan-in keeps the answer graph compact while
/// the number of embeddings multiplies.
fn plant_snowflake(
    b: &mut GraphBuilder,
    rng: &mut SmallRng,
    config: &YagoConfig,
    query_idx: usize,
    labels: &[&str; 9],
) {
    let spoke_fanout = config.snowflake_spoke_fanout.max(1);
    let leaf_fanout = config.snowflake_leaf_fanout.max(1);
    for core in 0..config.snowflake_cores {
        let hub = format!("sfq{query_idx}_hub{core}");
        for spoke in 0..3 {
            for si in 0..spoke_fanout {
                let mid = format!("sfq{query_idx}_c{core}_s{spoke}_{si}");
                b.add(&hub, labels[spoke], &mid);
                for leaf_pos in 0..2 {
                    let label = labels[3 + 2 * spoke + leaf_pos];
                    for _ in 0..leaf_fanout {
                        // Shared leaf pool per (query, spoke, leaf position):
                        // multiple mids point at the same few leaves.
                        let leaf_pool = leaf_fanout * 4;
                        let leaf = format!(
                            "sfq{query_idx}_leaf{spoke}_{leaf_pos}_{}",
                            rng.gen_range(0..leaf_pool)
                        );
                        b.add(&mid, label, &leaf);
                    }
                }
            }
        }
    }
}

/// Plants `config.diamond_cores` instances of one diamond query
/// (`?x p1 ?y . ?x p2 ?z . ?y p3 ?w . ?z p4 ?w`), plus cross-core "near miss"
/// `p3` edges that survive node burnback without belonging to any embedding.
fn plant_diamond(
    b: &mut GraphBuilder,
    rng: &mut SmallRng,
    config: &YagoConfig,
    query_idx: usize,
    labels: &[&str; 4],
) {
    let branches = config.diamond_branch_fanout.max(1);
    let closure = config.diamond_closure.max(1);
    let cores = config.diamond_cores;
    for core in 0..cores {
        let x = format!("dmq{query_idx}_x{core}");
        let ws: Vec<String> = (0..closure)
            .map(|k| format!("dmq{query_idx}_w{core}_{k}"))
            .collect();
        for i in 0..branches {
            let y = format!("dmq{query_idx}_y{core}_{i}");
            b.add(&x, labels[0], &y);
            for w in &ws {
                b.add(&y, labels[2], w);
            }
            // Cross-core near miss: this y also reaches the next core's
            // closing nodes through p3, but that core's p2 arm never meets
            // them from this x, so the edge is spurious for the answer graph.
            if cores > 1 {
                let other = (core + 1) % cores;
                let w_other = format!("dmq{query_idx}_w{other}_{}", rng.gen_range(0..closure));
                b.add(&y, labels[2], &w_other);
            }
        }
        for j in 0..branches {
            let z = format!("dmq{query_idx}_z{core}_{j}");
            b.add(&x, labels[1], &z);
            for w in &ws {
                b.add(&z, labels[3], w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&YagoConfig::tiny());
        let b = generate(&YagoConfig::tiny());
        assert_eq!(a.triple_count(), b.triple_count());
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.predicate_count(), b.predicate_count());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&YagoConfig::tiny());
        let mut cfg = YagoConfig::tiny();
        cfg.seed = 8;
        let b = generate(&cfg);
        assert_ne!(a.triple_count(), b.triple_count());
    }

    #[test]
    fn full_vocabulary_when_filler_enabled() {
        let mut cfg = YagoConfig::tiny();
        cfg.include_filler = true;
        let g = generate(&cfg);
        assert_eq!(
            g.predicate_count(),
            104,
            "YAGO2s has 104 distinct predicates"
        );
    }

    #[test]
    fn core_predicates_are_present_and_populated() {
        let g = generate(&YagoConfig::tiny());
        for spec in &CORE_PREDICATES {
            let p = g
                .dictionary()
                .predicate_id(spec.label)
                .unwrap_or_else(|| panic!("{} missing", spec.label));
            assert!(
                g.predicate_cardinality(p) > 0,
                "{} has no edges",
                spec.label
            );
        }
    }

    #[test]
    fn scaling_up_adds_triples() {
        let small = generate(&YagoConfig::tiny());
        let bigger = generate(&YagoConfig::small());
        assert!(bigger.triple_count() > small.triple_count());
    }

    #[test]
    fn pool_sizes_scale() {
        let cfg = YagoConfig::tiny();
        assert!(pool_size(&cfg, Pool::Person) >= pool_size(&cfg, Pool::Country));
        assert!(pool_size(&cfg, Pool::Country) >= 4);
    }
}

//! # wireframe-datagen — synthetic YAGO-like data and the benchmark workload
//!
//! The paper evaluates over the YAGO2s dataset and a template-mined workload.
//! This crate provides the offline stand-ins:
//!
//! * [`yago`] — a seeded, scalable generator for a YAGO-like graph with the
//!   Table 1 predicate vocabulary and planted benchmark structures,
//! * [`workloads`] — the ten Table 1 queries (five snowflakes, five diamonds),
//! * [`miner`] — the template-based query miner that discovers valid,
//!   non-empty queries over a dataset (deduplicated by canonical signature),
//! * [`report`] — dataset summary statistics (cardinalities, skew),
//! * [`vocab`] — the predicate vocabulary and entity pools.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod miner;
pub mod report;
pub mod vocab;
pub mod workloads;
pub mod yago;

pub use miner::{MineOutcome, MinerStats, QueryMiner};
pub use report::{DatasetReport, PredicateReport};
pub use workloads::{
    chain_queries, diamond_queries, full_workload, snowflake_queries, star_queries, table1_queries,
    BenchmarkQuery, DIAMOND_LABELS, SNOWFLAKE_LABELS,
};
pub use yago::{generate, YagoConfig};

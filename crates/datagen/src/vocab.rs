//! The predicate vocabulary and entity pools of the synthetic YAGO-like dataset.
//!
//! YAGO2s has 104 distinct predicates; the paper's ten benchmark queries use
//! twenty of them. The synthetic dataset reproduces those twenty with
//! realistic-looking entity pools and pads the vocabulary with filler
//! predicates so that catalog sizes and planner search spaces are comparable.

/// Entity pools of the synthetic dataset. Pool sizes scale with
/// [`YagoConfig::scale`](crate::yago::YagoConfig::scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pool {
    /// People (actors, scientists, politicians, …).
    Person,
    /// Cities.
    City,
    /// Countries.
    Country,
    /// Movies and other creative works.
    Movie,
    /// Companies and organizations.
    Organization,
    /// Universities.
    University,
    /// Prizes.
    Prize,
    /// Events.
    Event,
    /// Calendar dates (stored as plain nodes, as in the triple-store import).
    Date,
    /// Durations.
    Duration,
    /// Wiki articles / miscellaneous linked entities.
    Article,
    /// Export goods.
    Commodity,
}

impl Pool {
    /// Every pool, in a fixed order.
    pub const ALL: [Pool; 12] = [
        Pool::Person,
        Pool::City,
        Pool::Country,
        Pool::Movie,
        Pool::Organization,
        Pool::University,
        Pool::Prize,
        Pool::Event,
        Pool::Date,
        Pool::Duration,
        Pool::Article,
        Pool::Commodity,
    ];

    /// Label prefix used when naming this pool's entities.
    pub fn prefix(self) -> &'static str {
        match self {
            Pool::Person => "person",
            Pool::City => "city",
            Pool::Country => "country",
            Pool::Movie => "movie",
            Pool::Organization => "org",
            Pool::University => "university",
            Pool::Prize => "prize",
            Pool::Event => "event",
            Pool::Date => "date",
            Pool::Duration => "duration",
            Pool::Article => "article",
            Pool::Commodity => "commodity",
        }
    }

    /// Relative size of this pool (multiplied by the generator's scale).
    pub fn relative_size(self) -> f64 {
        match self {
            Pool::Person => 1.0,
            Pool::City => 0.08,
            Pool::Country => 0.01,
            Pool::Movie => 0.35,
            Pool::Organization => 0.12,
            Pool::University => 0.03,
            Pool::Prize => 0.01,
            Pool::Event => 0.10,
            Pool::Date => 0.40,
            Pool::Duration => 0.02,
            Pool::Article => 0.80,
            Pool::Commodity => 0.01,
        }
    }
}

/// Signature of one predicate: subject pool, object pool, and how many edges
/// to generate relative to the subject pool's size.
#[derive(Debug, Clone, Copy)]
pub struct PredicateSpec {
    /// The predicate label as it appears in queries.
    pub label: &'static str,
    /// Pool the subjects are drawn from.
    pub domain: Pool,
    /// Pool the objects are drawn from.
    pub range: Pool,
    /// Average number of edges per domain entity.
    pub edges_per_subject: f64,
    /// Zipf skew of object popularity: higher values concentrate the edges on
    /// a few very popular objects (heavy fan-in), which is what makes the
    /// factorization gap large.
    pub object_skew: f64,
}

/// The twenty predicates used by the paper's Table 1 queries.
pub const CORE_PREDICATES: [PredicateSpec; 20] = [
    PredicateSpec {
        label: "diedIn",
        domain: Pool::Person,
        range: Pool::City,
        edges_per_subject: 0.4,
        object_skew: 0.9,
    },
    PredicateSpec {
        label: "wasBornIn",
        domain: Pool::Person,
        range: Pool::City,
        edges_per_subject: 0.8,
        object_skew: 0.9,
    },
    PredicateSpec {
        label: "livesIn",
        domain: Pool::Person,
        range: Pool::City,
        edges_per_subject: 0.6,
        object_skew: 0.9,
    },
    PredicateSpec {
        label: "isCitizenOf",
        domain: Pool::Person,
        range: Pool::Country,
        edges_per_subject: 0.7,
        object_skew: 1.1,
    },
    PredicateSpec {
        label: "influences",
        domain: Pool::Person,
        range: Pool::Person,
        edges_per_subject: 0.5,
        object_skew: 1.0,
    },
    PredicateSpec {
        label: "isMarriedTo",
        domain: Pool::Person,
        range: Pool::Person,
        edges_per_subject: 0.3,
        object_skew: 0.2,
    },
    PredicateSpec {
        label: "hasChild",
        domain: Pool::Person,
        range: Pool::Person,
        edges_per_subject: 0.5,
        object_skew: 0.2,
    },
    PredicateSpec {
        label: "actedIn",
        domain: Pool::Person,
        range: Pool::Movie,
        edges_per_subject: 1.2,
        object_skew: 0.8,
    },
    PredicateSpec {
        label: "created",
        domain: Pool::Person,
        range: Pool::Movie,
        edges_per_subject: 0.6,
        object_skew: 0.7,
    },
    PredicateSpec {
        label: "owns",
        domain: Pool::Person,
        range: Pool::Organization,
        edges_per_subject: 0.2,
        object_skew: 0.8,
    },
    PredicateSpec {
        label: "graduatedFrom",
        domain: Pool::Person,
        range: Pool::University,
        edges_per_subject: 0.4,
        object_skew: 0.9,
    },
    PredicateSpec {
        label: "isLeaderOf",
        domain: Pool::Person,
        range: Pool::City,
        edges_per_subject: 0.05,
        object_skew: 0.5,
    },
    PredicateSpec {
        label: "hasWonPrize",
        domain: Pool::Person,
        range: Pool::Prize,
        edges_per_subject: 0.15,
        object_skew: 1.0,
    },
    PredicateSpec {
        label: "wasBornOnDate",
        domain: Pool::Person,
        range: Pool::Date,
        edges_per_subject: 0.9,
        object_skew: 0.3,
    },
    PredicateSpec {
        label: "wasCreatedOnDate",
        domain: Pool::Movie,
        range: Pool::Date,
        edges_per_subject: 0.9,
        object_skew: 0.3,
    },
    PredicateSpec {
        label: "hasDuration",
        domain: Pool::Movie,
        range: Pool::Duration,
        edges_per_subject: 0.9,
        object_skew: 0.6,
    },
    PredicateSpec {
        label: "isLocatedIn",
        domain: Pool::City,
        range: Pool::Country,
        edges_per_subject: 1.0,
        object_skew: 1.1,
    },
    PredicateSpec {
        label: "linksTo",
        domain: Pool::Article,
        range: Pool::Article,
        edges_per_subject: 2.5,
        object_skew: 1.0,
    },
    PredicateSpec {
        label: "happenedIn",
        domain: Pool::Event,
        range: Pool::City,
        edges_per_subject: 0.9,
        object_skew: 0.9,
    },
    PredicateSpec {
        label: "exports",
        domain: Pool::Country,
        range: Pool::Commodity,
        edges_per_subject: 4.0,
        object_skew: 0.7,
    },
];

/// Number of filler predicates added so the vocabulary reaches YAGO2s's 104
/// distinct predicates.
pub const FILLER_PREDICATES: usize = 104 - CORE_PREDICATES.len();

/// Returns the label of the `i`-th filler predicate.
pub fn filler_label(i: usize) -> String {
    format!("hasProperty{i:03}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn twenty_core_predicates_no_duplicates() {
        let labels: HashSet<&str> = CORE_PREDICATES.iter().map(|p| p.label).collect();
        assert_eq!(labels.len(), 20);
    }

    #[test]
    fn vocabulary_reaches_104() {
        assert_eq!(CORE_PREDICATES.len() + FILLER_PREDICATES, 104);
    }

    #[test]
    fn filler_labels_are_distinct_from_core() {
        for i in 0..FILLER_PREDICATES {
            let label = filler_label(i);
            assert!(CORE_PREDICATES.iter().all(|p| p.label != label));
        }
    }

    #[test]
    fn pool_sizes_are_positive() {
        for p in Pool::ALL {
            assert!(p.relative_size() > 0.0);
            assert!(!p.prefix().is_empty());
        }
    }

    #[test]
    fn table1_labels_are_all_in_the_core_vocabulary() {
        let known: HashSet<&str> = CORE_PREDICATES.iter().map(|p| p.label).collect();
        let used = [
            "diedIn",
            "influences",
            "actedIn",
            "owns",
            "wasCreatedOnDate",
            "created",
            "hasDuration",
            "hasChild",
            "wasBornIn",
            "isCitizenOf",
            "exports",
            "isMarriedTo",
            "wasBornOnDate",
            "livesIn",
            "isLocatedIn",
            "linksTo",
            "happenedIn",
            "graduatedFrom",
            "isLeaderOf",
            "hasWonPrize",
        ];
        for u in used {
            assert!(known.contains(u), "{u} missing from vocabulary");
        }
    }
}

//! The paper's Table 1 workload: five snowflake and five diamond queries.
//!
//! Each benchmark query is an instantiation of the CQ_S or CQ_D template with
//! the predicate-label sequence listed in Table 1. Edge positions follow the
//! templates in [`wireframe_query::templates`]: snowflake edges 1–3 leave the
//! hub, 4–5 leave the first spoke, 6–7 the second, 8–9 the third; diamond
//! edges are `?x p1 ?y . ?x p2 ?z . ?y p3 ?w . ?z p4 ?w`.

use wireframe_graph::Graph;
use wireframe_query::templates::{chain, diamond, snowflake, star};
use wireframe_query::{ConjunctiveQuery, QueryError, Shape};

/// Label sequences of the five snowflake-shaped queries of Table 1.
pub const SNOWFLAKE_LABELS: [[&str; 9]; 5] = [
    [
        "diedIn",
        "influences",
        "actedIn",
        "owns",
        "wasCreatedOnDate",
        "actedIn",
        "created",
        "hasDuration",
        "wasCreatedOnDate",
    ],
    [
        "hasChild",
        "influences",
        "actedIn",
        "actedIn",
        "wasBornIn",
        "created",
        "actedIn",
        "hasDuration",
        "wasCreatedOnDate",
    ],
    [
        "isCitizenOf",
        "influences",
        "actedIn",
        "exports",
        "wasCreatedOnDate",
        "actedIn",
        "created",
        "hasDuration",
        "wasCreatedOnDate",
    ],
    [
        "isMarriedTo",
        "influences",
        "actedIn",
        "actedIn",
        "wasBornOnDate",
        "created",
        "actedIn",
        "hasDuration",
        "wasCreatedOnDate",
    ],
    [
        "isMarriedTo",
        "diedIn",
        "actedIn",
        "actedIn",
        "wasBornIn",
        "owns",
        "wasCreatedOnDate",
        "hasDuration",
        "wasCreatedOnDate",
    ],
];

/// Label sequences of the five diamond-shaped queries of Table 1.
pub const DIAMOND_LABELS: [[&str; 4]; 5] = [
    ["livesIn", "isCitizenOf", "isLocatedIn", "linksTo"],
    ["livesIn", "isCitizenOf", "linksTo", "happenedIn"],
    ["diedIn", "linksTo", "wasBornIn", "graduatedFrom"],
    ["diedIn", "linksTo", "wasBornIn", "isLeaderOf"],
    ["diedIn", "linksTo", "wasBornIn", "hasWonPrize"],
];

/// One benchmark query: its Table 1 row number, a short name, the query, and
/// its shape.
#[derive(Debug, Clone)]
pub struct BenchmarkQuery {
    /// Row number in Table 1 (1–10).
    pub row: usize,
    /// Short display name, e.g. `CQS-2` or `CQD-3`.
    pub name: String,
    /// The resolved conjunctive query.
    pub query: ConjunctiveQuery,
    /// The query's shape (snowflake or cycle).
    pub shape: Shape,
}

/// Builds the five snowflake queries of Table 1 against `graph`.
pub fn snowflake_queries(graph: &Graph) -> Result<Vec<BenchmarkQuery>, QueryError> {
    SNOWFLAKE_LABELS
        .iter()
        .enumerate()
        .map(|(i, labels)| {
            Ok(BenchmarkQuery {
                row: i + 1,
                name: format!("CQS-{}", i + 1),
                query: snowflake(graph.dictionary(), labels)?,
                shape: Shape::Snowflake,
            })
        })
        .collect()
}

/// Builds the five diamond queries of Table 1 against `graph`.
pub fn diamond_queries(graph: &Graph) -> Result<Vec<BenchmarkQuery>, QueryError> {
    DIAMOND_LABELS
        .iter()
        .enumerate()
        .map(|(i, labels)| {
            Ok(BenchmarkQuery {
                row: i + 6,
                name: format!("CQD-{}", i + 1),
                query: diamond(graph.dictionary(), labels)?,
                shape: Shape::Cycle,
            })
        })
        .collect()
}

/// Builds all ten Table 1 queries against `graph`, in row order.
pub fn table1_queries(graph: &Graph) -> Result<Vec<BenchmarkQuery>, QueryError> {
    let mut all = snowflake_queries(graph)?;
    all.extend(diamond_queries(graph)?);
    Ok(all)
}

/// Builds five chain (path) queries against `graph`, one per snowflake label
/// row: hub edge followed by the first spoke's first leaf edge. The planted
/// snowflake cores guarantee each chain is non-empty on generated datasets.
pub fn chain_queries(graph: &Graph) -> Result<Vec<BenchmarkQuery>, QueryError> {
    SNOWFLAKE_LABELS
        .iter()
        .enumerate()
        .map(|(i, labels)| {
            Ok(BenchmarkQuery {
                row: i + 1,
                name: format!("CQC-{}", i + 1),
                query: chain(graph.dictionary(), &[labels[0], labels[3]])?,
                shape: Shape::Chain,
            })
        })
        .collect()
}

/// Builds five star queries against `graph`, one per snowflake label row:
/// the three hub edges of the snowflake without its leaf spokes. The planted
/// snowflake cores guarantee each star is non-empty on generated datasets.
pub fn star_queries(graph: &Graph) -> Result<Vec<BenchmarkQuery>, QueryError> {
    SNOWFLAKE_LABELS
        .iter()
        .enumerate()
        .map(|(i, labels)| {
            Ok(BenchmarkQuery {
                row: i + 1,
                name: format!("CQT-{}", i + 1),
                query: star(graph.dictionary(), &labels[0..3])?,
                shape: Shape::Star,
            })
        })
        .collect()
}

/// Builds the full mixed-shape workload against `graph`: chains, stars,
/// snowflakes and cycles (diamonds), in that order. This is the workload the
/// trait-driven cross-engine equivalence tests iterate.
pub fn full_workload(graph: &Graph) -> Result<Vec<BenchmarkQuery>, QueryError> {
    let mut all = chain_queries(graph)?;
    all.extend(star_queries(graph)?);
    all.extend(snowflake_queries(graph)?);
    all.extend(diamond_queries(graph)?);
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yago::{generate, YagoConfig};
    use wireframe_query::QueryGraph;

    #[test]
    fn all_ten_queries_resolve_against_the_synthetic_dataset() {
        let g = generate(&YagoConfig::tiny());
        let all = table1_queries(&g).unwrap();
        assert_eq!(all.len(), 10);
        for (i, q) in all.iter().enumerate() {
            assert_eq!(q.row, i + 1);
            let qg = QueryGraph::new(&q.query);
            assert!(qg.is_connected(), "{} must be connected", q.name);
            match q.shape {
                Shape::Snowflake => {
                    assert_eq!(q.query.num_patterns(), 9);
                    assert!(qg.is_acyclic());
                }
                Shape::Cycle => {
                    assert_eq!(q.query.num_patterns(), 4);
                    assert!(qg.is_cyclic());
                }
                other => panic!("unexpected shape {other:?}"),
            }
        }
    }

    #[test]
    fn chain_and_star_workloads_have_their_shapes_and_answers() {
        use wireframe_query::QueryGraph;
        let g = generate(&YagoConfig::tiny());
        let chains = chain_queries(&g).unwrap();
        let stars = star_queries(&g).unwrap();
        assert_eq!(chains.len(), 5);
        assert_eq!(stars.len(), 5);
        for bq in chains.iter().chain(stars.iter()) {
            let qg = QueryGraph::new(&bq.query);
            assert!(qg.is_connected(), "{}", bq.name);
            assert_eq!(qg.shape(), bq.shape, "{}", bq.name);
        }
        assert_eq!(full_workload(&g).unwrap().len(), 20);
    }

    #[test]
    fn names_follow_the_table() {
        let g = generate(&YagoConfig::tiny());
        let all = table1_queries(&g).unwrap();
        assert_eq!(all[0].name, "CQS-1");
        assert_eq!(all[4].name, "CQS-5");
        assert_eq!(all[5].name, "CQD-1");
        assert_eq!(all[9].name, "CQD-5");
    }

    #[test]
    fn label_tables_use_only_core_vocabulary() {
        use crate::vocab::CORE_PREDICATES;
        let known: Vec<&str> = CORE_PREDICATES.iter().map(|p| p.label).collect();
        for row in SNOWFLAKE_LABELS.iter() {
            for l in row {
                assert!(known.contains(l), "{l} not in vocabulary");
            }
        }
        for row in DIAMOND_LABELS.iter() {
            for l in row {
                assert!(known.contains(l), "{l} not in vocabulary");
            }
        }
    }
}
